#!/usr/bin/env python3
"""Compare DSM, DCR and CCR on the paper's Grid dataflow (scale-in).

Reproduces the core of the paper's evaluation for one dataflow: the smart-grid
analytics DAG (15 tasks, 21 instances) is scaled in from 11 two-slot D2 VMs to
6 four-slot D3 VMs with each of the three migration strategies, and the §4
metrics plus the throughput timelines (Fig. 7) are printed side by side.

Run with::

    python examples/compare_strategies_grid.py [--fast]

``--fast`` shortens the post-migration observation window (the DSM recovery
and stabilization columns may then be reported as not reached).
"""

from __future__ import annotations

import argparse

from repro.experiments import run_migration_experiment
from repro.experiments.formatting import format_rate_series, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="shorten the observation window")
    parser.add_argument("--dag", default="grid", help="paper dataflow to migrate (default: grid)")
    parser.add_argument("--scaling", default="in", choices=("in", "out"), help="scaling direction")
    args = parser.parse_args()

    post = 240.0 if args.fast else 540.0
    rows = []
    results = {}
    for strategy in ("dsm", "dcr", "ccr"):
        print(f"running {strategy.upper()} on {args.dag} (scale-{args.scaling}) ...")
        result = run_migration_experiment(
            dag=args.dag,
            strategy=strategy,
            scaling=args.scaling,
            migrate_at_s=90.0,
            post_migration_s=post,
            seed=2018,
        )
        results[strategy] = result
        rows.append(result.metrics.as_dict())

    print()
    print(format_table(
        rows,
        columns=["strategy", "restore_s", "drain_capture_s", "rebalance_s", "catchup_s",
                 "recovery_s", "stabilization_s", "replayed_messages", "lost_in_kills"],
        title=f"{args.dag} scale-{args.scaling}: §4 metrics per strategy",
    ))

    print()
    print("Throughput timelines (5 s bins, relative to the migration request):")
    for strategy, result in results.items():
        request = result.report.requested_at
        input_series = [p for p in result.input_timeline(bin_s=5.0)]
        output_series = [p for p in result.output_timeline(bin_s=5.0)]
        shift = lambda points: [type(p)(time=p.time - request, rate=p.rate) for p in points]
        print(format_rate_series(f"{strategy} input", shift(input_series)))
        print(format_rate_series(f"{strategy} output", shift(output_series)))

    print()
    print("Headline comparison:")
    dsm, dcr, ccr = (results[s].metrics for s in ("dsm", "dcr", "ccr"))
    print(f"  restore:   CCR {ccr.restore_duration_s:6.1f}s   DCR {dcr.restore_duration_s:6.1f}s   "
          f"DSM {dsm.restore_duration_s:6.1f}s")
    print(f"  replays:   CCR {ccr.replayed_message_count:6d}    DCR {dcr.replayed_message_count:6d}    "
          f"DSM {dsm.replayed_message_count:6d}")
    speedup = dsm.restore_duration_s / ccr.restore_duration_s
    print(f"  CCR restores the dataflow {speedup:.1f}x faster than Storm's default migration.")


if __name__ == "__main__":
    main()
