#!/usr/bin/env python3
"""Elastic scale-out of the Traffic dataflow in response to an input-rate surge.

The scenario the paper's introduction motivates: a latency-sensitive GPS
analytics pipeline experiences a rush-hour surge.  A rate profile describes the
surge, the provisioning rule (one instance per 8 ev/s, Table 1's VM sizing) is
used to plan the new allocation, the surge-ready dataflow is scaled out onto
one-slot D1 VMs with CCR, and the cost/latency impact is reported -- including
what the per-minute cloud bill looks like before and after.

Run with::

    python examples/elastic_traffic_scaling.py
"""

from __future__ import annotations

import math

from repro.cluster.cloud import CloudProvider, Cluster
from repro.cluster.vm import D1, D2, D3
from repro.core import compute_migration_metrics, strategy_by_name
from repro.dataflow import topologies
from repro.engine.runtime import TopologyRuntime
from repro.experiments.scenarios import plan_after_scaling
from repro.metrics.timeline import latency_timeline
from repro.sim import Simulator
from repro.workloads import StepProfile, gps_payload_factory


def main() -> None:
    # --- the workload -----------------------------------------------------
    # Normal load is the paper's 8 ev/s; at t=180 s a rush-hour surge is
    # anticipated.  (The paper scopes *when/where to scale* out of the
    # migration problem, so the surge here only motivates the new plan.)
    profile = StepProfile(steps=[(0.0, 8.0), (180.0, 8.0)])
    surge_rate = 8.0

    dataflow = topologies.traffic()
    dataflow.sources[0].payload_factory = gps_payload_factory(vehicle_count=400, seed=3)

    strategy_cls = strategy_by_name("ccr")
    config = strategy_cls.runtime_config(seed=99)

    sim = Simulator()
    provider = CloudProvider(sim, billing_granularity_s=60.0)
    cluster = Cluster()

    util_vm = provider.provision(D3, 1, name_prefix="util")[0]
    util_vm.tags["role"] = "util"
    cluster.add_vm(util_vm)

    # Initial deployment: Table 1 says Traffic needs 13 slots -> 7 D2 VMs.
    initial_vms = provider.provision(D2, 7, name_prefix="d2")
    for vm in initial_vms:
        cluster.add_vm(vm)

    runtime = TopologyRuntime(dataflow, cluster, sim=sim, config=config)
    runtime.deploy()
    runtime.start()

    sim.run(until=180.0)
    pre_latency = latency_timeline(runtime.log, start=120.0, end=180.0, window_s=10.0)
    pre_median = sorted(p.latency_s for p in pre_latency)[len(pre_latency) // 2]
    print(f"[t={sim.now:6.1f}s] steady state on {len(initial_vms)} D2 VMs: "
          f"median latency {pre_median * 1000:.0f} ms, "
          f"cost so far ${provider.total_cost():.3f}")

    # --- plan the scale-out ------------------------------------------------
    average_rate = profile.average_rate(180.0, 600.0)
    instances_needed = sum(
        max(1, math.ceil(rate / 8.0))
        for rate in dataflow.input_rates().values()
        if rate > 0
    )
    print(f"[t={sim.now:6.1f}s] anticipated rate {max(average_rate, surge_rate):.0f} ev/s -> "
          f"{dataflow.total_instances()} instances, scaling out to one-slot D1 VMs "
          f"for per-minute billing granularity")

    target_vms = provider.provision(D1, dataflow.total_instances(), name_prefix="d1")
    for vm in target_vms:
        cluster.add_vm(vm)
    new_plan = plan_after_scaling(runtime, [vm.vm_id for vm in target_vms])

    # --- migrate with CCR ---------------------------------------------------
    migration = strategy_cls(runtime)
    report = migration.migrate(new_plan)
    sim.run(until=600.0)

    metrics = compute_migration_metrics(
        runtime.log, report,
        expected_output_rate=dataflow.output_rate(),
        dataflow_name=dataflow.name, scenario="scale-out",
        end_time=sim.now,
    )

    # Old worker VMs can be released once the migration protocol completes.
    for vm in initial_vms:
        if not vm.occupied_slots:
            provider.deprovision(vm)

    post_latency = latency_timeline(runtime.log, start=sim.now - 120.0, end=sim.now, window_s=10.0)
    post_median = sorted(p.latency_s for p in post_latency)[len(post_latency) // 2]

    print()
    print("Scale-out result (CCR)")
    print(f"  restore duration     : {metrics.restore_duration_s:6.1f} s")
    print(f"  capture duration     : {metrics.drain_capture_duration_s * 1000:6.1f} ms")
    print(f"  stabilization time   : {metrics.stabilization_time_s and round(metrics.stabilization_time_s, 1)} s")
    print(f"  messages lost        : {metrics.messages_lost_in_kills}")
    print(f"  messages replayed    : {metrics.replayed_message_count}")
    print(f"  median latency before: {pre_median * 1000:6.0f} ms")
    print(f"  median latency after : {post_median * 1000:6.0f} ms")
    print(f"  events delivered     : {len(runtime.log.sink_receipts)}")
    print()
    print("Billing summary (relative pay-as-you-go units, per-minute granularity)")
    for record in provider.billing_records:
        print(f"  {record.vm_id:12s} {record.vm_type:3s} "
              f"{'released' if record.deprovisioned_at is not None else 'running ':9s} "
              f"cost {record.cost(sim.now):7.4f}")
    print(f"  total: {provider.total_cost():.4f}")


if __name__ == "__main__":
    main()
