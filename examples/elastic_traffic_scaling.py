#!/usr/bin/env python3
"""Closed-loop elastic scaling of the Traffic dataflow under a rush-hour surge.

The scenario the paper's introduction motivates, now with the loop actually
closed: a latency-sensitive GPS analytics pipeline experiences a rush-hour
surge.  A :class:`StepProfile` drives the source rate (8 -> 24 -> 8 ev/s);
the :class:`ElasticityController` watches the observed rate, applies the
paper's one-instance-per-8-ev/s provisioning rule, and migrates the dataflow
with CCR -- out onto one-slot D1 VMs when the surge hits (per-minute billing
tracks the load closely) and back onto D2s when it subsides -- deprovisioning
the vacated VMs each time.  No manual ``migrate_at`` anywhere.

The tasks run lighter user logic than the paper's 100 ms dummy (40 ms) so the
surge stays within processing capacity and the run showcases *rate-driven*
scaling rather than overload recovery.

Run with::

    python examples/elastic_traffic_scaling.py

The same loop is available from the command line::

    python -m repro elastic --dag traffic --strategy ccr --profile surge
"""

from __future__ import annotations

from repro.dataflow import topologies
from repro.elastic import ControllerConfig
from repro.experiments import run_elastic_experiment
from repro.workloads import StepProfile, gps_payload_factory


def main() -> None:
    # --- the workload -----------------------------------------------------
    # Normal load is the paper's 8 ev/s; rush hour triples it between
    # t=270 s and t=540 s.
    duration_s = 900.0
    profile = StepProfile(steps=[(0.0, 8.0), (270.0, 24.0), (540.0, 8.0)])

    dataflow = topologies.traffic(latency_s=0.04)
    dataflow.sources[0].payload_factory = gps_payload_factory(vehicle_count=400, seed=3)

    # --- the control loop -------------------------------------------------
    result = run_elastic_experiment(
        dag="traffic",
        strategy="ccr",
        profile=profile,
        duration_s=duration_s,
        seed=99,
        dataflow=dataflow,
        controller_config=ControllerConfig(
            check_interval_s=15.0, confirm_samples=2, cooldown_s=60.0
        ),
    )

    # --- report -----------------------------------------------------------
    print(f"Elastic Traffic run: {duration_s:.0f}s simulated, CCR strategy, "
          f"surge 8 -> 24 -> 8 ev/s")
    print()
    for action in result.actions:
        report = action.report
        protocol = (f"{report.protocol_duration_s:6.1f} s protocol"
                    if report is not None and report.protocol_duration_s is not None
                    else "protocol still running")
        allocation = " ".join(
            f"{count}x{name}" for name, count in sorted(action.target.vm_counts.items())
        )
        print(f"[t={action.decided_at:6.1f}s] scale-{action.direction:3s} "
              f"{action.from_tier} -> {action.to_tier} "
              f"(observed {action.observed_rate:5.1f} ev/s, "
              f"pressure {action.target.pressure:.2f}) -> {allocation}")
        print(f"              {protocol}, "
              f"{len(action.provisioned_vm_ids)} VMs provisioned, "
              f"{len(action.deprovisioned_vm_ids)} vacated VMs released")
    if not result.actions:
        print("no scaling action was triggered (rate never left the baseline band)")
    print()

    outs, ins = result.scale_outs(), result.scale_ins()
    assert outs and ins, "the surge should trigger at least one scale-out and one scale-in"

    mid_latencies = [p.latency_s for p in result.latency_timeline(window_s=30.0)]
    print(f"events delivered       : {len(result.log.sink_receipts)}")
    print(f"events lost in kills   : {result.log.lost_in_kills()}")
    print(f"peak avg latency (30s) : {max(mid_latencies) * 1000:8.1f} ms")
    print(f"final cluster          : {result.runtime.cluster.describe()}")
    print()

    print("Billing summary (relative pay-as-you-go units, per-minute granularity)")
    now = result.runtime.sim.now
    for record in result.provider.billing_records:
        status = "released" if record.deprovisioned_at is not None else "running "
        print(f"  {record.vm_id:12s} {record.vm_type:3s} {status:9s} "
              f"cost {record.cost(now):7.4f}")
    print(f"  total: {result.total_cost:.4f}")
    print()
    print("The controller scaled the dataflow out and back in automatically; "
          "every vacated VM stopped billing the minute it was released.")


if __name__ == "__main__":
    main()
