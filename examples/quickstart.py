#!/usr/bin/env python3
"""Quickstart: build a streaming dataflow, run it, and migrate it live with CCR.

This example shows the core public API end to end:

1. compose a dataflow with :class:`repro.TopologyBuilder`;
2. provision a small simulated cloud cluster and deploy the dataflow;
3. let it run for a while, then scale it in onto fewer, larger VMs using the
   CCR (Capture-Checkpoint-Resume) migration strategy;
4. print the migration report and the paper's §4 metrics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import TopologyBuilder, TopologyRuntime, compute_migration_metrics, strategy_by_name
from repro.cluster.cloud import CloudProvider, Cluster
from repro.cluster.vm import D2, D3
from repro.experiments.scenarios import plan_after_scaling
from repro.sim import Simulator


def build_dataflow():
    """A small ETL-style dataflow: parse -> enrich -> (aggregate | alert) -> sink."""
    builder = TopologyBuilder("quickstart")
    builder.add_source("events", rate=8.0)
    builder.add_task("parse", latency_s=0.1, stateful=True)
    builder.add_task("enrich", latency_s=0.1)
    builder.add_task("aggregate", latency_s=0.1, stateful=True)
    builder.add_task("alert", latency_s=0.1)
    builder.add_sink("sink")
    builder.chain("events", "parse", "enrich")
    builder.fan_out("enrich", ["aggregate", "alert"])
    builder.fan_in(["aggregate", "alert"], "sink")
    return builder.build(auto_parallelism=True)


def main() -> None:
    dataflow = build_dataflow()
    print(dataflow.describe())
    print()

    # The CCR strategy dictates the reliability configuration (capture mode on
    # PREPARE, no per-event acking, no periodic checkpoints).
    strategy_cls = strategy_by_name("ccr")
    config = strategy_cls.runtime_config(seed=42)

    sim = Simulator()
    provider = CloudProvider(sim)
    cluster = Cluster()

    # A dedicated 4-slot VM hosts the source and sink (never migrated), and the
    # dataflow initially runs on three 2-slot D2 VMs.
    util_vm = provider.provision(D3, 1, name_prefix="util")[0]
    util_vm.tags["role"] = "util"
    cluster.add_vm(util_vm)
    for vm in provider.provision(D2, 3, name_prefix="d2"):
        cluster.add_vm(vm)

    runtime = TopologyRuntime(dataflow, cluster, sim=sim, config=config)
    runtime.deploy()
    runtime.start()

    # Warm up for two simulated minutes.
    sim.run(until=120.0)
    print(f"[t={sim.now:6.1f}s] warm-up done: "
          f"{len(runtime.log.sink_receipts)} events delivered, "
          f"cluster utilization {cluster.utilization:.0%}")

    # Scale in: consolidate the user tasks onto two 4-slot D3 VMs.
    target_vms = provider.provision(D3, 2, name_prefix="d3")
    for vm in target_vms:
        cluster.add_vm(vm)
    new_plan = plan_after_scaling(runtime, [vm.vm_id for vm in target_vms])

    migration = strategy_cls(runtime)
    report = migration.migrate(new_plan)
    print(f"[t={sim.now:6.1f}s] CCR migration requested "
          f"({len(runtime.user_executors)} task instances will move to {len(target_vms)} D3 VMs)")

    # Observe the post-migration behaviour for five more minutes.
    sim.run(until=420.0)

    metrics = compute_migration_metrics(
        runtime.log, report,
        expected_output_rate=dataflow.output_rate(),
        dataflow_name=dataflow.name, scenario="scale-in",
        end_time=sim.now,
    )

    print()
    print("Migration report")
    print(f"  capture duration : {report.drain_capture_duration_s * 1000:8.1f} ms")
    print(f"  rebalance command: {report.rebalance_duration_s:8.2f} s")
    print(f"  protocol complete: {report.protocol_duration_s:8.2f} s after the request")
    print()
    print("Paper §4 metrics")
    for key, value in metrics.as_dict().items():
        print(f"  {key:20s} {value}")
    print()
    print(f"Events delivered in total: {len(runtime.log.sink_receipts)}")
    print(f"Events lost:               {metrics.messages_lost_in_kills}")
    print(f"Events replayed:           {metrics.replayed_message_count}")
    print(f"Final cluster placement uses VMs: {sorted(runtime.placement.vms_used)}")


if __name__ == "__main__":
    main()
