#!/usr/bin/env python3
"""Cost/locality study: consolidating the Star dataflow onto fewer, larger VMs.

The paper's Fig. 1 motivates scale-in with a consolidation example: moving a
dataflow from five 2-core VMs at 70 % utilization to two 4-core VMs at 87.5 %
utilization lowers the bill and the latency (fewer network hops), provided the
migration itself is reliable and fast.  This example quantifies all three
effects on the Star micro-DAG:

* it deploys Star on its Table 1 default allocation (4 two-slot D2 VMs);
* scales it in onto 2 four-slot D3 VMs with the CCR strategy;
* reports, before and after: worker VMs used, slot utilization, intra- vs
  inter-VM channels, median end-to-end latency, and the hourly cost rate --
  plus the §4 migration metrics showing the consolidation lost nothing.

Run with::

    python examples/consolidation_cost_study.py [--scheduler {roundrobin,packing}]
"""

from __future__ import annotations

import argparse

from repro.cluster.cloud import CloudProvider, Cluster
from repro.cluster.scheduler import ResourceAwareScheduler, RoundRobinScheduler
from repro.cluster.vm import D2, D3
from repro.core import compute_migration_metrics, strategy_by_name
from repro.dataflow import topologies
from repro.engine.runtime import TopologyRuntime
from repro.experiments.formatting import format_table
from repro.experiments.scenarios import plan_after_scaling, vm_counts_for
from repro.metrics.timeline import latency_timeline
from repro.sim import Simulator


def channel_locality(runtime) -> dict:
    """Count intra-VM vs inter-VM instance-to-instance channels under the current placement."""
    placement = runtime.placement
    intra = inter = 0
    for edge in runtime.dataflow.edges:
        src_task = runtime.dataflow.task(edge.src)
        dst_task = runtime.dataflow.task(edge.dst)
        for src_instance in src_task.instance_ids():
            for dst_instance in dst_task.instance_ids():
                if src_instance not in placement.assignments or dst_instance not in placement.assignments:
                    continue
                if placement.vm_of(src_instance) == placement.vm_of(dst_instance):
                    intra += 1
                else:
                    inter += 1
    return {"intra_vm_channels": intra, "inter_vm_channels": inter}


def snapshot(label, runtime, worker_vms, log, window):
    """Utilization, locality, latency and cost-rate snapshot of the current deployment."""
    used = [vm for vm in worker_vms if vm.occupied_slots]
    slots_total = sum(len(vm.slots) for vm in used) or 1
    slots_used = sum(len(vm.occupied_slots) for vm in used)
    latencies = latency_timeline(log, start=window[0], end=window[1], window_s=10.0)
    median_latency = sorted(p.latency_s for p in latencies)[len(latencies) // 2] if latencies else float("nan")
    hourly_rate = sum(vm.vm_type.hourly_cost for vm in used)
    return {
        "deployment": label,
        "worker_vms": f"{len(used)} x {used[0].vm_type.name}" if used else "0",
        "slot_utilization": f"{slots_used / slots_total:.0%}",
        "median_latency_ms": round(median_latency * 1000.0, 1),
        "hourly_cost_rate": round(hourly_rate, 3),
        **channel_locality(runtime),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scheduler", choices=("roundrobin", "packing"), default="packing",
                        help="scheduler used for the consolidated placement")
    args = parser.parse_args()
    scheduler = RoundRobinScheduler() if args.scheduler == "roundrobin" else ResourceAwareScheduler()

    dataflow = topologies.star()
    counts = vm_counts_for(dataflow)
    strategy_cls = strategy_by_name("ccr")
    config = strategy_cls.runtime_config(seed=7)

    sim = Simulator()
    provider = CloudProvider(sim)
    cluster = Cluster()
    util_vm = provider.provision(D3, 1, name_prefix="util")[0]
    util_vm.tags["role"] = "util"
    cluster.add_vm(util_vm)
    # The starting point is deliberately over-provisioned (as after an earlier
    # load peak): two more D2 VMs than Table 1 needs, with the round-robin
    # scheduler spreading the 8 instances across all of them -- the
    # under-utilized, many-hops deployment of the paper's Fig. 1.
    initial_vms = provider.provision(D2, counts.default_d2 + 2, name_prefix="d2")
    for vm in initial_vms:
        cluster.add_vm(vm)

    # Initial deployment always uses Storm's round-robin scheduler (spread);
    # the chosen scheduler is applied to the consolidated placement below.
    runtime = TopologyRuntime(dataflow, cluster, sim=sim, config=config, scheduler=RoundRobinScheduler())
    runtime.deploy()
    runtime.start()
    sim.run(until=150.0)
    before = snapshot("before (over-provisioned)", runtime, initial_vms, runtime.log, (60.0, 150.0))

    # Consolidate onto 2 D3 VMs with CCR.
    runtime.scheduler = scheduler
    target_vms = provider.provision(D3, counts.scale_in_d3, name_prefix="d3")
    for vm in target_vms:
        cluster.add_vm(vm)
    new_plan = plan_after_scaling(runtime, [vm.vm_id for vm in target_vms])
    migration = strategy_cls(runtime)
    report = migration.migrate(new_plan)
    sim.run(until=480.0)

    for vm in initial_vms:
        if not vm.occupied_slots:
            provider.deprovision(vm)

    metrics = compute_migration_metrics(
        runtime.log, report, expected_output_rate=dataflow.output_rate(),
        dataflow_name=dataflow.name, scenario="scale-in", end_time=sim.now,
    )
    after = snapshot("after (consolidated)", runtime, target_vms, runtime.log, (sim.now - 90.0, sim.now))

    print(format_table(
        [before, after],
        columns=["deployment", "worker_vms", "slot_utilization", "intra_vm_channels",
                 "inter_vm_channels", "median_latency_ms", "hourly_cost_rate"],
        title=f"Star consolidation with CCR ({args.scheduler} scheduler for the new placement)",
    ))
    print()
    print("Migration cost of the consolidation (CCR, §4 metrics):")
    print(f"  restore {metrics.restore_duration_s:.1f} s, capture {metrics.drain_capture_duration_s * 1000:.0f} ms, "
          f"rebalance {metrics.rebalance_duration_s:.1f} s, "
          f"lost {metrics.messages_lost_in_kills}, replayed {metrics.replayed_message_count}")
    print()
    saving = (before["hourly_cost_rate"] - after["hourly_cost_rate"]) / before["hourly_cost_rate"]
    print(f"Consolidation cuts the worker-VM cost rate by {saving:.0%}, raises slot utilization "
          f"from {before['slot_utilization']} to {after['slot_utilization']}, and makes "
          f"{after['intra_vm_channels'] - before['intra_vm_channels']} more channels VM-local, "
          f"without losing or replaying a single message.")


if __name__ == "__main__":
    main()
