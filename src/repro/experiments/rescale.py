"""Rescale scenario runner: capacity-adding vs placement-only scale-out.

The paper's migration strategies move a *fixed* set of executors between VMs,
so its scale-out adds machines without adding processing capacity.  This
runner quantifies what that scoping costs: the same dataflow rides the same
surge profile twice under the closed elasticity loop --

* **capacity-adding** -- the planner runs with ``elastic_parallelism``
  enabled, so the scale-out migration also *rescales* task instance counts
  (router re-keying + grouped-state re-partitioning) to match the surged
  rate;
* **placement-only** -- the paper's behaviour: the same slots are repacked
  onto one-slot D1 VMs while every task keeps its original parallelism.

Both runs share the same seed-derived random streams (the
``elastic_parallelism`` flag is not mixed into the seed), so the comparison
isolates the rescale decision.  When a surge pushes task input rates past
the deployed instances' service capacity, the placement-only run builds an
unbounded backlog while the capacity-adding run absorbs it -- the headline
the ``repro rescale`` CLI subcommand (and the acceptance test) checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dataflow import topologies
from repro.elastic import ControllerConfig
from repro.experiments.elastic import ElasticRunResult, run_elastic_experiment
from repro.workloads.profiles import StepProfile


@dataclass
class RescaleRunSummary:
    """Aggregated surge-window behaviour of one elastic run."""

    #: ``capacity`` (rescale enabled) or ``placement`` (paper scoping).
    mode: str
    result: ElasticRunResult
    #: Mean end-to-end sink latency over [surge start, end of run] (seconds);
    #: ``inf`` when nothing reached a sink in the window (fully wedged).
    mean_sink_latency_s: float
    #: Largest total backlog observed by the monitor (executor queues plus
    #: source backlogs) from the surge start onwards.
    peak_backlog: int
    #: Backlog still outstanding at the last monitor sample.
    final_backlog: int
    #: Sink receipts in the measurement window.
    receipts: int
    #: Total user-task instances deployed when the run ended.
    final_instances: int

    def as_dict(self) -> Dict[str, object]:
        """Row for table formatting."""
        return {
            "mode": self.mode,
            "mean_latency_s": round(self.mean_sink_latency_s, 3),
            "peak_backlog": self.peak_backlog,
            "final_backlog": self.final_backlog,
            "receipts": self.receipts,
            "final_instances": self.final_instances,
            "scale_actions": len(self.result.actions),
            "cost": round(self.result.total_cost, 4),
        }


@dataclass
class RescaleComparisonResult:
    """Everything produced by one capacity-vs-placement comparison."""

    dag: str
    strategy: str
    surge_multiplier: float
    duration_s: float
    surge_start_s: float
    surge_end_s: float
    capacity: RescaleRunSummary
    placement: RescaleRunSummary

    @property
    def latency_improvement(self) -> float:
        """``placement mean latency / capacity mean latency`` (>1 = rescale wins)."""
        if self.capacity.mean_sink_latency_s <= 0:
            return float("inf")
        return self.placement.mean_sink_latency_s / self.capacity.mean_sink_latency_s

    @property
    def capacity_wins(self) -> bool:
        """Whether capacity-adding scaling strictly beat placement-only scaling.

        Judged on mean sink latency and the backlog left at the end of the
        run (did the deployment actually absorb the surge?).  The transient
        peak is deliberately not part of the verdict: a drain-style protocol
        restarting twice as many executors briefly spikes its backlog during
        the migration window even when it goes on to win outright.
        """
        return (
            self.capacity.mean_sink_latency_s < self.placement.mean_sink_latency_s
            and self.capacity.final_backlog < self.placement.final_backlog
        )


def _summarize(result: ElasticRunResult, mode: str, window_start_s: float) -> RescaleRunSummary:
    receipts = result.log.receipts_after(window_start_s)
    if receipts:
        mean_latency = sum(r.latency_s for r in receipts) / len(receipts)
    else:
        mean_latency = float("inf")
    window_samples = [s for s in result.samples if s.time >= window_start_s]
    backlogs = [s.queue_backlog + s.source_backlog for s in window_samples]
    return RescaleRunSummary(
        mode=mode,
        result=result,
        mean_sink_latency_s=mean_latency,
        peak_backlog=max(backlogs) if backlogs else 0,
        final_backlog=backlogs[-1] if backlogs else 0,
        receipts=len(receipts),
        final_instances=result.dataflow.total_instances(),
    )


def run_rescale_experiment(
    dag: str = "grid",
    strategy: str = "ccr",
    surge_multiplier: float = 2.0,
    duration_s: float = 600.0,
    seed: int = 2018,
    instance_capacity_ev_s: float = 8.0,
    controller_config: Optional[ControllerConfig] = None,
    task_capacities_ev_s: Optional[dict] = None,
) -> RescaleComparisonResult:
    """Compare capacity-adding and placement-only scale-out on one surge.

    The surge is a step profile: baseline rate until 25% of the run,
    ``surge_multiplier`` times that until 60%, then back to baseline.  The
    capacity-adding run lets the elastic controller rescale task parallelism
    mid-migration; the placement-only run reproduces the paper's fixed-slot
    scaling.  Summary metrics are measured from the surge start to the end of
    the run, which includes the post-surge drain (a backlog the placement-only
    run accumulated keeps hurting its latency long after the surge ends).
    """
    if surge_multiplier <= 1.0:
        raise ValueError("surge_multiplier must be > 1 (otherwise there is no surge)")
    surge_start_s = duration_s * 0.25
    surge_end_s = duration_s * 0.60
    if controller_config is None:
        # A normal cooldown suffices: the controller plans on the monitor's
        # offered rate (a post-surge drain burst no longer reads as fresh
        # load) and the drain-aware guard holds any scale-in until the
        # backlog the surge built has actually been absorbed.
        controller_config = ControllerConfig(
            check_interval_s=15.0, confirm_samples=2, cooldown_s=60.0
        )

    def _one_run(elastic_parallelism: bool) -> ElasticRunResult:
        dataflow = topologies.by_name(dag)
        base_rate = sum(float(source.rate) for source in dataflow.sources)
        profile = StepProfile(
            steps=[
                (0.0, base_rate),
                (surge_start_s, base_rate * surge_multiplier),
                (surge_end_s, base_rate),
            ]
        )
        return run_elastic_experiment(
            dag=dag,
            strategy=strategy,
            profile=profile,
            duration_s=duration_s,
            seed=seed,
            dataflow=dataflow,
            controller_config=controller_config,
            instance_capacity_ev_s=instance_capacity_ev_s,
            elastic_parallelism=elastic_parallelism,
            task_capacities_ev_s=task_capacities_ev_s,
        )

    capacity_result = _one_run(elastic_parallelism=True)
    placement_result = _one_run(elastic_parallelism=False)

    return RescaleComparisonResult(
        dag=dag,
        strategy=strategy,
        surge_multiplier=surge_multiplier,
        duration_s=duration_s,
        surge_start_s=surge_start_s,
        surge_end_s=surge_end_s,
        capacity=_summarize(capacity_result, "capacity", surge_start_s),
        placement=_summarize(placement_result, "placement", surge_start_s),
    )
