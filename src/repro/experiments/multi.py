"""Multi-tenant scenario runner: N dataflows, offset surges, one shared fleet.

Drives 2-3 paper DAGs as tenants of one :class:`~repro.multi.ClusterManager`
with *offset* surge profiles (each tenant's rush hour starts while another's
is ending), so the run exercises exactly what the arbiter exists for:
contending scale-outs, migrations that must not overlap unsafely, and
consolidations that must not land on a neighbour's dying VMs.

For the comparison the same tenants are also run **privately**: each dataflow
alone on its own fleet through a single-tenant ``ClusterManager`` with an
unconstrained budget -- same machinery, same samplers, so per-tenant sink
latency, migration windows, cluster utilization and cost are measured
identically in both settings.  The headline the ``repro multi`` CLI prints:
co-location serves the same workloads at comparable latency on fewer
slot-hours (higher utilization, lower bill), and the arbiter never lets the
fleet exceed its budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.vm import D2
from repro.dataflow import topologies
from repro.dataflow.event import reset_event_ids
from repro.elastic.controller import ControllerConfig, ScalingAction
from repro.elastic.planner import AllocationPlanner
from repro.multi import ClusterManager, Deferral, FleetSample
from repro.workloads.profiles import StepProfile


@dataclass
class TenantSummary:
    """Per-tenant outcome of one managed run."""

    name: str
    dag: str
    strategy: str
    priority: int
    mean_sink_latency_s: float
    receipts: int
    peak_backlog: int
    final_backlog: int
    final_instances: int
    actions: List[ScalingAction] = field(default_factory=list)
    deferrals: List[Deferral] = field(default_factory=list)
    #: ``(enacted_at, completed_at)`` per completed scaling migration.
    migration_windows: List[Tuple[float, float]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        """Row for table formatting."""
        return {
            "tenant": self.name,
            "dag": self.dag,
            "priority": self.priority,
            "latency_ms": round(self.mean_sink_latency_s * 1000, 1),
            "receipts": self.receipts,
            "peak_backlog": self.peak_backlog,
            "final_backlog": self.final_backlog,
            "instances": self.final_instances,
            "scale_actions": len(self.actions),
            "deferrals": len(self.deferrals),
        }


@dataclass
class ManagedRunResult:
    """Everything produced by one ClusterManager run (shared or private)."""

    manager: ClusterManager
    duration_s: float
    tenants: Dict[str, TenantSummary]

    @property
    def budget_slots(self) -> int:
        """The fleet budget the arbiter enforced."""
        return self.manager.arbiter.budget_slots

    @property
    def max_committed_slots(self) -> int:
        """High-water mark of physical + reserved worker slots."""
        return self.manager.arbiter.max_committed_slots

    @property
    def fleet_samples(self) -> List[FleetSample]:
        """The manager's fleet occupancy timeline."""
        return self.manager.fleet_samples

    @property
    def mean_utilization(self) -> float:
        """Mean worker-slot utilization over the run."""
        return self.manager.mean_utilization()

    @property
    def mean_worker_slots(self) -> float:
        """Mean provisioned worker slots over the run (fleet footprint)."""
        samples = self.fleet_samples
        if not samples:
            return 0.0
        return sum(s.worker_slots for s in samples) / len(samples)

    @property
    def total_cost(self) -> float:
        """Total accrued cloud cost at the end of the run."""
        return self.manager.total_cost()

    def max_concurrent_migrations(self) -> int:
        """Largest number of tenant migration windows overlapping at once."""
        events: List[Tuple[float, int]] = []
        for summary in self.tenants.values():
            for start, end in summary.migration_windows:
                events.append((start, 1))
                events.append((end, -1))
        events.sort()
        peak = current = 0
        for _, delta in events:
            current += delta
            peak = max(peak, current)
        return peak


@dataclass
class MultiExperimentResult:
    """Shared-fleet run plus the per-tenant private-fleet baselines."""

    duration_s: float
    surge_multiplier: float
    shared: ManagedRunResult
    #: Tenant name -> that tenant running alone on a private fleet.
    private: Dict[str, ManagedRunResult] = field(default_factory=dict)
    #: Tenant name -> the surge window driven into its sources.
    surge_windows: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def latency_ratio(self, name: str) -> Optional[float]:
        """Shared / private mean sink latency for one tenant (1.0 = no cost)."""
        if name not in self.private:
            return None
        private = self.private[name].tenants[name].mean_sink_latency_s
        shared = self.shared.tenants[name].mean_sink_latency_s
        if private <= 0:
            return None
        return shared / private

    @property
    def private_total_cost(self) -> float:
        """Summed cost of all the private-fleet baseline runs."""
        return sum(r.total_cost for r in self.private.values())

    @property
    def private_mean_worker_slots(self) -> float:
        """Summed mean fleet footprint of the private baselines."""
        return sum(r.mean_worker_slots for r in self.private.values())

    @property
    def private_mean_utilization(self) -> Optional[float]:
        """Slot-weighted mean utilization across the private baselines."""
        total = self.private_mean_worker_slots
        if total <= 0:
            return None
        return (
            sum(r.mean_utilization * r.mean_worker_slots for r in self.private.values())
            / total
        )


def surge_window(duration_s: float, index: int) -> Tuple[float, float]:
    """The offset surge window for the ``index``-th tenant.

    Windows are staggered so each tenant's surge begins while the previous
    tenant is still draining or consolidating -- the contention the arbiter
    is for -- without ever fully coinciding.
    """
    start = duration_s * (0.15 + 0.22 * index)
    return start, start + duration_s * 0.20


def _summarize_tenant(manager: ClusterManager, name: str) -> TenantSummary:
    tenant = manager.tenant(name)
    receipts = tenant.runtime.log.sink_receipts
    mean_latency = (
        sum(r.latency_s for r in receipts) / len(receipts) if receipts else float("inf")
    )
    backlogs = [s.queue_backlog + s.source_backlog for s in tenant.monitor.samples]
    windows = [
        (action.enacted_at, action.completed_at)
        for action in tenant.controller.actions
        if action.enacted_at is not None and action.completed_at is not None
    ]
    return TenantSummary(
        name=name,
        dag=tenant.dataflow.name,
        strategy=tenant.strategy,
        priority=tenant.priority,
        mean_sink_latency_s=mean_latency,
        receipts=len(receipts),
        peak_backlog=max(backlogs) if backlogs else 0,
        final_backlog=backlogs[-1] if backlogs else 0,
        final_instances=tenant.dataflow.total_instances(),
        actions=list(tenant.controller.actions),
        deferrals=list(tenant.controller.deferrals),
        migration_windows=windows,
    )


def _run_managed(
    dag_specs: Sequence[Tuple[str, str, int, Tuple[float, float]]],
    strategy: str,
    duration_s: float,
    surge_multiplier: float,
    budget_slots: int,
    seed: int,
    controller_config: Optional[ControllerConfig],
    instance_capacity_ev_s: float,
    elastic_parallelism: bool,
    provisioning_latency_s: float,
    max_concurrent_migrations: int,
    placement: str = "full-replace",
) -> ManagedRunResult:
    """One complete managed run over ``(tenant_name, dag, priority, window)`` specs."""
    reset_event_ids()
    manager = ClusterManager(
        budget_slots=budget_slots,
        provisioning_latency_s=provisioning_latency_s,
        max_concurrent_migrations=max_concurrent_migrations,
        fleet_sample_interval_s=(controller_config or ControllerConfig()).check_interval_s,
        seed=seed,
    )
    for name, dag, priority, (surge_start, surge_end) in dag_specs:
        dataflow = topologies.by_name(dag)
        base_rate = sum(float(source.rate) for source in dataflow.sources)
        profile = StepProfile(
            steps=[
                (0.0, base_rate),
                (surge_start, base_rate * surge_multiplier),
                (surge_end, base_rate),
            ]
        )
        manager.add_tenant(
            name,
            dataflow,
            strategy=strategy,
            profile=profile if len(dataflow.sources) == 1 else None,
            priority=priority,
            controller_config=controller_config,
            instance_capacity_ev_s=instance_capacity_ev_s,
            elastic_parallelism=elastic_parallelism,
            profile_duration_s=duration_s,
            placement=placement,
        )
    manager.deploy()
    manager.start()
    try:
        manager.run(until=duration_s)
    finally:
        manager.stop()
    return ManagedRunResult(
        manager=manager,
        duration_s=duration_s,
        tenants={name: _summarize_tenant(manager, name) for name, _, _, _ in dag_specs},
    )


def default_budget_slots(
    dags: Sequence[str],
    surge_multiplier: float,
    instance_capacity_ev_s: float = 8.0,
    elastic_parallelism: bool = False,
) -> int:
    """A budget with room for every tenant's expanded fleet during handoff.

    The co-located baseline needs the summed tenant slots; on top, each
    tenant's surge-sized new fleet must fit *while its old slots are still
    accounted* (a migration window double-counts, and with offset surges one
    tenant's expanded fleet routinely coexists with the next tenant's
    scale-out), plus the largest D2 re-fleet a consolidation provisions.
    Tighter budgets are perfectly legal -- the arbiter then defers the excess
    (pass ``--budget`` to study contention); this default lets the standard
    offset-surge run complete every tenant's out-and-back cycle.
    """
    initial = 0
    expanded_total = 0
    rebaseline_max = 0
    for dag in dags:
        dataflow = topologies.by_name(dag)
        slots = dataflow.total_instances()
        initial += slots
        if elastic_parallelism:
            planner = AllocationPlanner(
                dataflow,
                instance_capacity_ev_s=instance_capacity_ev_s,
                elastic_parallelism=True,
            )
            base_rate = sum(float(source.rate) for source in dataflow.sources)
            expanded_total += planner.required_instances(base_rate * surge_multiplier)
        else:
            expanded_total += slots
        rebaseline_max = max(rebaseline_max, -(-slots // D2.slots) * D2.slots)
    # The shared fleet provisions whole D2s, so budget the rounded-up slots.
    initial_provisioned = -(-initial // D2.slots) * D2.slots
    return initial_provisioned + expanded_total + rebaseline_max


def run_multi_experiment(
    dags: Sequence[str] = ("traffic", "grid"),
    strategy: str = "ccr",
    duration_s: float = 600.0,
    surge_multiplier: float = 2.0,
    seed: int = 2018,
    budget_slots: Optional[int] = None,
    priorities: Optional[Sequence[int]] = None,
    controller_config: Optional[ControllerConfig] = None,
    instance_capacity_ev_s: float = 8.0,
    elastic_parallelism: bool = False,
    provisioning_latency_s: float = 30.0,
    max_concurrent_migrations: int = 1,
    include_private_baseline: bool = True,
    placement: str = "full-replace",
) -> MultiExperimentResult:
    """Run N paper DAGs with offset surges on one shared, arbitrated fleet.

    Each dataflow becomes a tenant named after its DAG (``traffic``,
    ``grid-2`` on a repeat) whose sources ride a step surge of
    ``surge_multiplier`` over its own :func:`surge_window`.  ``priorities``
    optionally ranks the tenants (higher = served first under contention);
    the default gives every tenant priority 1, leaving the proportional-share
    fallback in charge.  With ``include_private_baseline`` every tenant is
    re-run alone on a private fleet for the latency/cost/utilization
    comparison the CLI prints.  ``placement="incremental"`` gives every
    tenant the rescale-aware placer (grows add only the delta;
    consolidations re-use partially-free shared VMs instead of provisioning
    a fresh fleet).
    """
    if len(dags) < 1:
        raise ValueError("need at least one dataflow")
    if priorities is not None and len(priorities) != len(dags):
        raise ValueError(f"priorities must match dags ({len(dags)} entries)")
    if controller_config is None:
        controller_config = ControllerConfig(
            check_interval_s=15.0, confirm_samples=2, cooldown_s=60.0
        )
    if budget_slots is None:
        budget_slots = default_budget_slots(
            dags, surge_multiplier,
            instance_capacity_ev_s=instance_capacity_ev_s,
            elastic_parallelism=elastic_parallelism,
        )

    names: List[str] = []
    seen: Dict[str, int] = {}
    for dag in dags:
        seen[dag] = seen.get(dag, 0) + 1
        names.append(dag if seen[dag] == 1 else f"{dag}-{seen[dag]}")
    specs = [
        (
            name,
            dag,
            priorities[i] if priorities is not None else 1,
            surge_window(duration_s, i),
        )
        for i, (name, dag) in enumerate(zip(names, dags))
    ]

    shared = _run_managed(
        specs, strategy, duration_s, surge_multiplier, budget_slots, seed,
        controller_config, instance_capacity_ev_s, elastic_parallelism,
        provisioning_latency_s, max_concurrent_migrations,
        placement=placement,
    )

    private: Dict[str, ManagedRunResult] = {}
    if include_private_baseline:
        for spec in specs:
            name, dag, _, _ = spec
            # Unconstrained budget: a private fleet is sized by its tenant
            # alone, so arbitration never binds and the comparison isolates
            # co-location itself.
            private[name] = _run_managed(
                [spec], strategy, duration_s, surge_multiplier,
                budget_slots=10 * budget_slots, seed=seed,
                controller_config=controller_config,
                instance_capacity_ev_s=instance_capacity_ev_s,
                elastic_parallelism=elastic_parallelism,
                provisioning_latency_s=provisioning_latency_s,
                max_concurrent_migrations=max_concurrent_migrations,
                placement=placement,
            )

    return MultiExperimentResult(
        duration_s=duration_s,
        surge_multiplier=surge_multiplier,
        shared=shared,
        private=private,
        surge_windows={name: window for name, _, _, window in specs},
    )
