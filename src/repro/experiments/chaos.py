"""Chaos scenario runner: eviction storms on a spot fleet, two recovery modes.

The elasticity papers' migration machinery assumes *planned* reconfiguration;
a spot-heavy fleet adds the unplanned kind.  This runner deploys a dataflow on
spot worker VMs, fires a deterministic eviction storm
(:class:`~repro.cluster.chaos.ChaosSchedule`) at the fleet, and rides the same
storm once per *recovery mode*:

* ``notice`` — the controller receives each eviction **notice** and drains the
  doomed VM inside the window (:meth:`ElasticityController.handle_eviction_notice`):
  replacement capacity is shopped on the spot/on-demand market, executors are
  migrated off live with the configured strategy, and the VM is released
  before the cloud reclaims it;
* ``oblivious`` — the notice is ignored; the VM dies at the deadline with its
  executors on board and recovery is entirely unplanned
  (:meth:`ElasticityController.handle_vm_failure`): failed trees are replayed
  through the acker, rescue capacity is provisioned on-demand, and keyed
  state is restored from the last committed checkpoint.

Both modes share the storm schedule, the seeds and every random stream — the
comparison isolates what the notice window is worth, scored on **restore
latency** (unavailability after each reclaim), **replayed messages** and the
**cloud bill**.  The ``repro chaos`` CLI subcommand prints the table and can
emit headline JSON for the CI perf-trend accumulation.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.chaos import ChaosSchedule, FaultInjector
from repro.cluster.cloud import (
    ON_DEMAND,
    SPOT,
    CloudProvider,
    Cluster,
    ProvisioningModel,
    SpotMarket,
)
from repro.cluster.vm import D2, D3
from repro.core.strategy import strategy_by_name
from repro.dataflow import topologies
from repro.dataflow.event import reset_event_ids
from repro.dataflow.graph import Dataflow
from repro.elastic import (
    AllocationPlanner,
    ControllerConfig,
    ElasticityController,
    ElasticityMonitor,
    EvacuationRecord,
    RecoveryRecord,
)
from repro.engine.config import RuntimeConfig
from repro.engine.runtime import TopologyRuntime
from repro.metrics.log import EventLog
from repro.sim import RandomSource, Simulator
from repro.sim.shard import log_digest

#: Recovery modes compared by default, in report order.
DEFAULT_MODES: Tuple[str, ...] = ("notice", "oblivious")


@dataclass
class ChaosScenarioSpec:
    """Parameters of one chaos run (one mode riding the storm)."""

    dag: str = "grid-keyed"
    strategy: str = "dsm"
    mode: str = "notice"
    duration_s: float = 600.0
    seed: int = 2018
    storm_count: int = 3
    storm_start_s: float = 150.0
    storm_spacing_s: float = 120.0
    notice_s: float = 120.0
    jitter_s: float = 15.0


@dataclass
class ChaosRunResult:
    """Everything produced by one chaos run."""

    spec: ChaosScenarioSpec
    dataflow: Dataflow
    runtime: TopologyRuntime
    provider: CloudProvider
    controller: ElasticityController
    injector: FaultInjector
    initial_vm_ids: List[str] = field(default_factory=list)

    @property
    def log(self) -> EventLog:
        """The run's raw event log."""
        return self.runtime.log

    @property
    def telemetry(self):
        """The run's :class:`repro.obs.Telemetry`, or ``None`` when off."""
        return self.runtime.telemetry

    @property
    def total_cost(self) -> float:
        """Total accrued cloud cost at the end of the run."""
        return self.provider.total_cost()

    @property
    def replayed_messages(self) -> int:
        """Source emissions that were replays of failed tuple trees."""
        return sum(1 for emit in self.log.source_emits if emit.replay_count > 0)

    @property
    def recoveries(self) -> List[RecoveryRecord]:
        """Unplanned-failure recoveries the controller ran, in time order."""
        return self.controller.recoveries

    @property
    def evacuations(self) -> List[EvacuationRecord]:
        """Eviction-notice evacuations the controller ran, in time order."""
        return self.controller.evacuations

    def digest(self) -> str:
        """Stable content hash of the event log (determinism checks)."""
        return log_digest(self.log)

    def control_sequence(self) -> List[str]:
        """The controller's fault reactions as a comparable action trace."""
        entries = []
        for rec in self.recoveries:
            entries.append(
                (rec.failed_at, f"recover {rec.vm_id} kind={rec.kind} "
                                f"lost={','.join(rec.lost_executors)} "
                                f"restored={rec.restored_at!r}")
            )
        for rec in self.evacuations:
            entries.append(
                (rec.notice_at, f"evacuate {rec.vm_id} deadline={rec.deadline!r} "
                                f"market={rec.replacement_market} evaded={rec.evaded} "
                                f"completed={rec.completed_at!r}")
            )
        return [text for _, text in sorted(entries, key=lambda pair: pair[0])]

    def restore_latencies(self) -> List[float]:
        """Per-fault unavailability after the cloud's reclaim moment.

        A *killed* fault is charged from the kill until the controller's
        recovery finished restoring the lost executors (to the end of the run
        if it never did).  An *evaded* eviction drained before the deadline,
        so the reclaim found nothing: zero unavailability — which is exactly
        the headline the notice window buys.
        """
        latencies: List[float] = []
        for fault in self.injector.records:
            if fault.outcome == "killed":
                recovery = next(
                    (r for r in self.recoveries
                     if r.vm_id == fault.vm_id and r.failed_at == fault.killed_at),
                    None,
                )
                if recovery is not None and recovery.restored_at is not None:
                    latencies.append(recovery.restored_at - fault.killed_at)
                else:
                    latencies.append(self.spec.duration_s - fault.killed_at)
            elif fault.outcome == "evaded":
                evacuation = next(
                    (r for r in reversed(self.evacuations)
                     if r.vm_id == fault.vm_id and r.completed_at is not None),
                    None,
                )
                if evacuation is None:
                    latencies.append(0.0)
                else:
                    latencies.append(max(0.0, evacuation.completed_at - fault.deadline))
        return latencies


@dataclass
class ChaosRunSummary:
    """How one recovery mode fared on the shared storm."""

    mode: str
    result: ChaosRunResult
    faults: int
    killed: int
    evaded: int
    #: Mean unavailability per fault after the cloud's reclaim moment.
    mean_restore_s: float
    #: Mean evacuation drain time (notice -> drained); None when none ran.
    mean_drain_s: Optional[float]
    replayed_messages: int
    events_lost: int
    provisioning_failures: int
    total_cost: float

    def as_dict(self) -> Dict[str, object]:
        """Row for table formatting."""
        return {
            "mode": self.mode,
            "killed": self.killed,
            "evaded": self.evaded,
            "restore_s": round(self.mean_restore_s, 2),
            "drain_s": round(self.mean_drain_s, 2) if self.mean_drain_s is not None else "-",
            "replays": self.replayed_messages,
            "events_lost": self.events_lost,
            "cost": round(self.total_cost, 4),
        }


@dataclass
class ChaosComparisonResult:
    """Everything produced by one notice-vs-oblivious storm comparison."""

    dag: str
    strategy: str
    duration_s: float
    storm_count: int
    notice_s: float
    #: Mode name -> its run summary, in requested order.
    runs: Dict[str, ChaosRunSummary] = field(default_factory=dict)

    @property
    def notice(self) -> Optional[ChaosRunSummary]:
        return self.runs.get("notice")

    @property
    def oblivious(self) -> Optional[ChaosRunSummary]:
        return self.runs.get("oblivious")

    def headline_benchmarks(self) -> Dict[str, Dict[str, float]]:
        """Per-mode headline numbers in the ``BENCH_engine.json`` shape.

        Restore latency, replay count and the bill all ride the ``mean_s``
        field so the existing trend accumulation and drift chart track them
        like any benchmark.
        """
        benchmarks: Dict[str, Dict[str, float]] = {}
        for summary in self.runs.values():
            key = summary.mode.replace("-", "_")
            benchmarks[f"chaos_{key}_restore_s"] = {"mean_s": summary.mean_restore_s}
            benchmarks[f"chaos_{key}_replays"] = {"mean_s": float(summary.replayed_messages)}
            benchmarks[f"chaos_{key}_cost_usd"] = {"mean_s": summary.total_cost}
        return benchmarks

    def write_headline_json(
        self, path: Union[str, Path], timestamp: Optional[str] = None
    ) -> Path:
        """Write the headline numbers for the CI perf-trend accumulation."""
        from ..metrics.metadata import run_metadata

        payload = run_metadata(
            "repro-bench-chaos/1",
            timestamp=timestamp,
            dag=self.dag,
            strategy=self.strategy,
            duration_s=self.duration_s,
            storm_count=self.storm_count,
            notice_s=self.notice_s,
            benchmarks=self.headline_benchmarks(),
        )
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path


def _mix_seed(spec: ChaosScenarioSpec) -> int:
    """Independent randomness per (dag, strategy) cell, reproducibly.

    The recovery ``mode`` is deliberately *not* mixed in: both modes ride the
    same storm with the same streams, so the comparison isolates what the
    notice handling itself is worth.
    """
    digest = hashlib.sha256(f"chaos:{spec.dag}:{spec.strategy}".encode("utf-8")).digest()
    return spec.seed * 1_000_003 + int.from_bytes(digest[:4], "big")


def run_chaos_run(
    dag: str = "grid-keyed",
    strategy: str = "dsm",
    mode: str = "notice",
    duration_s: float = 600.0,
    seed: int = 2018,
    storm_count: int = 3,
    storm_start_s: float = 150.0,
    storm_spacing_s: float = 120.0,
    notice_s: float = 120.0,
    jitter_s: float = 15.0,
    config: Optional[RuntimeConfig] = None,
    controller_config: Optional[ControllerConfig] = None,
    spot_market: Optional[SpotMarket] = None,
    provisioning: Optional[ProvisioningModel] = None,
    schedule: Optional[ChaosSchedule] = None,
    telemetry: bool = False,
) -> ChaosRunResult:
    """Ride one eviction storm in one recovery mode.

    The dataflow is deployed on a **spot** D2 worker fleet (the on-demand D3
    util VM hosting sources and sinks is off-limits to the injector, as the
    infrastructure VMs are in the paper's setup), periodic checkpoints are
    forced on for every strategy (unplanned recovery needs a committed
    checkpoint to restore from), and the storm's evictions fire with
    ``notice_s`` of warning.  In ``"notice"`` mode the warning is wired to
    the controller; in ``"oblivious"`` mode it is dropped and the VM simply
    dies at the deadline.

    The autoscaling loop is *not* started: the run isolates fault handling.
    Pass ``config`` to override the runtime configuration (e.g. the batch
    stepper's on/off equivalence check) and ``schedule`` to replace the
    default storm.
    """
    if mode not in ("notice", "oblivious"):
        raise ValueError(f"unknown chaos mode {mode!r}; choose 'notice' or 'oblivious'")
    spec = ChaosScenarioSpec(
        dag=dag,
        strategy=strategy,
        mode=mode,
        duration_s=duration_s,
        seed=seed,
        storm_count=storm_count,
        storm_start_s=storm_start_s,
        storm_spacing_s=storm_spacing_s,
        notice_s=notice_s,
        jitter_s=jitter_s,
    )
    mixed = _mix_seed(spec)
    strategy_cls = strategy_by_name(strategy)
    if config is None:
        config = strategy_cls.runtime_config(seed=mixed)
    else:
        # The caller's config is a template of feature flags (e.g. the batch
        # stepper's equivalence check); the seed always comes from the cell
        # mix so flag variants share their random streams.
        config = config.copy()
        config.seed = mixed
    if telemetry:
        config.telemetry = True
    if config.reliability.periodic_checkpoint_interval_s is None:
        # Unplanned recovery restores keyed state from the last *committed*
        # checkpoint; without a periodic wave DCR/CCR would only checkpoint
        # during migrations and a kill before the first one loses state.
        config.reliability.periodic_checkpoint_interval_s = 30.0

    # Hermetic run: event ids restart at 1 so results do not depend on what
    # else ran in this process.
    reset_event_ids()
    sim = Simulator()
    dataflow = topologies.by_name(dag)

    provider = CloudProvider(
        sim,
        spot_market=spot_market if spot_market is not None
        else SpotMarket(discount=0.35, eviction_rate_per_hour=0.5, notice_s=notice_s),
        provisioning=provisioning if provisioning is not None
        else ProvisioningModel(base_latency_s=30.0, jitter_fraction=0.2,
                               straggler_prob=0.05, straggler_multiplier=4.0,
                               failure_prob=0.02),
        rng=RandomSource(mixed),
    )
    cluster = Cluster()
    util_vm = provider.provision(D3, 1, name_prefix="util", market=ON_DEMAND)[0]
    util_vm.tags["role"] = "util"
    cluster.add_vm(util_vm)
    worker_count = int(math.ceil(dataflow.total_instances() / D2.slots))
    initial_vms = provider.provision(D2, worker_count, name_prefix="d2", market=SPOT)
    for vm in initial_vms:
        cluster.add_vm(vm)

    runtime = TopologyRuntime(dataflow, cluster, sim=sim, config=config)
    runtime.deploy()
    runtime.start()

    controller_config = controller_config if controller_config is not None else ControllerConfig()
    monitor = ElasticityMonitor(runtime, interval_s=controller_config.check_interval_s)
    planner = AllocationPlanner(dataflow)
    controller = ElasticityController(
        runtime, provider, monitor, planner, strategy_cls, config=controller_config
    )

    injector = FaultInjector(
        sim,
        cluster,
        provider,
        seed=mixed,
        on_notice=controller.handle_eviction_notice if mode == "notice" else None,
        on_kill=controller.handle_vm_failure,
        target_markets=(SPOT,),
    )
    if schedule is None:
        schedule = ChaosSchedule.eviction_storm(
            count=storm_count,
            start_s=storm_start_s,
            spacing_s=storm_spacing_s,
            notice_s=notice_s,
            jitter_s=jitter_s,
            seed=mixed,
        )
    injector.arm(schedule)

    try:
        sim.run(until=duration_s)
    finally:
        runtime.stop_sources()

    if runtime.telemetry is not None:
        runtime.telemetry.meta.update(
            scenario="chaos",
            dag=dag,
            strategy=strategy,
            mode=mode,
            seed=seed,
            duration_s=duration_s,
            storm_count=storm_count,
            notice_s=notice_s,
        )
        runtime.telemetry.finalize(
            runtime=runtime, controller=controller, provider=provider, injector=injector
        )
    return ChaosRunResult(
        spec=spec,
        dataflow=dataflow,
        runtime=runtime,
        provider=provider,
        controller=controller,
        injector=injector,
        initial_vm_ids=[vm.vm_id for vm in initial_vms],
    )


def _summarize(result: ChaosRunResult) -> ChaosRunSummary:
    latencies = result.restore_latencies()
    drains = [
        rec.evacuation_latency_s
        for rec in result.evacuations
        if rec.evacuation_latency_s is not None
    ]
    return ChaosRunSummary(
        mode=result.spec.mode,
        result=result,
        faults=len(result.injector.records),
        killed=len(result.injector.killed),
        evaded=len(result.injector.evaded),
        mean_restore_s=sum(latencies) / len(latencies) if latencies else 0.0,
        mean_drain_s=sum(drains) / len(drains) if drains else None,
        replayed_messages=result.replayed_messages,
        events_lost=sum(r.events_lost for r in result.recoveries),
        provisioning_failures=result.provider.provisioning_failures
        + sum(r.provisioning_failures for r in result.recoveries),
        total_cost=result.total_cost,
    )


def run_chaos_experiment(
    dag: str = "grid-keyed",
    strategy: str = "dsm",
    modes: Sequence[str] = DEFAULT_MODES,
    duration_s: float = 600.0,
    seed: int = 2018,
    storm_count: int = 3,
    storm_start_s: float = 150.0,
    storm_spacing_s: float = 120.0,
    notice_s: float = 120.0,
    jitter_s: float = 15.0,
    config: Optional[RuntimeConfig] = None,
    telemetry: bool = False,
) -> ChaosComparisonResult:
    """Ride the same eviction storm once per recovery mode and compare.

    Every mode shares the storm schedule, the seeds and all random streams;
    the runs differ only in whether the eviction *notice* reaches the
    controller.  Scored on restore latency, replayed messages and the bill.
    """
    if not modes:
        raise ValueError("need at least one recovery mode to compare")
    comparison = ChaosComparisonResult(
        dag=dag,
        strategy=strategy,
        duration_s=duration_s,
        storm_count=storm_count,
        notice_s=notice_s,
    )
    for mode in modes:
        result = run_chaos_run(
            dag=dag,
            strategy=strategy,
            mode=mode,
            duration_s=duration_s,
            seed=seed,
            storm_count=storm_count,
            storm_start_s=storm_start_s,
            storm_spacing_s=storm_spacing_s,
            notice_s=notice_s,
            jitter_s=jitter_s,
            config=config,
            telemetry=telemetry,
        )
        comparison.runs[mode] = _summarize(result)
    return comparison
