"""Plain-text rendering of experiment results (tables and timeline sparklines).

The benchmark harness and the examples print the reproduced rows next to the
paper's published values; these helpers keep that output readable without any
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.metrics.timeline import LatencyPoint, RatePoint


def format_value(value: object) -> str:
    """Render one table cell."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None, title: str = "") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[format_value(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a sequence of values as a unicode sparkline of at most ``width`` chars."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    if len(values) > width:
        # Downsample by averaging consecutive chunks.
        chunk = len(values) / width
        values = [
            sum(values[int(i * chunk): max(int(i * chunk) + 1, int((i + 1) * chunk))])
            / max(1, len(values[int(i * chunk): max(int(i * chunk) + 1, int((i + 1) * chunk))]))
            for i in range(width)
        ]
    low = min(values)
    high = max(values)
    span = high - low or 1.0
    return "".join(blocks[min(len(blocks) - 1, int((v - low) / span * (len(blocks) - 1)))] for v in values)


def format_rate_series(name: str, points: Sequence[RatePoint], width: int = 60) -> str:
    """Render a throughput timeline as a labelled sparkline with its range."""
    if not points:
        return f"{name}: (no data)"
    rates = [p.rate for p in points]
    return (
        f"{name:18s} [{points[0].time:7.1f}s .. {points[-1].time:7.1f}s] "
        f"min={min(rates):5.1f} max={max(rates):5.1f} ev/s  {sparkline(rates, width)}"
    )


def format_latency_series(name: str, points: Sequence[LatencyPoint], width: int = 60) -> str:
    """Render a latency timeline as a labelled sparkline with its range."""
    if not points:
        return f"{name}: (no data)"
    values = [p.latency_s * 1000.0 for p in points]
    return (
        f"{name:18s} [{points[0].time:7.1f}s .. {points[-1].time:7.1f}s] "
        f"min={min(values):6.0f} max={max(values):6.0f} ms  {sparkline(values, width)}"
    )
