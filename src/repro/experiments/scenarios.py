"""Scenario runner: one migration experiment, end to end.

Reproduces the paper's experiment setup (§5):

* a dedicated 4-slot D3 VM hosts the source and sink tasks (they are never
  migrated, so end-to-end statistics can be logged without clock skew);
* the dataflow is initially deployed on ``⌈slots/2⌉`` D2 VMs (2 slots each),
  per Table 1;
* for **scale-in** the dataflow migrates to ``⌈slots/4⌉`` D3 VMs (4 slots),
  for **scale-out** to ``slots`` D1 VMs (1 slot each) -- the slot count never
  changes, only the VMs they are packed onto;
* the migration is requested a fixed time after submission (3 minutes in the
  paper) to let the dataflow reach a stable state first, and the run continues
  long enough afterwards to observe catch-up, recovery and stabilization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cluster.cloud import CloudProvider, Cluster
from repro.cluster.placement import PlacementPlan
from repro.cluster.vm import D1, D2, D3, VirtualMachine, VMType
from repro.core.metrics import MigrationMetrics, compute_migration_metrics
from repro.core.strategy import MigrationReport, strategy_by_name
from repro.dataflow import topologies
from repro.dataflow.event import reset_event_ids
from repro.elastic.planner import plan_user_tasks_on
from repro.dataflow.graph import Dataflow
from repro.engine.runtime import TopologyRuntime
from repro.metrics.log import EventLog
from repro.metrics.timeline import LatencyPoint, RatePoint, latency_timeline, rate_timeline
from repro.sim import Simulator


@dataclass(frozen=True)
class VMCounts:
    """Number of VMs of each flavour a dataflow needs (derived from Table 1)."""

    slots: int
    default_d2: int
    scale_in_d3: int
    scale_out_d1: int


def vm_counts_for(dataflow: Dataflow) -> VMCounts:
    """VM counts for a dataflow, following the paper's provisioning rule.

    For the five paper dataflows this reproduces Table 1 exactly; for custom
    dataflows (e.g. ``linear(50)``) the same ``⌈slots/slots_per_vm⌉`` rule is
    applied.
    """
    slots = dataflow.total_instances()
    return VMCounts(
        slots=slots,
        default_d2=int(math.ceil(slots / D2.slots)),
        scale_in_d3=int(math.ceil(slots / D3.slots)),
        scale_out_d1=slots,
    )


@dataclass
class ScenarioSpec:
    """Parameters of one migration experiment."""

    dag: str = "grid"
    strategy: str = "ccr"
    scaling: str = "in"
    migrate_at_s: float = 120.0
    post_migration_s: float = 480.0
    seed: int = 2018

    def __post_init__(self) -> None:
        if self.scaling not in ("in", "out"):
            raise ValueError(f"scaling must be 'in' or 'out', got {self.scaling!r}")

    @property
    def scenario_name(self) -> str:
        """Human-readable scenario label, e.g. ``scale-in``."""
        return f"scale-{self.scaling}"


@dataclass
class MigrationRunResult:
    """Everything produced by one migration experiment."""

    spec: ScenarioSpec
    dataflow: Dataflow
    runtime: TopologyRuntime
    report: MigrationReport
    metrics: MigrationMetrics
    initial_vm_ids: List[str]
    target_vm_ids: List[str]

    @property
    def log(self) -> EventLog:
        """The run's raw event log."""
        return self.runtime.log

    def input_timeline(self, bin_s: float = 1.0) -> List[RatePoint]:
        """Source emission rate over the whole run."""
        return rate_timeline(self.log, kind="input", bin_s=bin_s)

    def output_timeline(self, bin_s: float = 1.0) -> List[RatePoint]:
        """Sink receipt rate over the whole run."""
        return rate_timeline(self.log, kind="output", bin_s=bin_s)

    def latency_timeline(self, window_s: float = 10.0) -> List[LatencyPoint]:
        """Average end-to-end latency over consecutive windows."""
        return latency_timeline(self.log, window_s=window_s)


@dataclass
class ExperimentHandle:
    """A deployed-but-not-yet-migrated experiment (for step-by-step control)."""

    spec: ScenarioSpec
    dataflow: Dataflow
    sim: Simulator
    provider: CloudProvider
    cluster: Cluster
    runtime: TopologyRuntime
    initial_vm_ids: List[str]
    util_vm_id: str


def _mix_seed(spec: ScenarioSpec) -> int:
    """Derive a per-cell seed so different (dag, strategy, scaling) cells draw
    independent random values while the whole matrix stays reproducible."""
    import hashlib

    digest = hashlib.sha256(f"{spec.dag}:{spec.strategy}:{spec.scaling}".encode("utf-8")).digest()
    return spec.seed * 1_000_003 + int.from_bytes(digest[:4], "big")


def build_experiment(spec: ScenarioSpec, dataflow: Optional[Dataflow] = None) -> ExperimentHandle:
    """Provision the initial cluster, deploy and start the dataflow.

    The returned handle lets callers (examples, tests) drive the run manually;
    :func:`run_migration_experiment` is the one-call variant.
    """
    strategy_cls = strategy_by_name(spec.strategy)
    config = strategy_cls.runtime_config(seed=_mix_seed(spec))

    sim = Simulator()
    dataflow = dataflow if dataflow is not None else topologies.by_name(spec.dag)
    counts = vm_counts_for(dataflow)

    provider = CloudProvider(sim)
    cluster = Cluster()

    util_vm = provider.provision(D3, 1, name_prefix="util")[0]
    util_vm.tags["role"] = "util"
    cluster.add_vm(util_vm)

    initial_vms = provider.provision(D2, counts.default_d2, name_prefix="d2")
    for vm in initial_vms:
        cluster.add_vm(vm)

    runtime = TopologyRuntime(dataflow, cluster, sim=sim, config=config)
    runtime.deploy()
    runtime.start()
    return ExperimentHandle(
        spec=spec,
        dataflow=dataflow,
        sim=sim,
        provider=provider,
        cluster=cluster,
        runtime=runtime,
        initial_vm_ids=[vm.vm_id for vm in initial_vms],
        util_vm_id=util_vm.vm_id,
    )


def provision_target_vms(handle: ExperimentHandle) -> List[str]:
    """Provision the VMs the dataflow will migrate to (scale-in D3s or scale-out D1s)."""
    counts = vm_counts_for(handle.dataflow)
    if handle.spec.scaling == "in":
        vm_type, count, prefix = D3, counts.scale_in_d3, "d3"
    else:
        vm_type, count, prefix = D1, counts.scale_out_d1, "d1"
    vms = handle.provider.provision(vm_type, count, name_prefix=prefix)
    for vm in vms:
        handle.cluster.add_vm(vm)
    return [vm.vm_id for vm in vms]


def plan_after_scaling(runtime: TopologyRuntime, target_vm_ids: Sequence[str]) -> PlacementPlan:
    """Compute the post-migration placement: user tasks on the target VMs only.

    Sources and sinks keep their existing slots (they are pinned to the
    dedicated util VM and never migrate).  This is the same planning step the
    elastic controller performs; the logic lives in
    :func:`repro.elastic.planner.plan_user_tasks_on`.
    """
    return plan_user_tasks_on(runtime, target_vm_ids)


def run_migration_experiment(
    dag: str = "grid",
    strategy: str = "ccr",
    scaling: str = "in",
    migrate_at_s: float = 120.0,
    post_migration_s: float = 480.0,
    seed: int = 2018,
    dataflow: Optional[Dataflow] = None,
) -> MigrationRunResult:
    """Run one complete migration experiment and compute its §4 metrics.

    The global event-id counter is reset first, making every run hermetic.
    Without this, DSM results depend on the absolute event ids in flight when
    the rebalance kills executors: the acker's XOR tree hash can
    coincidentally return to zero over *lost* ids (Storm's known ack-hash
    collision), so whether a given tree times out and replays varied with
    whatever had consumed ids earlier in the process — i.e. figure outputs
    silently depended on test execution order.
    """
    reset_event_ids()
    spec = ScenarioSpec(
        dag=dag,
        strategy=strategy,
        scaling=scaling,
        migrate_at_s=migrate_at_s,
        post_migration_s=post_migration_s,
        seed=seed,
    )
    handle = build_experiment(spec, dataflow=dataflow)
    runtime = handle.runtime

    # Warm-up: run until the migration request time.
    handle.sim.run(until=spec.migrate_at_s)

    # The new schedule has been planned (outside the scope of the strategies):
    # provision the target VMs and compute the new placement.
    target_vm_ids = provision_target_vms(handle)
    new_plan = plan_after_scaling(runtime, target_vm_ids)

    strategy_cls = strategy_by_name(spec.strategy)
    migration = strategy_cls(runtime)
    report = migration.migrate(new_plan)

    # Observe the post-migration behaviour (catch-up, recovery, stabilization).
    handle.sim.run(until=spec.migrate_at_s + spec.post_migration_s)

    metrics = compute_migration_metrics(
        runtime.log,
        report,
        expected_output_rate=handle.dataflow.output_rate(),
        dataflow_name=handle.dataflow.name,
        scenario=spec.scenario_name,
        end_time=handle.sim.now,
    )
    return MigrationRunResult(
        spec=spec,
        dataflow=handle.dataflow,
        runtime=runtime,
        report=report,
        metrics=metrics,
        initial_vm_ids=handle.initial_vm_ids,
        target_vm_ids=target_vm_ids,
    )
