"""Per-figure experiment drivers.

Each function regenerates the data behind one table or figure of the paper's
evaluation (§5) and returns plain rows/series that the benchmark harness and
the examples print.  Paper-reported values are included alongside so the
reproduction can be compared at a glance; see EXPERIMENTS.md for the
discussion of deviations.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.metrics import MigrationMetrics
from repro.dataflow import topologies
from repro.dataflow.topologies import PAPER_ORDER, TABLE1
from repro.experiments.scenarios import MigrationRunResult, run_migration_experiment, vm_counts_for
from repro.metrics.timeline import LatencyPoint, RatePoint, latency_timeline, rate_timeline
from repro.reliability.statestore import StateStore
from repro.sim import Simulator

#: Strategy evaluation order used in every figure of the paper.
STRATEGY_ORDER: Tuple[str, str, str] = ("dsm", "dcr", "ccr")

#: Paper-reported values for Fig. 5 (restore / catchup / recovery, seconds),
#: keyed by (scaling, dag, strategy).  Catchup and recovery entries of 0 mean
#: "not applicable / not observed" in the paper's stacked bars.
PAPER_FIG5: Dict[Tuple[str, str, str], Tuple[float, float, float]] = {
    ("in", "linear", "dsm"): (67, 50, 0), ("in", "linear", "dcr"): (39, 0, 0), ("in", "linear", "ccr"): (18, 13, 0),
    ("in", "diamond", "dsm"): (49, 12, 0), ("in", "diamond", "dcr"): (28, 0, 0), ("in", "diamond", "ccr"): (27, 14, 0),
    ("in", "star", "dsm"): (57, 10, 103), ("in", "star", "dcr"): (37, 0, 0), ("in", "star", "ccr"): (16, 22, 0),
    ("in", "grid", "dsm"): (92, 103, 80), ("in", "grid", "dcr"): (41, 0, 0), ("in", "grid", "ccr"): (16, 25, 0),
    ("in", "traffic", "dsm"): (70, 51, 52), ("in", "traffic", "dcr"): (40, 0, 0), ("in", "traffic", "ccr"): (16, 21, 0),
    ("out", "linear", "dsm"): (64, 17, 0), ("out", "linear", "dcr"): (35, 0, 0), ("out", "linear", "ccr"): (26, 8, 0),
    ("out", "diamond", "dsm"): (46, 0, 74), ("out", "diamond", "dcr"): (37, 10, 0), ("out", "diamond", "ccr"): (26, 1, 0),
    ("out", "star", "dsm"): (57, 15, 93), ("out", "star", "dcr"): (37, 0, 0), ("out", "star", "ccr"): (27, 9, 0),
    ("out", "grid", "dsm"): (70, 22, 38), ("out", "grid", "dcr"): (36, 20, 0), ("out", "grid", "ccr"): (17, 37, 0),
    ("out", "traffic", "dsm"): (61, 0, 67), ("out", "traffic", "dcr"): (37, 0, 0), ("out", "traffic", "ccr"): (27, 0, 0),
}

#: Paper-reported replayed-message counts for DSM (Fig. 6), keyed by (scaling, dag).
PAPER_FIG6: Dict[Tuple[str, str], int] = {
    ("in", "linear"): 476, ("in", "diamond"): 315, ("in", "star"): 245, ("in", "grid"): 2083, ("in", "traffic"): 1513,
    ("out", "linear"): 239, ("out", "diamond"): 112, ("out", "star"): 292, ("out", "grid"): 1339, ("out", "traffic"): 504,
}

#: Paper-reported stabilization times (Fig. 8, seconds), keyed by (scaling, dag, strategy).
PAPER_FIG8: Dict[Tuple[str, str, str], float] = {
    ("in", "linear", "dsm"): 147, ("in", "linear", "dcr"): 128, ("in", "linear", "ccr"): 100,
    ("in", "diamond", "dsm"): 135, ("in", "diamond", "dcr"): 100, ("in", "diamond", "ccr"): 90,
    ("in", "star", "dsm"): 130, ("in", "star", "dcr"): 116, ("in", "star", "ccr"): 110,
    ("in", "grid", "dsm"): 224, ("in", "grid", "dcr"): 148, ("in", "grid", "ccr"): 130,
    ("in", "traffic", "dsm"): 208, ("in", "traffic", "dcr"): 140, ("in", "traffic", "ccr"): 128,
    ("out", "linear", "dsm"): 139, ("out", "linear", "dcr"): 120, ("out", "linear", "ccr"): 107,
    ("out", "diamond", "dsm"): 135, ("out", "diamond", "dcr"): 131, ("out", "diamond", "ccr"): 112,
    ("out", "star", "dsm"): 147, ("out", "star", "dcr"): 130, ("out", "star", "ccr"): 118,
    ("out", "grid", "dsm"): 200, ("out", "grid", "dcr"): 146, ("out", "grid", "ccr"): 140,
    ("out", "traffic", "dsm"): 183, ("out", "traffic", "dcr"): 137, ("out", "traffic", "ccr"): 120,
}

#: Paper-reported drain/capture durations (§5.1, milliseconds).
PAPER_DRAIN_MS: Dict[Tuple[str, str], float] = {
    ("grid-in", "dcr"): 1875, ("grid-in", "ccr"): 468,
    ("grid-out", "dcr"): 1440, ("grid-out", "ccr"): 550,
    ("linear-in", "dcr"): 905, ("linear-in", "ccr"): 256,
}

#: Paper-reported average rebalance command duration (seconds).
PAPER_REBALANCE_DURATION_S = 7.26

#: Paper-reported state-store micro-benchmark: 2000 events checkpointed in ~100 ms.
PAPER_STATESTORE_EVENTS = 2000
PAPER_STATESTORE_MS = 100.0

#: Default experiment timing used by the figure drivers.  The paper runs each
#: experiment for 12 minutes with the migration requested after 3 minutes; the
#: defaults here use a shorter warm-up (the simulated dataflow reaches steady
#: state within seconds) and the same post-migration observation window.
DEFAULT_MIGRATE_AT_S = 90.0
DEFAULT_POST_MIGRATION_S = 540.0


#: Timeline resolutions the figures use; matrix cells precompute series at
#: exactly these, so the parallel path reproduces the serial output bit for bit.
DEFAULT_RATE_BIN_S = 5.0
DEFAULT_LATENCY_WINDOW_S = 10.0


@dataclass
class MatrixCell:
    """Picklable summary of one (dag, strategy, scaling) experiment.

    Everything the figure drivers read, without the live runtime/simulator a
    full :class:`MigrationRunResult` drags along -- which is what lets
    :meth:`ExperimentMatrix.prefetch` compute cells in worker processes and
    ship them back.
    """

    dag: str
    strategy: str
    scaling: str
    metrics: MigrationMetrics
    #: Simulated time of the migration request (figure timelines are relative to it).
    requested_at: float
    #: Input/output rate timelines at :data:`DEFAULT_RATE_BIN_S` (absolute times).
    input_series: List[RatePoint]
    output_series: List[RatePoint]
    #: Latency timeline at :data:`DEFAULT_LATENCY_WINDOW_S` (absolute times).
    latency_series: List[LatencyPoint]


def _cell_from_result(result: MigrationRunResult) -> MatrixCell:
    return MatrixCell(
        dag=result.spec.dag,
        strategy=result.spec.strategy,
        scaling=result.spec.scaling,
        metrics=result.metrics,
        requested_at=result.report.requested_at,
        input_series=rate_timeline(result.log, kind="input", bin_s=DEFAULT_RATE_BIN_S),
        output_series=rate_timeline(result.log, kind="output", bin_s=DEFAULT_RATE_BIN_S),
        latency_series=latency_timeline(result.log, window_s=DEFAULT_LATENCY_WINDOW_S),
    )


def _compute_cell(spec: Tuple[str, str, str, float, float, int]) -> Tuple[Tuple[str, str, str], MatrixCell]:
    """Worker-process entry point: run one cell, return its picklable summary.

    Runs are hermetic (``run_migration_experiment`` resets the global event-id
    counter), so a cell computed in a fresh process is identical to the same
    cell computed serially in the parent.
    """
    dag, strategy, scaling, migrate_at_s, post_migration_s, seed = spec
    result = run_migration_experiment(
        dag=dag,
        strategy=strategy,
        scaling=scaling,
        migrate_at_s=migrate_at_s,
        post_migration_s=post_migration_s,
        seed=seed,
    )
    return (dag, strategy, scaling), _cell_from_result(result)


@dataclass
class FigureRun:
    """Cache key + cell summary for one (dag, strategy, scaling) experiment."""

    dag: str
    strategy: str
    scaling: str
    result: MatrixCell


class ExperimentMatrix:
    """Runs and caches the (dag x strategy x scaling) experiment matrix.

    Figures 5, 6 and 8 are all computed from the same runs, so the matrix is
    computed lazily and shared.  Cells are hermetic (event ids reset per
    run), so :meth:`prefetch` can fan the missing cells out across worker
    processes for near-linear wall-clock wins on the full figure suite.
    """

    def __init__(
        self,
        migrate_at_s: float = DEFAULT_MIGRATE_AT_S,
        post_migration_s: float = DEFAULT_POST_MIGRATION_S,
        seed: int = 2018,
        dags: Sequence[str] = PAPER_ORDER,
        strategies: Sequence[str] = STRATEGY_ORDER,
    ) -> None:
        self.migrate_at_s = migrate_at_s
        self.post_migration_s = post_migration_s
        self.seed = seed
        self.dags = list(dags)
        self.strategies = list(strategies)
        self._cache: Dict[Tuple[str, str, str], MigrationRunResult] = {}
        self._cells: Dict[Tuple[str, str, str], MatrixCell] = {}

    def run(self, dag: str, strategy: str, scaling: str) -> MigrationRunResult:
        """Run (or return the cached) full experiment for one cell of the matrix."""
        key = (dag, strategy, scaling)
        if key not in self._cache:
            self._cache[key] = run_migration_experiment(
                dag=dag,
                strategy=strategy,
                scaling=scaling,
                migrate_at_s=self.migrate_at_s,
                post_migration_s=self.post_migration_s,
                seed=self.seed,
            )
        return self._cache[key]

    def cell(self, dag: str, strategy: str, scaling: str) -> MatrixCell:
        """The figure-facing summary of one cell (prefetched or computed now)."""
        key = (dag, strategy, scaling)
        if key not in self._cells:
            self._cells[key] = _cell_from_result(self.run(dag, strategy, scaling))
        return self._cells[key]

    def _cell_specs(
        self,
        scalings: Sequence[str],
        dags: Optional[Sequence[str]] = None,
        strategies: Optional[Sequence[str]] = None,
    ) -> List[Tuple[str, str, str, float, float, int]]:
        return [
            (dag, strategy, scaling, self.migrate_at_s, self.post_migration_s, self.seed)
            for scaling in scalings
            for dag in (dags if dags is not None else self.dags)
            for strategy in (strategies if strategies is not None else self.strategies)
            if (dag, strategy, scaling) not in self._cells
        ]

    def prefetch(
        self,
        scalings: Sequence[str] = ("in", "out"),
        processes: Optional[int] = None,
        dags: Optional[Sequence[str]] = None,
        strategies: Optional[Sequence[str]] = None,
    ) -> int:
        """Compute all missing cells for the given scalings, in parallel.

        Fans the cells out over a process pool (``processes`` defaults to the
        CPU count, capped at the number of missing cells) and stores the
        returned :class:`MatrixCell` summaries.  Returns the number of cells
        computed.  With ``processes=1`` (or a single missing cell) the work
        stays in-process -- no pool, no pickling.  ``dags`` / ``strategies``
        optionally restrict the prefetch to a subset (single-DAG figures,
        DSM-only Fig. 6).
        """
        specs = self._cell_specs(scalings, dags, strategies)
        if not specs:
            return 0
        workers = processes if processes is not None else (os.cpu_count() or 1)
        workers = max(1, min(workers, len(specs)))
        if workers == 1:
            for spec in specs:
                key, cell = _compute_cell(spec)
                self._cells[key] = cell
            return len(specs)
        with multiprocessing.Pool(processes=workers) as pool:
            for key, cell in pool.map(_compute_cell, specs):
                self._cells[key] = cell
        return len(specs)

    def results(self, scaling: str) -> List[FigureRun]:
        """All cell summaries for one scaling direction, in paper order."""
        runs = []
        for dag in self.dags:
            for strategy in self.strategies:
                runs.append(FigureRun(dag, strategy, scaling, self.cell(dag, strategy, scaling)))
        return runs


# --------------------------------------------------------------------- Table 1
def table1_rows() -> List[Dict[str, object]]:
    """Reproduce Table 1: tasks, task instances and VM counts per dataflow."""
    rows = []
    for name in PAPER_ORDER:
        dataflow = topologies.by_name(name)
        counts = vm_counts_for(dataflow)
        paper = TABLE1[name]
        rows.append(
            {
                "dag": name,
                "tasks": len(dataflow.user_tasks),
                "tasks_paper": paper.tasks,
                "instances": dataflow.total_instances(),
                "instances_paper": paper.task_instances,
                "default_vms": counts.default_d2,
                "default_vms_paper": paper.default_vms_2slot,
                "scale_in_vms": counts.scale_in_d3,
                "scale_in_vms_paper": paper.scale_in_vms_4slot,
                "scale_out_vms": counts.scale_out_d1,
                "scale_out_vms_paper": paper.scale_out_vms_1slot,
            }
        )
    return rows


# --------------------------------------------------------------------- Figure 5
def figure5_rows(matrix: ExperimentMatrix, scaling: str) -> List[Dict[str, object]]:
    """Reproduce Fig. 5 (a or b): restore, catchup and recovery per DAG and strategy."""
    rows = []
    for run in matrix.results(scaling):
        metrics = run.result.metrics
        paper = PAPER_FIG5.get((scaling, run.dag, run.strategy))
        rows.append(
            {
                "dag": run.dag,
                "strategy": run.strategy,
                "restore_s": metrics.restore_duration_s,
                "catchup_s": metrics.catchup_time_s,
                "recovery_s": metrics.recovery_time_s,
                "restore_paper_s": paper[0] if paper else None,
                "catchup_paper_s": paper[1] if paper else None,
                "recovery_paper_s": paper[2] if paper else None,
            }
        )
    return rows


# --------------------------------------------------------------------- Figure 6
def figure6_rows(matrix: ExperimentMatrix, scaling: str) -> List[Dict[str, object]]:
    """Reproduce Fig. 6 (a or b): failed-and-replayed message counts for DSM."""
    rows = []
    for dag in matrix.dags:
        cell = matrix.cell(dag, "dsm", scaling)
        rows.append(
            {
                "dag": dag,
                "replayed_messages": cell.metrics.replayed_message_count,
                "replayed_paper": PAPER_FIG6.get((scaling, dag)),
            }
        )
    return rows


# --------------------------------------------------------------------- Figure 7
def figure7_series(
    matrix: ExperimentMatrix,
    dag: str = "grid",
    scaling: str = "in",
    bin_s: float = 5.0,
) -> Dict[str, Dict[str, List[RatePoint]]]:
    """Reproduce Fig. 7: input/output throughput timelines during the migration.

    Times in the returned series are relative to the migration request, as in
    the paper's plots.
    """
    series: Dict[str, Dict[str, List[RatePoint]]] = {}
    for strategy in matrix.strategies:
        if bin_s == DEFAULT_RATE_BIN_S:
            cell = matrix.cell(dag, strategy, scaling)
            request = cell.requested_at
            input_points, output_points = cell.input_series, cell.output_series
        else:
            # Non-default resolution: recompute from the full run's log.
            result = matrix.run(dag, strategy, scaling)
            request = result.report.requested_at
            input_points = rate_timeline(result.log, kind="input", bin_s=bin_s)
            output_points = rate_timeline(result.log, kind="output", bin_s=bin_s)
        series[strategy] = {
            "input": [RatePoint(time=p.time - request, rate=p.rate) for p in input_points],
            "output": [RatePoint(time=p.time - request, rate=p.rate) for p in output_points],
        }
    return series


# --------------------------------------------------------------------- Figure 8
def figure8_rows(matrix: ExperimentMatrix, scaling: str) -> List[Dict[str, object]]:
    """Reproduce Fig. 8 (a or b): rate stabilization times per DAG and strategy."""
    rows = []
    for run in matrix.results(scaling):
        rows.append(
            {
                "dag": run.dag,
                "strategy": run.strategy,
                "stabilization_s": run.result.metrics.stabilization_time_s,
                "stabilization_paper_s": PAPER_FIG8.get((scaling, run.dag, run.strategy)),
            }
        )
    return rows


# --------------------------------------------------------------------- Figure 9
def figure9_series(
    matrix: ExperimentMatrix,
    dag: str = "grid",
    scaling: str = "in",
    window_s: float = 10.0,
) -> Dict[str, Dict[str, object]]:
    """Reproduce Fig. 9: average latency over a 10 s moving window for Grid scale-in.

    For each strategy the series of latency points (times relative to the
    migration request) plus the metric boundaries A..E used as vertical lines
    in the paper (restore, catchup, recovery, stabilization) are returned.
    """
    series: Dict[str, Dict[str, object]] = {}
    for strategy in matrix.strategies:
        if window_s == DEFAULT_LATENCY_WINDOW_S:
            cell = matrix.cell(dag, strategy, scaling)
            request = cell.requested_at
            metrics = cell.metrics
            raw_points = cell.latency_series
        else:
            result = matrix.run(dag, strategy, scaling)
            request = result.report.requested_at
            metrics = result.metrics
            raw_points = latency_timeline(result.log, window_s=window_s)
        points = [
            LatencyPoint(time=p.time - request, latency_s=p.latency_s, samples=p.samples)
            for p in raw_points
        ]
        stable = [p.latency_s for p in points if p.time < 0]
        series[strategy] = {
            "latency": points,
            "stable_latency_s": sorted(stable)[len(stable) // 2] if stable else None,
            "boundaries": {
                "A_restore": metrics.restore_duration_s,
                "B_catchup": metrics.catchup_time_s,
                "C_recovery": metrics.recovery_time_s,
                "D_stabilization": metrics.stabilization_time_s,
            },
        }
    return series


# ------------------------------------------------------- drain-time experiment
def drain_time_rows(
    migrate_at_s: float = 60.0,
    post_migration_s: float = 120.0,
    seed: int = 2018,
    include_linear50: bool = True,
) -> List[Dict[str, object]]:
    """Reproduce the §5.1 drain/capture duration comparison (DCR vs CCR).

    Covers Grid scale-in/out and Linear scale-in as reported in the paper,
    plus the 50-task Linear DAG used to show that the DCR-CCR drain gap grows
    with the critical path length.
    """
    cases: List[Tuple[str, str, Optional[object]]] = [
        ("grid", "in", None),
        ("grid", "out", None),
        ("linear", "in", None),
    ]
    if include_linear50:
        cases.append(("linear-50", "in", topologies.linear(50)))

    rows = []
    for label, scaling, dataflow in cases:
        durations = {}
        for strategy in ("dcr", "ccr"):
            result = run_migration_experiment(
                dag=label if dataflow is None else "linear",
                strategy=strategy,
                scaling=scaling,
                migrate_at_s=migrate_at_s,
                post_migration_s=post_migration_s,
                seed=seed,
                dataflow=dataflow,
            )
            durations[strategy] = result.metrics.drain_capture_duration_s * 1000.0
        paper_dcr = PAPER_DRAIN_MS.get((f"{label}-{scaling}", "dcr"))
        paper_ccr = PAPER_DRAIN_MS.get((f"{label}-{scaling}", "ccr"))
        rows.append(
            {
                "case": f"{label} scale-{scaling}",
                "dcr_drain_ms": durations["dcr"],
                "ccr_capture_ms": durations["ccr"],
                "delta_ms": durations["dcr"] - durations["ccr"],
                "dcr_paper_ms": paper_dcr,
                "ccr_paper_ms": paper_ccr,
            }
        )
    return rows


# --------------------------------------------------- rebalance-duration summary
def rebalance_duration_summary(matrix: ExperimentMatrix, scalings: Sequence[str] = ("in", "out")) -> Dict[str, float]:
    """Reproduce the §5.1 observation that the rebalance command averages ~7.26 s."""
    durations: List[float] = []
    for scaling in scalings:
        for run in matrix.results(scaling):
            rebalance = run.result.metrics.rebalance_duration_s
            if rebalance is not None:
                durations.append(rebalance)
    if not durations:
        return {"mean_s": float("nan"), "min_s": float("nan"), "max_s": float("nan"), "paper_mean_s": PAPER_REBALANCE_DURATION_S}
    return {
        "mean_s": sum(durations) / len(durations),
        "min_s": min(durations),
        "max_s": max(durations),
        "samples": len(durations),
        "paper_mean_s": PAPER_REBALANCE_DURATION_S,
    }


# ----------------------------------------------------- state-store micro-bench
def statestore_micro(num_events: int = PAPER_STATESTORE_EVENTS) -> Dict[str, float]:
    """Reproduce the §5.1 micro-benchmark: time to checkpoint ``num_events`` events."""
    sim = Simulator()
    store = StateStore(sim)
    size = store.checkpoint_size_bytes(state_size_bytes=0, pending_events=num_events)
    latency_s = store.put("micro/checkpoint", {"pending": num_events}, size)
    return {
        "events": num_events,
        "measured_ms": latency_s * 1000.0,
        "paper_ms": PAPER_STATESTORE_MS,
    }
