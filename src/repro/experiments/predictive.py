"""Predictive scenario runner: reactive vs forecast-driven scaling policies.

The control-plane pipeline makes the demand forecaster pluggable; this runner
quantifies what each policy buys.  The same dataflow rides the same profile
once per policy -- ``reactive`` (the original threshold loop), ``ewma``,
``holt-winters`` and the ``lookahead`` oracle -- with identical seeds (the
policy is deliberately not mixed into the random streams), and each run is
scored on:

* **SLO-violation seconds** -- how long the mean sink latency spent above the
  configured SLO (the metric rapid elasticity exists to minimize);
* **provisioning lead time** -- how far *before* the surge lands the first
  scale-out was decided (positive = the fleet was growing before the load
  arrived; reactive policies are always negative by at least the detection
  lag);
* **cost** -- the cloud bill, because front-running a surge keeps extra
  capacity billed for longer (the trade-off the comparison table surfaces).

All runs enable capacity-adding parallelism rescale and the SLO-breach
override, so the comparison isolates the *forecast* stage.  The ``repro
predict`` CLI subcommand prints the comparison table and can emit the
headline numbers as JSON for the CI perf-trend accumulation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.dataflow import topologies
from repro.elastic import ControllerConfig
from repro.experiments.elastic import ElasticRunResult, run_elastic_experiment
from repro.workloads.profiles import RampProfile, RateProfile, StepProfile, profile_by_name

#: Policies compared by default, in report order.
DEFAULT_POLICIES: Tuple[str, ...] = ("reactive", "ewma", "holt-winters", "lookahead")


@dataclass
class PredictiveRunSummary:
    """How one forecast policy fared on the shared scenario."""

    policy: str
    result: ElasticRunResult
    slo_latency_s: float
    #: Seconds of the run whose mean sink latency exceeded the SLO.
    slo_violation_s: float
    #: Mean end-to-end sink latency over the whole run (``inf`` if wedged).
    mean_sink_latency_s: float
    peak_backlog: int
    #: Simulated time the first scale-out was decided (None: never).
    first_scale_out_at: Optional[float]
    #: ``surge_start - first_scale_out_at``; positive = provisioned before
    #: the surge landed.  None when the scenario has no step surge or the
    #: policy never scaled out.
    provision_lead_s: Optional[float]
    scale_actions: int
    total_cost: float

    def as_dict(self) -> Dict[str, object]:
        """Row for table formatting."""
        return {
            "policy": self.policy,
            "slo_violation_s": round(self.slo_violation_s, 1),
            "lead_s": round(self.provision_lead_s, 1) if self.provision_lead_s is not None else "-",
            "mean_latency_s": (
                round(self.mean_sink_latency_s, 3)
                if self.mean_sink_latency_s != float("inf") else "inf"
            ),
            "peak_backlog": self.peak_backlog,
            "scale_actions": self.scale_actions,
            "cost": round(self.total_cost, 4),
        }


@dataclass
class PredictiveComparisonResult:
    """Everything produced by one reactive-vs-predictive comparison."""

    dag: str
    strategy: str
    profile: str
    duration_s: float
    slo_latency_s: float
    #: Step-surge window when the scenario has one (None for diurnal).
    surge_start_s: Optional[float]
    surge_end_s: Optional[float]
    #: Policy name -> its run summary, in requested order.
    runs: Dict[str, PredictiveRunSummary] = field(default_factory=dict)
    #: Policy name -> the run's :class:`repro.obs.Telemetry` (telemetry runs
    #: only; empty otherwise).
    telemetries: Dict[str, object] = field(default_factory=dict)

    @property
    def reactive(self) -> Optional[PredictiveRunSummary]:
        """The reactive baseline run, if it was part of the comparison."""
        return self.runs.get("reactive")

    def violation_improvement_s(self, policy: str) -> Optional[float]:
        """SLO-violation seconds saved vs the reactive baseline (>0 = better)."""
        baseline = self.reactive
        if baseline is None or policy not in self.runs:
            return None
        return baseline.slo_violation_s - self.runs[policy].slo_violation_s

    def best_predictive(self) -> Optional[PredictiveRunSummary]:
        """The non-reactive policy with the fewest SLO-violation seconds."""
        candidates = [s for name, s in self.runs.items() if name != "reactive"]
        if not candidates:
            return None
        return min(candidates, key=lambda s: s.slo_violation_s)

    def headline_benchmarks(self) -> Dict[str, Dict[str, float]]:
        """Per-policy headline numbers in the ``BENCH_engine.json`` shape.

        The SLO-violation seconds ride the ``mean_s`` field so the existing
        trend accumulation and drift chart track them like any benchmark.
        """
        return {
            f"predict_{summary.policy}_slo_violation_s": {"mean_s": summary.slo_violation_s}
            for summary in self.runs.values()
        }

    def write_headline_json(
        self, path: Union[str, Path], timestamp: Optional[str] = None
    ) -> Path:
        """Write the headline numbers for the CI perf-trend accumulation."""
        from ..metrics.metadata import run_metadata

        payload = run_metadata(
            "repro-bench-predictive/1",
            timestamp=timestamp,
            dag=self.dag,
            strategy=self.strategy,
            profile=self.profile,
            slo_latency_s=self.slo_latency_s,
            benchmarks=self.headline_benchmarks(),
        )
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path


def _summarize(
    policy: str,
    result: ElasticRunResult,
    slo_latency_s: float,
    surge_start_s: Optional[float],
) -> PredictiveRunSummary:
    receipts = result.log.sink_receipts
    mean_latency = (
        sum(r.latency_s for r in receipts) / len(receipts) if receipts else float("inf")
    )
    backlogs = [s.queue_backlog + s.source_backlog for s in result.samples]
    outs = result.scale_outs()
    first_out = min((a.decided_at for a in outs), default=None)
    lead: Optional[float] = None
    if surge_start_s is not None and first_out is not None:
        lead = surge_start_s - first_out
    return PredictiveRunSummary(
        policy=policy,
        result=result,
        slo_latency_s=slo_latency_s,
        slo_violation_s=result.monitor.slo_violation_seconds(slo_latency_s),
        mean_sink_latency_s=mean_latency,
        peak_backlog=max(backlogs) if backlogs else 0,
        first_scale_out_at=first_out,
        provision_lead_s=lead,
        scale_actions=len(result.actions),
        total_cost=result.total_cost,
    )


def _scenario_profile(
    name: str, base_rate: float, duration_s: float, surge_multiplier: float
) -> Tuple[RateProfile, Optional[float], Optional[float]]:
    """The scenario's total-rate profile plus its surge window (if step-like)."""
    if name in ("surge", "step"):
        start, end = duration_s * 0.25, duration_s * 0.60
        profile: RateProfile = StepProfile(
            steps=[(0.0, base_rate), (start, base_rate * surge_multiplier), (end, base_rate)]
        )
        return profile, start, end
    if name == "ramp":
        start, end = duration_s * 0.25, duration_s * 0.60
        return (
            RampProfile(
                start_rate=base_rate, end_rate=base_rate * surge_multiplier,
                ramp_start_s=start, ramp_end_s=end,
            ),
            start,
            end,
        )
    # Named presets (diurnal, burst, ...) have no single surge instant.
    return profile_by_name(name, base_rate=base_rate, duration_s=duration_s), None, None


def run_predictive_experiment(
    dag: str = "grid",
    strategy: str = "ccr",
    profile: str = "surge",
    policies: Sequence[str] = DEFAULT_POLICIES,
    surge_multiplier: float = 2.0,
    duration_s: float = 600.0,
    seed: int = 2018,
    slo_latency_s: float = 30.0,
    instance_capacity_ev_s: float = 8.0,
    controller_config: Optional[ControllerConfig] = None,
    elastic_parallelism: bool = True,
    placement: str = "incremental",
    telemetry: bool = False,
) -> PredictiveComparisonResult:
    """Compare forecast policies head to head on one dynamism scenario.

    Each policy rides the same profile (step ``surge``/``ramp`` scaled by
    ``surge_multiplier``, or a named preset such as ``diurnal``) with the
    same seed-derived random streams, capacity-adding rescale, the
    SLO-breach override armed at ``slo_latency_s``, and (by default) the
    incremental placer -- so the runs differ *only* in the forecast stage.
    """
    if not policies:
        raise ValueError("need at least one policy to compare")
    if controller_config is None:
        controller_config = ControllerConfig(
            check_interval_s=15.0, confirm_samples=2, cooldown_s=60.0
        )
    base_config = replace(
        controller_config,
        slo_latency_s=slo_latency_s,
        placement=placement,
    )

    comparison: Optional[PredictiveComparisonResult] = None
    for policy in policies:
        dataflow = topologies.by_name(dag)
        base_rate = sum(float(source.rate) for source in dataflow.sources)
        rate_profile, surge_start, surge_end = _scenario_profile(
            profile, base_rate, duration_s, surge_multiplier
        )
        if comparison is None:
            comparison = PredictiveComparisonResult(
                dag=dag,
                strategy=strategy,
                profile=profile,
                duration_s=duration_s,
                slo_latency_s=slo_latency_s,
                surge_start_s=surge_start,
                surge_end_s=surge_end,
            )
        result = run_elastic_experiment(
            dag=dag,
            strategy=strategy,
            profile=rate_profile,
            duration_s=duration_s,
            seed=seed,
            dataflow=dataflow,
            controller_config=replace(base_config, forecast_policy=policy),
            instance_capacity_ev_s=instance_capacity_ev_s,
            elastic_parallelism=elastic_parallelism,
            forecast_policy=policy,
            telemetry=telemetry,
        )
        comparison.runs[policy] = _summarize(policy, result, slo_latency_s, surge_start)
        if result.telemetry is not None:
            result.telemetry.meta.update(policy=policy, scenario="predict")
            comparison.telemetries[policy] = result.telemetry
    assert comparison is not None
    return comparison
