"""Experiment harness: scenario runner and per-figure drivers.

:mod:`repro.experiments.scenarios` assembles the full stack (cloud, cluster,
dataflow, runtime, strategy) for one migration experiment exactly as the paper
describes its setup (Table 1 VM counts, 8 ev/s sources, dedicated source/sink
VM, migration a fixed time after submission) and returns the metrics, report
and raw event log.

:mod:`repro.experiments.figures` contains one driver per table/figure of the
paper's evaluation; the ``benchmarks/`` directory calls these and prints the
reproduced rows next to the paper's published values.

:mod:`repro.experiments.elastic` goes beyond the paper's manual experiments:
profile-driven sources plus the :mod:`repro.elastic` autoscaling loop, which
triggers migrations automatically as the input rate changes.

:mod:`repro.experiments.rescale` compares capacity-adding scale-out (runtime
parallelism rescale during the migration) against the paper's placement-only
scaling on the same surge profile.

:mod:`repro.experiments.multi` hosts several dataflows as tenants of one
shared, budget-arbitrated fleet (offset surges, bin-packed placement) and
compares each tenant against its private-fleet baseline.

:mod:`repro.experiments.predictive` compares the control pipeline's forecast
policies (reactive / EWMA / Holt-Winters / profile lookahead) on one
dynamism scenario, scoring SLO-violation seconds, provisioning lead time and
cost.

:mod:`repro.experiments.sharded` partitions a keyed workload across a process
pool (one hermetic simulation per key partition) and merges the per-shard
logs into one bit-stable :class:`~repro.metrics.log.EventLog`.

:mod:`repro.experiments.chaos` rides a deterministic spot-eviction storm once
per recovery mode (notice-aware drain vs oblivious unplanned recovery) and
compares restore latency, replayed messages and the cloud bill.
"""

from repro.experiments.scenarios import (
    MigrationRunResult,
    ScenarioSpec,
    build_experiment,
    plan_after_scaling,
    run_migration_experiment,
    vm_counts_for,
)
from repro.experiments.elastic import (
    ElasticRunResult,
    ElasticScenarioSpec,
    run_elastic_experiment,
)
from repro.experiments.rescale import (
    RescaleComparisonResult,
    RescaleRunSummary,
    run_rescale_experiment,
)
from repro.experiments.multi import (
    ManagedRunResult,
    MultiExperimentResult,
    TenantSummary,
    run_multi_experiment,
)
from repro.experiments.predictive import (
    PredictiveComparisonResult,
    PredictiveRunSummary,
    run_predictive_experiment,
)
from repro.experiments.sharded import (
    PlannedAction,
    ShardedElasticRunResult,
    ShardedRunResult,
    plan_control_actions,
    plan_shards,
    run_sharded_elastic_experiment,
    run_sharded_experiment,
    run_steady_shard,
)
from repro.experiments.chaos import (
    ChaosComparisonResult,
    ChaosRunResult,
    ChaosRunSummary,
    run_chaos_experiment,
    run_chaos_run,
)
from repro.experiments.figures import ExperimentMatrix
from repro.experiments.formatting import format_table

__all__ = [
    "ChaosComparisonResult",
    "ChaosRunResult",
    "ChaosRunSummary",
    "ElasticRunResult",
    "ElasticScenarioSpec",
    "ExperimentMatrix",
    "ManagedRunResult",
    "MigrationRunResult",
    "MultiExperimentResult",
    "PlannedAction",
    "PredictiveComparisonResult",
    "PredictiveRunSummary",
    "RescaleComparisonResult",
    "RescaleRunSummary",
    "ScenarioSpec",
    "ShardedElasticRunResult",
    "ShardedRunResult",
    "TenantSummary",
    "build_experiment",
    "plan_control_actions",
    "plan_shards",
    "format_table",
    "plan_after_scaling",
    "run_chaos_experiment",
    "run_chaos_run",
    "run_elastic_experiment",
    "run_migration_experiment",
    "run_multi_experiment",
    "run_predictive_experiment",
    "run_rescale_experiment",
    "run_sharded_elastic_experiment",
    "run_sharded_experiment",
    "run_steady_shard",
    "vm_counts_for",
]
