"""Elastic scenario runner: a profile-driven run under the autoscaling loop.

Where :mod:`repro.experiments.scenarios` reproduces the paper's *manual*
experiments (one migration, requested at a fixed time), this runner closes
the loop the paper motivates: the sources follow a
:class:`~repro.workloads.profiles.RateProfile`, the
:class:`~repro.elastic.controller.ElasticityController` watches the observed
rate and migrates the dataflow between D1/D2/D3 allocations with any of the
registered strategies, and vacated VMs are deprovisioned so the per-minute
bill tracks the load.

The result carries the full timeline (monitor samples), every enacted
:class:`~repro.elastic.controller.ScalingAction` with its
:class:`~repro.core.strategy.MigrationReport`, and the final cloud bill.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.cluster.cloud import CloudProvider, Cluster
from repro.cluster.vm import D2, D3
from repro.core.strategy import strategy_by_name
from repro.dataflow import topologies
from repro.dataflow.event import reset_event_ids
from repro.dataflow.graph import Dataflow
from repro.elastic import (
    AllocationPlanner,
    ControllerConfig,
    ElasticityController,
    ElasticityMonitor,
    ForecastPolicy,
    MonitorSample,
    ScalingAction,
    forecast_policy_by_name,
)
from repro.engine.config import RuntimeConfig
from repro.engine.runtime import TopologyRuntime
from repro.metrics.log import EventLog
from repro.metrics.timeline import LatencyPoint, RatePoint, latency_timeline, rate_timeline
from repro.sim import Simulator
from repro.workloads.profiles import RateProfile, profile_by_name


@dataclass
class ElasticScenarioSpec:
    """Parameters of one elastic (closed-loop) experiment."""

    dag: str = "traffic"
    strategy: str = "ccr"
    profile: str = "surge"
    duration_s: float = 900.0
    seed: int = 2018
    #: Whether the controller may change task parallelism (capacity-adding
    #: scaling) instead of only repacking fixed slots (the paper's scoping).
    elastic_parallelism: bool = False
    #: Demand forecaster driving the control pipeline (``reactive`` is the
    #: original threshold behaviour).  Deliberately not mixed into the seed:
    #: runs differing only in policy share their random streams, so the
    #: comparison isolates the policy.
    forecast_policy: str = "reactive"


@dataclass
class ElasticRunResult:
    """Everything produced by one elastic experiment."""

    spec: ElasticScenarioSpec
    dataflow: Dataflow
    runtime: TopologyRuntime
    provider: CloudProvider
    monitor: ElasticityMonitor
    controller: ElasticityController
    profile: RateProfile
    initial_vm_ids: List[str] = field(default_factory=list)

    @property
    def log(self) -> EventLog:
        """The run's raw event log."""
        return self.runtime.log

    @property
    def telemetry(self):
        """The run's :class:`repro.obs.Telemetry`, or ``None`` when off."""
        return self.runtime.telemetry

    @property
    def actions(self) -> List[ScalingAction]:
        """All scaling actions the controller enacted, in time order."""
        return self.controller.actions

    @property
    def samples(self) -> List[MonitorSample]:
        """The monitor's timeline of observations."""
        return self.monitor.samples

    @property
    def total_cost(self) -> float:
        """Total accrued cloud cost at the end of the run."""
        return self.provider.total_cost()

    def scale_outs(self) -> List[ScalingAction]:
        """Actions that expanded the allocation."""
        return [a for a in self.actions if a.direction == "out"]

    def scale_ins(self) -> List[ScalingAction]:
        """Actions that consolidated the allocation."""
        return [a for a in self.actions if a.direction == "in"]

    def input_timeline(self, bin_s: float = 5.0) -> List[RatePoint]:
        """Source emission rate over the whole run."""
        return rate_timeline(self.log, kind="input", bin_s=bin_s)

    def output_timeline(self, bin_s: float = 5.0) -> List[RatePoint]:
        """Sink receipt rate over the whole run."""
        return rate_timeline(self.log, kind="output", bin_s=bin_s)

    def latency_timeline(self, window_s: float = 10.0) -> List[LatencyPoint]:
        """Average end-to-end latency over consecutive windows."""
        return latency_timeline(self.log, window_s=window_s)


def _mix_seed(spec: ElasticScenarioSpec) -> int:
    """Independent randomness per (dag, strategy, profile) cell, reproducibly.

    The ``elastic_parallelism`` flag is deliberately *not* mixed in: the
    capacity-adding and placement-only variants of the same cell share their
    random streams, so comparisons between them isolate the rescale decision
    itself.
    """
    digest = hashlib.sha256(
        f"elastic:{spec.dag}:{spec.strategy}:{spec.profile}".encode("utf-8")
    ).digest()
    return spec.seed * 1_000_003 + int.from_bytes(digest[:4], "big")


def run_elastic_experiment(
    dag: str = "traffic",
    strategy: str = "ccr",
    profile: Union[str, RateProfile] = "surge",
    duration_s: float = 900.0,
    seed: int = 2018,
    dataflow: Optional[Dataflow] = None,
    config: Optional[RuntimeConfig] = None,
    controller_config: Optional[ControllerConfig] = None,
    instance_capacity_ev_s: float = 8.0,
    provisioning_latency_s: float = 30.0,
    billing_granularity_s: float = 60.0,
    elastic_parallelism: bool = False,
    task_capacities_ev_s: Optional[dict] = None,
    forecast_policy: Optional[Union[str, ForecastPolicy]] = None,
    telemetry: bool = False,
) -> ElasticRunResult:
    """Run one closed-loop elastic experiment.

    The dataflow is deployed on the paper's baseline allocation (D2 VMs plus
    the dedicated source/sink util VM), its sources follow ``profile`` (a
    preset name or a :class:`RateProfile` instance), and the controller
    scales the deployment with the chosen strategy whenever the observed
    rate leaves the current tier's band.  Runs until ``duration_s``.

    With ``elastic_parallelism=True`` the controller issues combined
    rescale + migrate decisions: a scale-out adds task instances (real
    capacity) instead of only repacking the same slots onto more VMs, and a
    scale-in retires them.  Task parallelism of the supplied ``dataflow``
    may then be mutated by the run.  ``task_capacities_ev_s`` optionally maps
    task names to per-instance service rates for heterogeneous sizing.

    ``forecast_policy`` selects the control pipeline's demand forecaster: a
    registered name, a :class:`ForecastPolicy` instance, or ``None`` to use
    the controller config's choice.  The ``lookahead`` policy is bound to the
    run's total-rate profile automatically.
    """
    # Hermetic run: event ids restart at 1 so results do not depend on what
    # else ran in this process (see run_migration_experiment for the DSM
    # ack-hash rationale).
    reset_event_ids()
    profile_name = profile if isinstance(profile, str) else type(profile).__name__
    if isinstance(forecast_policy, ForecastPolicy):
        policy_name = forecast_policy.name
    elif forecast_policy is not None:
        policy_name = forecast_policy
    elif controller_config is not None:
        policy_name = controller_config.forecast_policy
    else:
        policy_name = "reactive"
    spec = ElasticScenarioSpec(
        dag=dag,
        strategy=strategy,
        profile=profile_name,
        duration_s=duration_s,
        seed=seed,
        elastic_parallelism=elastic_parallelism,
        forecast_policy=policy_name,
    )
    strategy_cls = strategy_by_name(strategy)
    if config is None:
        config = strategy_cls.runtime_config(seed=_mix_seed(spec))
    if telemetry and not config.telemetry:
        config = config.copy()
        config.telemetry = True

    sim = Simulator()
    dataflow = dataflow if dataflow is not None else topologies.by_name(dag)

    # Attach rate profiles to the source tasks before executors exist.  A
    # preset name is instantiated per source at that source's own base rate
    # (so the *total* offered rate follows the preset's shape); sources that
    # already carry a profile keep it.  A RateProfile instance describes one
    # source's rate, so it is only accepted for single-source dataflows.
    sources = dataflow.sources
    base_rate = sum(float(getattr(s, "rate", 0.0)) for s in sources)
    # The caller's dataflow must come back unchanged: remember each source's
    # profile and restore it after the run.  Without this, a reused dataflow
    # kept the *first* run's profile forever (the is-None guard skipped it on
    # the next call) while the result claimed the newly requested one.
    original_profiles = [(source, source.profile) for source in sources]
    if isinstance(profile, str):
        rate_profile = profile_by_name(profile, base_rate=base_rate, duration_s=duration_s)
        for source in sources:
            if source.profile is None:
                source.profile = profile_by_name(
                    profile, base_rate=float(source.rate), duration_s=duration_s
                )
    else:
        if len(sources) > 1:
            raise ValueError(
                "a RateProfile instance is ambiguous for a multi-source dataflow; "
                "attach per-source profiles to the SourceTasks and pass a preset "
                "name (or 'constant') instead"
            )
        rate_profile = profile
        sources[0].profile = rate_profile

    provider = CloudProvider(
        sim,
        provisioning_latency_s=provisioning_latency_s,
        billing_granularity_s=billing_granularity_s,
    )
    cluster = Cluster()
    util_vm = provider.provision(D3, 1, name_prefix="util")[0]
    util_vm.tags["role"] = "util"
    cluster.add_vm(util_vm)

    planner = AllocationPlanner(
        dataflow,
        instance_capacity_ev_s=instance_capacity_ev_s,
        task_capacities_ev_s=task_capacities_ev_s,
        elastic_parallelism=elastic_parallelism,
    )
    # Initial deployment is always the paper's default packing (Table 1: D2s),
    # whatever tier the profile's first rate will steer the controller toward.
    initial_count = int(math.ceil(dataflow.total_instances() / D2.slots))
    initial_vms = provider.provision(D2, initial_count, name_prefix="d2")
    for vm in initial_vms:
        cluster.add_vm(vm)

    runtime = TopologyRuntime(dataflow, cluster, sim=sim, config=config)
    runtime.deploy()
    runtime.start()

    monitor = ElasticityMonitor(
        runtime,
        interval_s=(controller_config or ControllerConfig()).check_interval_s,
    )
    # Resolve the forecast policy to an instance here, where the run's
    # total-rate profile is known (the lookahead oracle reads it).
    resolved_policy: Optional[ForecastPolicy] = None
    if isinstance(forecast_policy, ForecastPolicy):
        resolved_policy = forecast_policy
    elif policy_name != "reactive" or forecast_policy is not None:
        resolved_policy = forecast_policy_by_name(policy_name, profile=rate_profile)
    controller = ElasticityController(
        runtime,
        provider,
        monitor,
        planner,
        strategy_cls,
        config=controller_config,
        initial_tier="baseline",
        forecast_policy=resolved_policy,
    )
    controller.start()

    try:
        sim.run(until=duration_s)
    finally:
        controller.stop()
        runtime.stop_sources()
        # Hand the dataflow back the way we received it (see above); the
        # executors captured their profiles at start, so the completed
        # result is unaffected.
        for source, original_profile in original_profiles:
            source.profile = original_profile

    if runtime.telemetry is not None:
        runtime.telemetry.meta.update(
            scenario="elastic",
            dag=dag,
            strategy=strategy,
            profile=profile_name,
            seed=seed,
            duration_s=duration_s,
        )
        runtime.telemetry.finalize(
            runtime=runtime, controller=controller, provider=provider
        )
    return ElasticRunResult(
        spec=spec,
        dataflow=dataflow,
        runtime=runtime,
        provider=provider,
        monitor=monitor,
        controller=controller,
        profile=rate_profile,
        initial_vm_ids=[vm.vm_id for vm in initial_vms],
    )
