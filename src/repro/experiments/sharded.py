"""Partition-parallel steady-state runs: the concrete shard worker + driver.

The paper's workloads are keyed (vehicles, meters): events of different keys
never interact in the dummy-logic dataflows, so the key space can be split
into ``N`` partitions and each partition simulated in its own process against
a private replica of the dataflow — the model-level analogue of running one
tenant per partition.  Shard ``i`` of ``N`` simulates the global source
sequences ``i, i+N, i+2N, ...``: its source emits at ``rate / N`` and its
payload factory is remapped so local sequence ``s`` produces the payload of
global sequence ``s*N + i`` (keys and values match what the unsharded source
would have generated for exactly those events).

Determinism contract: a shard's log is a pure function of its
:class:`~repro.sim.shard.ShardSpec` — the worker resets the global event-id
counter on entry and derives all randomness from the spec's shard seed — and
the merge is a pure function of the shard logs.  Worker-pool size therefore
cannot affect the merged :class:`~repro.metrics.log.EventLog`, which the
shard-determinism tests assert byte-for-byte via
:func:`~repro.sim.shard.log_digest`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.cloud import CloudProvider, Cluster, NetworkModel
from repro.cluster.vm import D2, D3
from repro.core.strategy import strategy_by_name
from repro.dataflow import topologies
from repro.dataflow.event import reset_event_ids
from repro.dataflow.task import SourceTask
from repro.engine.runtime import TopologyRuntime
from repro.experiments.scenarios import vm_counts_for
from repro.metrics.log import EventLog
from repro.sim import RandomSource, Simulator
from repro.sim.shard import (
    ShardResult,
    ShardSpec,
    log_digest,
    merge_shard_results,
    run_shards,
    shard_worker_count,
)


def plan_shards(
    dag: str = "grid",
    shards: int = 4,
    duration_s: float = 10.0,
    seed: int = 2018,
    strategy: str = "dcr",
    batch_stepping: bool = True,
) -> List[ShardSpec]:
    """The shard specs of one partitioned run (one spec per key partition)."""
    return [
        ShardSpec(
            index=index,
            shards=shards,
            dag=dag,
            strategy=strategy,
            duration_s=duration_s,
            seed=seed,
            batch_stepping=batch_stepping,
        )
        for index in range(shards)
    ]


def _partitioned_factory(base, index: int, shards: int):
    """Remap a payload factory onto shard ``index``'s global subsequence."""
    if base is None:
        return None

    def _factory(sequence: int):
        return base(sequence * shards + index)

    return _factory


def run_steady_shard(spec: ShardSpec) -> ShardResult:
    """Simulate one key partition's steady-state run, hermetically.

    Module-level so ``multiprocessing`` pickles it by reference.  Builds the
    same stack as a scenario warm-up (util VM for sources/sinks, Table-1 D2
    fleet for the user tasks), but with the source scaled down to the
    partition's share of the stream.
    """
    reset_event_ids()
    strategy_cls = strategy_by_name(spec.strategy)
    config = strategy_cls.runtime_config(seed=spec.shard_seed)
    config.batch_stepping = spec.batch_stepping
    # Keyed per-channel jitter is the prerequisite for sharding (a channel's
    # draws must not depend on cross-channel interleaving), so sharded runs
    # use it in classic mode too — batched and classic shards then differ
    # only in event-id assignment order.
    config.keyed_network_jitter = True

    dataflow = topologies.by_name(spec.dag)
    for task in dataflow.sources:
        if isinstance(task, SourceTask):
            task.rate = task.rate / spec.shards
            task.payload_factory = _partitioned_factory(
                task.payload_factory, spec.index, spec.shards
            )

    sim = Simulator()
    provider = CloudProvider(sim)
    # The network's RNG is the source of every steady-state jitter draw; seed
    # it from the shard so partitions draw independent jitter and the run's
    # master seed is actually observable in the merged log.
    cluster = Cluster(network=NetworkModel(rng=RandomSource(spec.shard_seed)))
    util_vm = provider.provision(D3, 1, name_prefix="util")[0]
    util_vm.tags["role"] = "util"
    cluster.add_vm(util_vm)
    for vm in provider.provision(D2, vm_counts_for(dataflow).default_d2, name_prefix="d2"):
        cluster.add_vm(vm)

    runtime = TopologyRuntime(dataflow, cluster, sim=sim, config=config)
    runtime.deploy()
    runtime.start()
    sim.run(until=spec.duration_s)
    log = runtime.log
    return ShardResult(
        index=spec.index,
        emits=list(log.source_emits),
        receipts=list(log.sink_receipts),
        summary=log.summary(),
    )


@dataclass
class ShardedRunResult:
    """A partitioned run: per-shard results plus the merged, bit-stable log."""

    specs: List[ShardSpec]
    results: List[ShardResult]
    log: EventLog
    workers: int

    @property
    def digest(self) -> str:
        """Content hash of the merged log (worker-count invariant)."""
        return log_digest(self.log)


def run_sharded_experiment(
    dag: str = "grid",
    shards: int = 4,
    workers: Optional[int] = None,
    duration_s: float = 10.0,
    seed: int = 2018,
    strategy: str = "dcr",
    batch_stepping: bool = True,
) -> ShardedRunResult:
    """Run a steady-state experiment partitioned across a process pool.

    ``workers=None`` resolves via ``REPRO_SIM_SHARDS`` (see
    :func:`~repro.sim.shard.shard_worker_count`); ``workers=1`` runs every
    shard inline, which must — and is tested to — produce a byte-identical
    merged log.
    """
    specs = plan_shards(
        dag=dag,
        shards=shards,
        duration_s=duration_s,
        seed=seed,
        strategy=strategy,
        batch_stepping=batch_stepping,
    )
    if workers is None:
        workers = shard_worker_count(shards)
    results = run_shards(specs, run_steady_shard, workers=workers)
    return ShardedRunResult(
        specs=specs,
        results=results,
        log=merge_shard_results(results),
        workers=workers,
    )
