"""Partition-parallel steady-state runs: the concrete shard worker + driver.

The paper's workloads are keyed (vehicles, meters): events of different keys
never interact in the dummy-logic dataflows, so the key space can be split
into ``N`` partitions and each partition simulated in its own process against
a private replica of the dataflow — the model-level analogue of running one
tenant per partition.  Shard ``i`` of ``N`` simulates the global source
sequences ``i, i+N, i+2N, ...``: its source emits at ``rate / N`` and its
payload factory is remapped so local sequence ``s`` produces the payload of
global sequence ``s*N + i`` (keys and values match what the unsharded source
would have generated for exactly those events).

Determinism contract: a shard's log is a pure function of its
:class:`~repro.sim.shard.ShardSpec` — the worker resets the global event-id
counter on entry and derives all randomness from the spec's shard seed — and
the merge is a pure function of the shard logs.  Worker-pool size therefore
cannot affect the merged :class:`~repro.metrics.log.EventLog`, which the
shard-determinism tests assert byte-for-byte via
:func:`~repro.sim.shard.log_digest`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.cloud import CloudProvider, Cluster, NetworkModel
from repro.cluster.vm import D2, D3
from repro.core.strategy import strategy_by_name
from repro.dataflow import topologies
from repro.dataflow.event import reset_event_ids
from repro.dataflow.task import SourceTask
from repro.elastic.controller import ControllerConfig
from repro.elastic.monitor import ElasticityMonitor, MonitorSample
from repro.elastic.planner import TIER_ORDER, AllocationPlanner
from repro.engine.runtime import TopologyRuntime
from repro.experiments.scenarios import vm_counts_for
from repro.metrics.log import ColumnarEventLog, EventLog
from repro.sim import RandomSource, Simulator
from repro.sim.shard import (
    ShardResult,
    ShardSpec,
    log_digest,
    merge_monitor_samples,
    merge_shard_results,
    run_shards,
    shard_worker_count,
)
from repro.workloads.profiles import profile_by_name


def plan_shards(
    dag: str = "grid",
    shards: int = 4,
    duration_s: float = 10.0,
    seed: int = 2018,
    strategy: str = "dcr",
    batch_stepping: bool = True,
    profile: Optional[str] = None,
    sample_interval_s: float = 0.0,
) -> List[ShardSpec]:
    """The shard specs of one partitioned run (one spec per key partition)."""
    return [
        ShardSpec(
            index=index,
            shards=shards,
            dag=dag,
            strategy=strategy,
            duration_s=duration_s,
            seed=seed,
            batch_stepping=batch_stepping,
            profile=profile,
            sample_interval_s=sample_interval_s,
        )
        for index in range(shards)
    ]


def _partitioned_factory(base, index: int, shards: int):
    """Remap a payload factory onto shard ``index``'s global subsequence."""
    if base is None:
        return None

    def _factory(sequence: int):
        return base(sequence * shards + index)

    return _factory


def run_steady_shard(spec: ShardSpec) -> ShardResult:
    """Simulate one key partition's steady-state run, hermetically.

    Module-level so ``multiprocessing`` pickles it by reference.  Builds the
    same stack as a scenario warm-up (util VM for sources/sinks, Table-1 D2
    fleet for the user tasks), but with the source scaled down to the
    partition's share of the stream.
    """
    reset_event_ids()
    strategy_cls = strategy_by_name(spec.strategy)
    config = strategy_cls.runtime_config(seed=spec.shard_seed)
    config.batch_stepping = spec.batch_stepping
    # Keyed per-channel jitter is the prerequisite for sharding (a channel's
    # draws must not depend on cross-channel interleaving), so sharded runs
    # use it in classic mode too — batched and classic shards then differ
    # only in event-id assignment order.
    config.keyed_network_jitter = True
    # Shard logs are columnar so the result ships plain field arrays and the
    # merge never touches a per-record object (classic fallback sans numpy).
    config.columnar_log = True

    dataflow = topologies.by_name(spec.dag)
    for task in dataflow.sources:
        if isinstance(task, SourceTask):
            task.rate = task.rate / spec.shards
            task.payload_factory = _partitioned_factory(
                task.payload_factory, spec.index, spec.shards
            )
            if spec.profile is not None:
                # Each shard's sources follow the preset at 1/shards of the
                # amplitude, so the merged offered rate follows the preset.
                task.profile = profile_by_name(
                    spec.profile, base_rate=float(task.rate), duration_s=spec.duration_s
                )

    sim = Simulator()
    provider = CloudProvider(sim)
    # The network's RNG is the source of every steady-state jitter draw; seed
    # it from the shard so partitions draw independent jitter and the run's
    # master seed is actually observable in the merged log.
    cluster = Cluster(network=NetworkModel(rng=RandomSource(spec.shard_seed)))
    util_vm = provider.provision(D3, 1, name_prefix="util")[0]
    util_vm.tags["role"] = "util"
    cluster.add_vm(util_vm)
    for vm in provider.provision(D2, vm_counts_for(dataflow).default_d2, name_prefix="d2"):
        cluster.add_vm(vm)

    runtime = TopologyRuntime(dataflow, cluster, sim=sim, config=config)
    runtime.deploy()
    runtime.start()
    monitor: Optional[ElasticityMonitor] = None
    if spec.sample_interval_s > 0:
        monitor = ElasticityMonitor(runtime, interval_s=spec.sample_interval_s)
        monitor.start()
    sim.run(until=spec.duration_s)
    log = runtime.log
    if isinstance(log, ColumnarEventLog):
        return ShardResult(
            index=spec.index,
            summary=log.summary(),
            emit_columns=log.emit_columns(),
            receipt_columns=log.receipt_columns(),
            samples=list(monitor.samples) if monitor is not None else [],
        )
    return ShardResult(
        index=spec.index,
        emits=list(log.source_emits),
        receipts=list(log.sink_receipts),
        summary=log.summary(),
        samples=list(monitor.samples) if monitor is not None else [],
    )


@dataclass
class ShardedRunResult:
    """A partitioned run: per-shard results plus the merged, bit-stable log."""

    specs: List[ShardSpec]
    results: List[ShardResult]
    log: EventLog
    workers: int

    @property
    def digest(self) -> str:
        """Content hash of the merged log (worker-count invariant)."""
        return log_digest(self.log)


def run_sharded_experiment(
    dag: str = "grid",
    shards: int = 4,
    workers: Optional[int] = None,
    duration_s: float = 10.0,
    seed: int = 2018,
    strategy: str = "dcr",
    batch_stepping: bool = True,
) -> ShardedRunResult:
    """Run a steady-state experiment partitioned across a process pool.

    ``workers=None`` resolves via ``REPRO_SIM_SHARDS`` (see
    :func:`~repro.sim.shard.shard_worker_count`); ``workers=1`` runs every
    shard inline, which must — and is tested to — produce a byte-identical
    merged log.
    """
    specs = plan_shards(
        dag=dag,
        shards=shards,
        duration_s=duration_s,
        seed=seed,
        strategy=strategy,
        batch_stepping=batch_stepping,
    )
    if workers is None:
        workers = shard_worker_count(shards)
    results = run_shards(specs, run_steady_shard, workers=workers)
    return ShardedRunResult(
        specs=specs,
        results=results,
        log=merge_shard_results(results),
        workers=workers,
    )


# --------------------------------------------------------------------------
# Sharded elastic runs: partitioned simulation, centralized controller tick
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class PlannedAction:
    """One scaling decision of the centralized shadow controller.

    Plan-only: the sharded run records what the controller *would* enact at
    each confirmed decision point, without feeding the migration back into
    the (already running) shards.
    """

    #: Simulated time of the decision (after hysteresis confirmed it).
    decided_at: float
    #: ``out`` (adding capacity) or ``in`` (consolidating).
    direction: str
    from_tier: str
    to_tier: str
    #: Merged offered rate (ev/s) that confirmed the decision.
    observed_rate: float
    #: VM fleet the planner sized for the target tier.
    vm_counts: Tuple[Tuple[str, int], ...]


def plan_control_actions(
    samples: List[MonitorSample],
    dataflow,
    config: Optional[ControllerConfig] = None,
    initial_tier: str = "baseline",
    planner: Optional[AllocationPlanner] = None,
) -> List[PlannedAction]:
    """Replay the elasticity controller's decision rule over merged samples.

    This is the centralized tick of a sharded elastic run: each shard runs
    its own monitor, the merge aggregates the per-shard samples
    (:func:`~repro.sim.shard.merge_monitor_samples`), and this function
    applies the same reactive decision logic as
    :meth:`~repro.elastic.controller.ElasticityController._tick` — planner
    sizing against the *unsharded* dataflow, ``confirm_samples`` hysteresis,
    cooldown, and the drain-aware scale-in guard.  Differences from the
    closed-loop controller are inherent to planning offline: the cooldown
    runs from the decision time (there is no enactment to wait for) and
    actions do not change the running shards.  The output is a pure function
    of the samples, hence worker-count invariant.
    """
    if planner is None:
        planner = AllocationPlanner(dataflow)
    if config is None:
        config = ControllerConfig()
    tier = initial_tier
    pending_tier: Optional[str] = None
    pending_count = 0
    cooldown_until = float("-inf")
    actions: List[PlannedAction] = []
    for sample in samples:
        if sample.sources_paused:
            continue
        target = planner.plan(sample.offered_rate, current_tier=tier)
        if target.tier == tier and target.rescale is None:
            pending_tier = None
            pending_count = 0
            continue
        if target.tier != pending_tier:
            pending_tier = target.tier
            pending_count = 1
        else:
            pending_count += 1
        if pending_count < config.confirm_samples:
            continue
        if sample.time < cooldown_until:
            continue
        direction = "out" if TIER_ORDER[target.tier] > TIER_ORDER[tier] else "in"
        if direction == "in" and config.drain_guard_backlog_s:
            backlog = sample.queue_backlog + sample.source_backlog
            if backlog > config.drain_guard_backlog_s * max(sample.offered_rate, 1.0):
                continue
        actions.append(PlannedAction(
            decided_at=sample.time,
            direction=direction,
            from_tier=tier,
            to_tier=target.tier,
            observed_rate=sample.offered_rate,
            vm_counts=tuple(sorted(target.vm_counts.items())),
        ))
        tier = target.tier
        pending_tier = None
        pending_count = 0
        cooldown_until = sample.time + config.cooldown_s
    return actions


@dataclass
class ShardedElasticRunResult:
    """A sharded elastic run: merged log + timeline + planned scaling actions."""

    specs: List[ShardSpec]
    results: List[ShardResult]
    log: EventLog
    workers: int
    samples: List[MonitorSample] = field(default_factory=list)
    actions: List[PlannedAction] = field(default_factory=list)

    @property
    def digest(self) -> str:
        """Content hash of the merged log (worker-count invariant)."""
        return log_digest(self.log)

    @property
    def action_sequence(self) -> List[Tuple]:
        """The controller decisions as comparable tuples (for identity checks)."""
        return [
            (a.decided_at, a.direction, a.from_tier, a.to_tier, a.observed_rate, a.vm_counts)
            for a in self.actions
        ]


def run_sharded_elastic_experiment(
    dag: str = "grid",
    shards: int = 4,
    workers: Optional[int] = None,
    duration_s: float = 300.0,
    seed: int = 2018,
    strategy: str = "dcr",
    profile: str = "surge",
    batch_stepping: bool = True,
    controller_config: Optional[ControllerConfig] = None,
) -> ShardedElasticRunResult:
    """Run a profile-driven elastic experiment partitioned across a pool.

    First rung of sharded elasticity: the keyed partitions are simulated in
    parallel (each source follows ``profile`` at ``1/shards`` amplitude,
    each shard samples a private monitor on the controller's check
    interval), then the *centralized* controller tick consumes the merged
    samples and replays the reactive decision rule against the unsharded
    dataflow (:func:`plan_control_actions`).  Both the merged log and the
    planned action sequence are byte-identical for 1 vs N workers.
    """
    config = controller_config if controller_config is not None else ControllerConfig()
    specs = plan_shards(
        dag=dag,
        shards=shards,
        duration_s=duration_s,
        seed=seed,
        strategy=strategy,
        batch_stepping=batch_stepping,
        profile=profile,
        sample_interval_s=config.check_interval_s,
    )
    if workers is None:
        workers = shard_worker_count(shards)
    results = run_shards(specs, run_steady_shard, workers=workers)
    samples = merge_monitor_samples([result.samples for result in results])
    actions = plan_control_actions(samples, topologies.by_name(dag), config=config)
    return ShardedElasticRunResult(
        specs=specs,
        results=results,
        log=merge_shard_results(results),
        workers=workers,
        samples=samples,
        actions=actions,
    )
