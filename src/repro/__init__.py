"""repro: reliable and rapid elasticity for streaming dataflows on clouds.

A full reproduction of Shukla & Simmhan, *"Toward Reliable and Rapid
Elasticity for Streaming Dataflows on Clouds"* (ICDCS 2018), built on a
Storm-like distributed stream processing engine simulated with a deterministic
discrete-event kernel.

Quickstart
----------
>>> from repro import run_migration_experiment
>>> result = run_migration_experiment(dag="grid", strategy="ccr", scaling="in",
...                                    migrate_at_s=60, post_migration_s=240)
>>> result.metrics.restore_duration_s is not None
True

Package layout
--------------
``repro.core``
    The paper's contribution: the DSM / DCR / CCR migration strategies and the
    §4 metrics.
``repro.engine`` / ``repro.dataflow`` / ``repro.cluster`` / ``repro.reliability``
    The Storm-like substrate: topologies, executors, routing, acking,
    checkpointing, the state store and the cloud/VM model.
``repro.experiments`` / ``repro.metrics`` / ``repro.workloads``
    Experiment harness, measurement infrastructure and synthetic workloads.
"""

from repro.core import (
    CaptureCheckpointResume,
    DefaultStormMigration,
    DrainCheckpointRestore,
    MigrationMetrics,
    MigrationReport,
    MigrationStrategy,
    STRATEGIES,
    compute_migration_metrics,
    strategy_by_name,
)
from repro.dataflow import Dataflow, TopologyBuilder, topologies
from repro.engine import RuntimeConfig, TopologyRuntime
from repro.experiments import run_migration_experiment, ScenarioSpec
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "CaptureCheckpointResume",
    "Dataflow",
    "DefaultStormMigration",
    "DrainCheckpointRestore",
    "MigrationMetrics",
    "MigrationReport",
    "MigrationStrategy",
    "RuntimeConfig",
    "STRATEGIES",
    "ScenarioSpec",
    "Simulator",
    "TopologyBuilder",
    "TopologyRuntime",
    "compute_migration_metrics",
    "run_migration_experiment",
    "strategy_by_name",
    "topologies",
    "__version__",
]
