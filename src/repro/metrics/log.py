"""The event log: raw observations collected by the engine during a run.

The engine appends a record for every source emission, sink receipt, dropped
event, executor kill and lifecycle transition.  Experiments and metrics are
computed entirely from this log (plus the strategy's phase timestamps), which
mirrors the paper's methodology of logging event timestamps on the VMs and
analysing them offline.

Index design
------------
The log is append-only and simulated time never goes backwards, so the record
lists are monotone in time.  Next to each hot list the log maintains a plain
``List[float]`` of the record times (:attr:`EventLog.emit_times`,
:attr:`EventLog.receipt_times`); every windowed query
(``receipts_after/between``, ``emits_between``, ``first_receipt_after``, the
recovery-metric scans) binary-searches those arrays with :mod:`bisect` instead
of scanning the whole list — monitors and metrics issue these queries every
sample, which made the naive linear scans quadratic over a long run.
``distinct_roots_received`` is maintained incrementally for the same reason.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.sim import Simulator


@dataclass(frozen=True, slots=True)
class SourceEmit:
    """One event emission by a source task (first emission, backlog drain or replay)."""

    time: float
    root_id: int
    source: str
    replay_count: int
    from_backlog: bool


@dataclass(frozen=True, slots=True)
class SinkReceipt:
    """One event received by a sink task."""

    time: float
    root_id: int
    event_id: int
    sink: str
    root_emitted_at: float
    replay_count: int

    @property
    def latency_s(self) -> float:
        """End-to-end latency measured from the root's original emission."""
        return self.time - self.root_emitted_at


@dataclass(frozen=True, slots=True)
class DropRecord:
    """An event dropped because its destination executor could not accept it."""

    time: float
    executor_id: str
    kind: str
    reason: str
    root_id: Optional[int] = None


@dataclass(frozen=True, slots=True)
class DeferredRecord:
    """A data event held by the transport while its destination executor restarts."""

    time: float
    executor_id: str
    root_id: Optional[int] = None


@dataclass(frozen=True, slots=True)
class KillRecord:
    """An executor kill, with the number of queued events lost."""

    time: float
    executor_id: str
    queued_events_lost: int
    pending_events_lost: int


@dataclass(frozen=True, slots=True)
class LifecycleRecord:
    """An executor lifecycle transition (started, killed, restarted, ready, initialized)."""

    time: float
    executor_id: str
    status: str


class EventLog:
    """Accumulates raw run observations and answers the queries metrics need."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.source_emits: List[SourceEmit] = []
        self.sink_receipts: List[SinkReceipt] = []
        self.drops: List[DropRecord] = []
        self.deferred: List[DeferredRecord] = []
        self.kills: List[KillRecord] = []
        self.lifecycle: List[LifecycleRecord] = []
        self.replay_emits: int = 0
        #: Monotone time arrays parallel to source_emits / sink_receipts
        #: (the bisect indexes behind every windowed query).
        self.emit_times: List[float] = []
        self.receipt_times: List[float] = []
        self._root_first_emit: Dict[int, float] = {}
        self._roots_received: Set[int] = set()

    # -------------------------------------------------------------- recording
    def record_source_emit(
        self,
        root_id: int,
        source: str,
        replay_count: int = 0,
        from_backlog: bool = False,
        at_time: Optional[float] = None,
    ) -> None:
        """Record that a source emitted (or re-emitted) a root event.

        ``at_time`` serves the batch-stepping cascade, which materializes
        many ticks inside one kernel callback: each emission is stamped with
        its exact tick time.  Stamped times must be non-decreasing (the
        ``emit_times`` index is binary-searched).
        """
        now = self.sim.now if at_time is None else at_time
        self.source_emits.append(
            SourceEmit(time=now, root_id=root_id, source=source,
                       replay_count=replay_count, from_backlog=from_backlog)
        )
        self.emit_times.append(now)
        if replay_count > 0:
            self.replay_emits += 1
        if root_id not in self._root_first_emit:
            self._root_first_emit[root_id] = now

    def record_sink_receipt(
        self,
        root_id: int,
        event_id: int,
        sink: str,
        root_emitted_at: float,
        replay_count: int,
        at_time: Optional[float] = None,
    ) -> None:
        """Record that a sink received an event (now, or at an explicit time).

        ``at_time`` lets a sink's batched service loop stamp each receipt
        with its exact completion time even though the batch's bookkeeping
        runs in one later callback.  Callers must keep stamped times
        non-decreasing (the ``receipt_times`` index is binary-searched).
        """
        now = self.sim.now if at_time is None else at_time
        self.sink_receipts.append(
            SinkReceipt(time=now, root_id=root_id, event_id=event_id, sink=sink,
                        root_emitted_at=root_emitted_at, replay_count=replay_count)
        )
        self.receipt_times.append(now)
        self._roots_received.add(root_id)

    def record_drop(self, executor_id: str, kind: str, reason: str, root_id: Optional[int] = None) -> None:
        """Record that an event could not be delivered to an executor."""
        self.drops.append(
            DropRecord(time=self.sim.now, executor_id=executor_id, kind=kind, reason=reason, root_id=root_id)
        )

    def record_deferred(self, executor_id: str, root_id: Optional[int] = None) -> None:
        """Record that the transport is holding a data event for a restarting executor."""
        self.deferred.append(DeferredRecord(time=self.sim.now, executor_id=executor_id, root_id=root_id))

    def record_kill(self, executor_id: str, queued_events_lost: int, pending_events_lost: int = 0) -> None:
        """Record an executor kill and the in-flight events lost with it."""
        self.kills.append(
            KillRecord(time=self.sim.now, executor_id=executor_id,
                       queued_events_lost=queued_events_lost, pending_events_lost=pending_events_lost)
        )

    def record_lifecycle(self, executor_id: str, status: str) -> None:
        """Record an executor lifecycle transition."""
        self.lifecycle.append(LifecycleRecord(time=self.sim.now, executor_id=executor_id, status=status))

    # ---------------------------------------------------------------- queries
    def root_first_emit_time(self, root_id: int) -> Optional[float]:
        """Time at which the given root event was first emitted, if known."""
        return self._root_first_emit.get(root_id)

    def is_old_root(self, root_id: int, migration_time: float) -> bool:
        """Whether the root was first emitted before the migration request."""
        first = self._root_first_emit.get(root_id)
        return first is not None and first < migration_time

    def receipts_after(self, time: float) -> List[SinkReceipt]:
        """Sink receipts at or after the given time, in time order."""
        return self.sink_receipts[bisect_left(self.receipt_times, time):]

    def receipts_between(self, start: float, end: float) -> List[SinkReceipt]:
        """Sink receipts in ``[start, end)``."""
        times = self.receipt_times
        return self.sink_receipts[bisect_left(times, start):bisect_left(times, end)]

    def emits_between(self, start: float, end: float) -> List[SourceEmit]:
        """Source emissions in ``[start, end)``."""
        times = self.emit_times
        return self.source_emits[bisect_left(times, start):bisect_left(times, end)]

    def first_receipt_after(self, time: float) -> Optional[SinkReceipt]:
        """Earliest sink receipt at or after the given time, if any."""
        index = bisect_left(self.receipt_times, time)
        return self.sink_receipts[index] if index < len(self.sink_receipts) else None

    def last_old_receipt(self, migration_time: float) -> Optional[SinkReceipt]:
        """Latest sink receipt (after migration) of a root emitted before the migration.

        Walks backwards from the end of the (time-ordered) receipt list and
        stops at the first old-root receipt, instead of filtering the whole
        log.  Among equal-time candidates the *earliest-recorded* one is
        returned, matching the historical ``max(..., key=time)`` behaviour
        (``max`` keeps the first of ties in iteration order).
        """
        receipts = self.sink_receipts
        start = bisect_left(self.receipt_times, migration_time)
        for index in range(len(receipts) - 1, start - 1, -1):
            receipt = receipts[index]
            if self.is_old_root(receipt.root_id, migration_time):
                best = receipt
                for prior_index in range(index - 1, start - 1, -1):
                    prior = receipts[prior_index]
                    if prior.time != best.time:
                        break
                    if self.is_old_root(prior.root_id, migration_time):
                        best = prior
                return best
        return None

    def last_replay_receipt(self, migration_time: float) -> Optional[SinkReceipt]:
        """Latest sink receipt of a replayed (previously failed) event after the migration.

        Same backward walk and tie handling as :meth:`last_old_receipt`.
        """
        receipts = self.sink_receipts
        start = bisect_left(self.receipt_times, migration_time)
        for index in range(len(receipts) - 1, start - 1, -1):
            receipt = receipts[index]
            if receipt.replay_count > 0:
                best = receipt
                for prior_index in range(index - 1, start - 1, -1):
                    prior = receipts[prior_index]
                    if prior.time != best.time:
                        break
                    if prior.replay_count > 0:
                        best = prior
                return best
        return None

    def lost_in_kills(self) -> int:
        """Total number of queued events lost across all executor kills."""
        return sum(k.queued_events_lost for k in self.kills)

    def dropped_count(self, kind: Optional[str] = None) -> int:
        """Number of dropped deliveries, optionally filtered by event kind."""
        if kind is None:
            return len(self.drops)
        return sum(1 for d in self.drops if d.kind == kind)

    def deferred_count(self) -> int:
        """Number of data events the transport held for restarting executors."""
        return len(self.deferred)

    def distinct_roots_received(self) -> int:
        """Number of distinct root events observed at the sinks.

        Maintained incrementally at record time (a set-size read, not a scan).
        """
        return len(self._roots_received)

    def summary(self) -> Dict[str, float]:
        """Coarse counters describing the run (useful in example output)."""
        return {
            "source_emits": len(self.source_emits),
            "replay_emits": self.replay_emits,
            "sink_receipts": len(self.sink_receipts),
            "distinct_roots_received": self.distinct_roots_received(),
            "drops": len(self.drops),
            "kills": len(self.kills),
            "events_lost_in_kills": self.lost_in_kills(),
        }
