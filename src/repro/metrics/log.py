"""The event log: raw observations collected by the engine during a run.

The engine appends a record for every source emission, sink receipt, dropped
event, executor kill and lifecycle transition.  Experiments and metrics are
computed entirely from this log (plus the strategy's phase timestamps), which
mirrors the paper's methodology of logging event timestamps on the VMs and
analysing them offline.

Index design
------------
The log is append-only and simulated time never goes backwards, so the record
lists are monotone in time.  Next to each hot list the log maintains a plain
``List[float]`` of the record times (:attr:`EventLog.emit_times`,
:attr:`EventLog.receipt_times`); every windowed query
(``receipts_after/between``, ``emits_between``, ``first_receipt_after``, the
recovery-metric scans) binary-searches those arrays with :mod:`bisect` instead
of scanning the whole list — monitors and metrics issue these queries every
sample, which made the naive linear scans quadratic over a long run.
``distinct_roots_received`` is maintained incrementally for the same reason.

Columnar backend
----------------
:class:`ColumnarEventLog` stores the two hot streams (emits, receipts) as
numpy struct-of-arrays instead of lists of dataclass rows: one growable
float64/int64 column per field, with task names interned into a shared string
table.  The query API stays bit-compatible — ``source_emits``,
``sink_receipts``, ``emit_times`` and ``receipt_times`` become lazy row views
that only materialize :class:`SourceEmit`/:class:`SinkReceipt` objects (or
Python floats) when a record is actually touched, so every bisect-indexed
query above works unchanged.  The payoff is the write path: the batch
stepper's vectorized cascade hands whole arrays to
:meth:`EventLog.extend_emits`/:meth:`EventLog.extend_receipts` and the
columnar backend appends them with numpy copies, no per-event Python object.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set

try:  # numpy is baked into the image; guard anyway so the engine degrades.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: Whether the columnar backend is usable in this interpreter.
HAVE_COLUMNAR = _np is not None

from repro.sim import Simulator


def _as_list(values: Any) -> List:
    """Sequence → plain list of *Python* scalars (ndarray-safe).

    ``ndarray.tolist`` converts numpy scalars to builtins, which matters for
    bit-compatibility: records and digests must hold ``float``/``int``, never
    ``np.float64`` (whose ``repr`` differs).
    """
    tolist = getattr(values, "tolist", None)
    if tolist is not None:
        return tolist()
    return list(values)


@dataclass(frozen=True, slots=True)
class SourceEmit:
    """One event emission by a source task (first emission, backlog drain or replay)."""

    time: float
    root_id: int
    source: str
    replay_count: int
    from_backlog: bool


@dataclass(frozen=True, slots=True)
class SinkReceipt:
    """One event received by a sink task."""

    time: float
    root_id: int
    event_id: int
    sink: str
    root_emitted_at: float
    replay_count: int

    @property
    def latency_s(self) -> float:
        """End-to-end latency measured from the root's original emission."""
        return self.time - self.root_emitted_at


@dataclass(frozen=True, slots=True)
class DropRecord:
    """An event dropped because its destination executor could not accept it."""

    time: float
    executor_id: str
    kind: str
    reason: str
    root_id: Optional[int] = None


@dataclass(frozen=True, slots=True)
class DeferredRecord:
    """A data event held by the transport while its destination executor restarts."""

    time: float
    executor_id: str
    root_id: Optional[int] = None


@dataclass(frozen=True, slots=True)
class KillRecord:
    """An executor kill, with the number of queued events lost."""

    time: float
    executor_id: str
    queued_events_lost: int
    pending_events_lost: int


@dataclass(frozen=True, slots=True)
class LifecycleRecord:
    """An executor lifecycle transition (started, killed, restarted, ready, initialized)."""

    time: float
    executor_id: str
    status: str


class EventLog:
    """Accumulates raw run observations and answers the queries metrics need."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.source_emits: List[SourceEmit] = []
        self.sink_receipts: List[SinkReceipt] = []
        self.drops: List[DropRecord] = []
        self.deferred: List[DeferredRecord] = []
        self.kills: List[KillRecord] = []
        self.lifecycle: List[LifecycleRecord] = []
        self.replay_emits: int = 0
        #: Monotone time arrays parallel to source_emits / sink_receipts
        #: (the bisect indexes behind every windowed query).
        self.emit_times: List[float] = []
        self.receipt_times: List[float] = []
        self._root_first_emit: Dict[int, float] = {}
        self._roots_received: Set[int] = set()

    # -------------------------------------------------------------- recording
    def record_source_emit(
        self,
        root_id: int,
        source: str,
        replay_count: int = 0,
        from_backlog: bool = False,
        at_time: Optional[float] = None,
    ) -> None:
        """Record that a source emitted (or re-emitted) a root event.

        ``at_time`` serves the batch-stepping cascade, which materializes
        many ticks inside one kernel callback: each emission is stamped with
        its exact tick time.  Stamped times must be non-decreasing (the
        ``emit_times`` index is binary-searched).
        """
        now = self.sim.now if at_time is None else at_time
        self.source_emits.append(
            SourceEmit(time=now, root_id=root_id, source=source,
                       replay_count=replay_count, from_backlog=from_backlog)
        )
        self.emit_times.append(now)
        if replay_count > 0:
            self.replay_emits += 1
        if root_id not in self._root_first_emit:
            self._root_first_emit[root_id] = now

    def record_sink_receipt(
        self,
        root_id: int,
        event_id: int,
        sink: str,
        root_emitted_at: float,
        replay_count: int,
        at_time: Optional[float] = None,
    ) -> None:
        """Record that a sink received an event (now, or at an explicit time).

        ``at_time`` lets a sink's batched service loop stamp each receipt
        with its exact completion time even though the batch's bookkeeping
        runs in one later callback.  Callers must keep stamped times
        non-decreasing (the ``receipt_times`` index is binary-searched).
        """
        now = self.sim.now if at_time is None else at_time
        self.sink_receipts.append(
            SinkReceipt(time=now, root_id=root_id, event_id=event_id, sink=sink,
                        root_emitted_at=root_emitted_at, replay_count=replay_count)
        )
        self.receipt_times.append(now)
        self._roots_received.add(root_id)

    # ----------------------------------------------------------- bulk appends
    def extend_emits(
        self,
        times: Sequence[float],
        root_ids: Sequence[int],
        source: str,
        replay_count: int = 0,
        from_backlog: bool = False,
    ) -> None:
        """Bulk-append one source's fresh emission cohort.

        ``times`` must be non-decreasing and start at or after the last
        recorded emit time; ``root_ids`` must be first emissions (the batch
        stepper reserves fresh ids per cohort).  Accepts any sequence,
        including numpy arrays — values are normalized to Python scalars so
        materialized records are indistinguishable from per-event recording.
        """
        times_l = _as_list(times)
        roots_l = _as_list(root_ids)
        self.source_emits.extend(
            SourceEmit(time=t, root_id=rid, source=source,
                       replay_count=replay_count, from_backlog=from_backlog)
            for t, rid in zip(times_l, roots_l)
        )
        self.emit_times.extend(times_l)
        if replay_count > 0:
            self.replay_emits += len(times_l)
        self._root_first_emit.update(zip(roots_l, times_l))

    def extend_receipts(
        self,
        times: Sequence[float],
        root_ids: Sequence[int],
        event_ids: Sequence[int],
        sinks: Any,
        root_emitted_ats: Sequence[float],
        replay_count: int = 0,
        sink_indices: Optional[Sequence[int]] = None,
    ) -> None:
        """Bulk-append sink receipts already sorted by time.

        ``sinks`` is a single sink name applied to every record, or — when
        ``sink_indices`` is given — a list of names indexed per record.
        """
        times_l = _as_list(times)
        roots_l = _as_list(root_ids)
        eids_l = _as_list(event_ids)
        emitted_l = _as_list(root_emitted_ats)
        if sink_indices is None:
            records = [
                SinkReceipt(time=t, root_id=rid, event_id=eid, sink=sinks,
                            root_emitted_at=emitted, replay_count=replay_count)
                for t, rid, eid, emitted in zip(times_l, roots_l, eids_l, emitted_l)
            ]
        else:
            which_l = _as_list(sink_indices)
            records = [
                SinkReceipt(time=t, root_id=rid, event_id=eid, sink=sinks[w],
                            root_emitted_at=emitted, replay_count=replay_count)
                for t, rid, eid, emitted, w in zip(times_l, roots_l, eids_l, emitted_l, which_l)
            ]
        self.sink_receipts.extend(records)
        self.receipt_times.extend(times_l)
        self._roots_received.update(roots_l)

    def record_drop(self, executor_id: str, kind: str, reason: str, root_id: Optional[int] = None) -> None:
        """Record that an event could not be delivered to an executor."""
        self.drops.append(
            DropRecord(time=self.sim.now, executor_id=executor_id, kind=kind, reason=reason, root_id=root_id)
        )

    def record_deferred(self, executor_id: str, root_id: Optional[int] = None) -> None:
        """Record that the transport is holding a data event for a restarting executor."""
        self.deferred.append(DeferredRecord(time=self.sim.now, executor_id=executor_id, root_id=root_id))

    def record_kill(self, executor_id: str, queued_events_lost: int, pending_events_lost: int = 0) -> None:
        """Record an executor kill and the in-flight events lost with it."""
        self.kills.append(
            KillRecord(time=self.sim.now, executor_id=executor_id,
                       queued_events_lost=queued_events_lost, pending_events_lost=pending_events_lost)
        )

    def record_lifecycle(self, executor_id: str, status: str) -> None:
        """Record an executor lifecycle transition."""
        self.lifecycle.append(LifecycleRecord(time=self.sim.now, executor_id=executor_id, status=status))

    # ---------------------------------------------------------------- queries
    def root_first_emit_time(self, root_id: int) -> Optional[float]:
        """Time at which the given root event was first emitted, if known."""
        return self._root_first_emit.get(root_id)

    def is_old_root(self, root_id: int, migration_time: float) -> bool:
        """Whether the root was first emitted before the migration request."""
        first = self._root_first_emit.get(root_id)
        return first is not None and first < migration_time

    def receipts_after(self, time: float) -> List[SinkReceipt]:
        """Sink receipts at or after the given time, in time order."""
        return self.sink_receipts[bisect_left(self.receipt_times, time):]

    def receipts_between(self, start: float, end: float) -> List[SinkReceipt]:
        """Sink receipts in ``[start, end)``."""
        times = self.receipt_times
        return self.sink_receipts[bisect_left(times, start):bisect_left(times, end)]

    def emits_between(self, start: float, end: float) -> List[SourceEmit]:
        """Source emissions in ``[start, end)``."""
        times = self.emit_times
        return self.source_emits[bisect_left(times, start):bisect_left(times, end)]

    def first_receipt_after(self, time: float) -> Optional[SinkReceipt]:
        """Earliest sink receipt at or after the given time, if any."""
        index = bisect_left(self.receipt_times, time)
        return self.sink_receipts[index] if index < len(self.sink_receipts) else None

    def last_old_receipt(self, migration_time: float) -> Optional[SinkReceipt]:
        """Latest sink receipt (after migration) of a root emitted before the migration.

        Walks backwards from the end of the (time-ordered) receipt list and
        stops at the first old-root receipt, instead of filtering the whole
        log.  Among equal-time candidates the *earliest-recorded* one is
        returned, matching the historical ``max(..., key=time)`` behaviour
        (``max`` keeps the first of ties in iteration order).
        """
        receipts = self.sink_receipts
        start = bisect_left(self.receipt_times, migration_time)
        for index in range(len(receipts) - 1, start - 1, -1):
            receipt = receipts[index]
            if self.is_old_root(receipt.root_id, migration_time):
                best = receipt
                for prior_index in range(index - 1, start - 1, -1):
                    prior = receipts[prior_index]
                    if prior.time != best.time:
                        break
                    if self.is_old_root(prior.root_id, migration_time):
                        best = prior
                return best
        return None

    def last_replay_receipt(self, migration_time: float) -> Optional[SinkReceipt]:
        """Latest sink receipt of a replayed (previously failed) event after the migration.

        Same backward walk and tie handling as :meth:`last_old_receipt`.
        """
        receipts = self.sink_receipts
        start = bisect_left(self.receipt_times, migration_time)
        for index in range(len(receipts) - 1, start - 1, -1):
            receipt = receipts[index]
            if receipt.replay_count > 0:
                best = receipt
                for prior_index in range(index - 1, start - 1, -1):
                    prior = receipts[prior_index]
                    if prior.time != best.time:
                        break
                    if prior.replay_count > 0:
                        best = prior
                return best
        return None

    def lost_in_kills(self) -> int:
        """Total number of queued events lost across all executor kills."""
        return sum(k.queued_events_lost for k in self.kills)

    def dropped_count(self, kind: Optional[str] = None) -> int:
        """Number of dropped deliveries, optionally filtered by event kind."""
        if kind is None:
            return len(self.drops)
        return sum(1 for d in self.drops if d.kind == kind)

    def deferred_count(self) -> int:
        """Number of data events the transport held for restarting executors."""
        return len(self.deferred)

    def distinct_roots_received(self) -> int:
        """Number of distinct root events observed at the sinks.

        Maintained incrementally at record time (a set-size read, not a scan).
        """
        return len(self._roots_received)

    def summary(self) -> Dict[str, float]:
        """Coarse counters describing the run (useful in example output)."""
        return {
            "source_emits": len(self.source_emits),
            "replay_emits": self.replay_emits,
            "sink_receipts": len(self.sink_receipts),
            "distinct_roots_received": self.distinct_roots_received(),
            "drops": len(self.drops),
            "kills": len(self.kills),
            "events_lost_in_kills": self.lost_in_kills(),
        }


# --------------------------------------------------------------------------
# Columnar backend
# --------------------------------------------------------------------------

class _Column:
    """One growable numpy column (amortized-doubling append buffer)."""

    __slots__ = ("data", "n")

    def __init__(self, dtype, capacity: int = 256) -> None:
        self.data = _np.empty(capacity, dtype=dtype)
        self.n = 0

    def view(self):
        """The live prefix of the buffer (zero-copy)."""
        return self.data[: self.n]

    def _grow(self, need: int) -> None:
        capacity = len(self.data)
        while capacity < need:
            capacity *= 2
        grown = _np.empty(capacity, dtype=self.data.dtype)
        grown[: self.n] = self.data[: self.n]
        self.data = grown

    def append(self, value) -> None:
        if self.n == len(self.data):
            self._grow(self.n + 1)
        self.data[self.n] = value
        self.n += 1

    def extend(self, values) -> None:
        arr = _np.asarray(values, dtype=self.data.dtype)
        need = self.n + arr.size
        if need > len(self.data):
            self._grow(need)
        self.data[self.n:need] = arr
        self.n = need

    def extend_fill(self, value, count: int) -> None:
        need = self.n + count
        if need > len(self.data):
            self._grow(need)
        self.data[self.n:need] = value
        self.n = need


class _TimesView(Sequence):
    """List-compatible lazy view over a float column.

    Supports everything the classic ``List[float]`` indexes are used for:
    ``bisect`` (``len`` + integer ``__getitem__``), slicing (returns a plain
    list of Python floats), iteration, and ``==`` against lists and other
    views (several tests and metrics compare whole time arrays).
    """

    __slots__ = ("_column",)

    def __init__(self, column: _Column) -> None:
        self._column = column

    def __len__(self) -> int:
        return self._column.n

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._column.view()[index].tolist()
        n = self._column.n
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("time index out of range")
        return float(self._column.data[index])

    def __iter__(self):
        return iter(self._column.view().tolist())

    def __eq__(self, other):
        if isinstance(other, _TimesView):
            other = other.tolist()
        if isinstance(other, (list, tuple)):
            return self._column.view().tolist() == list(other)
        return NotImplemented

    __hash__ = None  # mutable view, like the list it replaces

    def __repr__(self) -> str:
        return repr(self._column.view().tolist())

    def tolist(self) -> List[float]:
        return self._column.view().tolist()


class _RowsView(Sequence):
    """Base for lazy record views: materializes dataclass rows on access."""

    __slots__ = ("_log",)

    def __init__(self, log: "ColumnarEventLog") -> None:
        self._log = log

    def _materialize(self, start: int, stop: int) -> List:
        raise NotImplementedError

    def _make(self, index: int):
        raise NotImplementedError

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step == 1:
                return self._materialize(start, stop)
            return [self._make(i) for i in range(start, stop, step)]
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("record index out of range")
        return self._make(index)

    def __iter__(self):
        return iter(self._materialize(0, len(self)))

    def __eq__(self, other):
        if isinstance(other, _RowsView):
            other = list(other)
        if isinstance(other, (list, tuple)):
            return self._materialize(0, len(self)) == list(other)
        return NotImplemented

    __hash__ = None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} of {len(self)} records>"


class _EmitRowsView(_RowsView):
    __slots__ = ()

    def __len__(self) -> int:
        return self._log._emit_time.n

    def _make(self, index: int) -> SourceEmit:
        log = self._log
        return SourceEmit(
            time=float(log._emit_time.data[index]),
            root_id=int(log._emit_root.data[index]),
            source=log._names[log._emit_source.data[index]],
            replay_count=int(log._emit_replay.data[index]),
            from_backlog=bool(log._emit_backlog.data[index]),
        )

    def _materialize(self, start: int, stop: int) -> List[SourceEmit]:
        log = self._log
        names = log._names
        return [
            SourceEmit(time=t, root_id=rid, source=names[code],
                       replay_count=replay, from_backlog=bool(backlog))
            for t, rid, code, replay, backlog in zip(
                log._emit_time.data[start:stop].tolist(),
                log._emit_root.data[start:stop].tolist(),
                log._emit_source.data[start:stop].tolist(),
                log._emit_replay.data[start:stop].tolist(),
                log._emit_backlog.data[start:stop].tolist(),
            )
        ]


class _ReceiptRowsView(_RowsView):
    __slots__ = ()

    def __len__(self) -> int:
        return self._log._receipt_time.n

    def _make(self, index: int) -> SinkReceipt:
        log = self._log
        return SinkReceipt(
            time=float(log._receipt_time.data[index]),
            root_id=int(log._receipt_root.data[index]),
            event_id=int(log._receipt_event.data[index]),
            sink=log._names[log._receipt_sink.data[index]],
            root_emitted_at=float(log._receipt_emitted.data[index]),
            replay_count=int(log._receipt_replay.data[index]),
        )

    def _materialize(self, start: int, stop: int) -> List[SinkReceipt]:
        log = self._log
        names = log._names
        return [
            SinkReceipt(time=t, root_id=rid, event_id=eid, sink=names[code],
                        root_emitted_at=emitted, replay_count=replay)
            for t, rid, eid, code, emitted, replay in zip(
                log._receipt_time.data[start:stop].tolist(),
                log._receipt_root.data[start:stop].tolist(),
                log._receipt_event.data[start:stop].tolist(),
                log._receipt_sink.data[start:stop].tolist(),
                log._receipt_emitted.data[start:stop].tolist(),
                log._receipt_replay.data[start:stop].tolist(),
            )
        ]


class ColumnarEventLog(EventLog):
    """Struct-of-arrays event log, bit-compatible with :class:`EventLog`.

    Emits and receipts live in growable numpy columns; ``source_emits``,
    ``sink_receipts`` and the time indexes are lazy views that materialize
    rows only on access.  The root-first-emit map and distinct-roots set are
    built lazily from the columns the first time a query needs them (and then
    advanced incrementally), so the bulk write path never touches a Python
    dict per event.  Cold streams (drops, deferred, kills, lifecycle) keep
    the plain record lists — they are rare and carry string payloads.
    """

    def __init__(self, sim: Simulator) -> None:
        if _np is None:  # pragma: no cover - exercised only without numpy
            raise RuntimeError("ColumnarEventLog requires numpy")
        self.sim = sim
        self.drops: List[DropRecord] = []
        self.deferred: List[DeferredRecord] = []
        self.kills: List[KillRecord] = []
        self.lifecycle: List[LifecycleRecord] = []
        self.replay_emits: int = 0
        # Interned task-name table shared by the source and sink columns.
        self._names: List[str] = []
        self._name_codes: Dict[str, int] = {}
        # Emit columns.
        self._emit_time = _Column(_np.float64)
        self._emit_root = _Column(_np.int64)
        self._emit_source = _Column(_np.int32)
        self._emit_replay = _Column(_np.int64)
        self._emit_backlog = _Column(_np.bool_)
        # Receipt columns.
        self._receipt_time = _Column(_np.float64)
        self._receipt_root = _Column(_np.int64)
        self._receipt_event = _Column(_np.int64)
        self._receipt_sink = _Column(_np.int32)
        self._receipt_emitted = _Column(_np.float64)
        self._receipt_replay = _Column(_np.int64)
        # Lazy query state: scan cursors mark how far into the columns the
        # derived structures have been synced.
        self._first_emit_map: Dict[int, float] = {}
        self._first_emit_synced = 0
        self._roots_received_set: Set[int] = set()
        self._roots_synced = 0
        # Lazy row/time views shadow the base class's list attributes.
        self.source_emits = _EmitRowsView(self)  # type: ignore[assignment]
        self.sink_receipts = _ReceiptRowsView(self)  # type: ignore[assignment]
        self.emit_times = _TimesView(self._emit_time)  # type: ignore[assignment]
        self.receipt_times = _TimesView(self._receipt_time)  # type: ignore[assignment]

    # ------------------------------------------------------------- internals
    def _code(self, name: str) -> int:
        code = self._name_codes.get(name)
        if code is None:
            code = len(self._names)
            self._name_codes[name] = code
            self._names.append(name)
        return code

    @property
    def _root_first_emit(self) -> Dict[int, float]:
        n = self._emit_time.n
        if self._first_emit_synced < n:
            roots = self._emit_root.data[self._first_emit_synced:n][::-1].tolist()
            times = self._emit_time.data[self._first_emit_synced:n][::-1].tolist()
            # Reversed zip keeps the *earliest* occurrence per root within the
            # new block; entries already in the map win over the block.
            block = dict(zip(roots, times))
            block.update(self._first_emit_map)
            self._first_emit_map = block
            self._first_emit_synced = n
        return self._first_emit_map

    @_root_first_emit.setter
    def _root_first_emit(self, value: Dict[int, float]) -> None:
        self._first_emit_map = value

    @property
    def _roots_received(self) -> Set[int]:
        n = self._receipt_time.n
        if self._roots_synced < n:
            self._roots_received_set.update(
                self._receipt_root.data[self._roots_synced:n].tolist()
            )
            self._roots_synced = n
        return self._roots_received_set

    @_roots_received.setter
    def _roots_received(self, value: Set[int]) -> None:
        self._roots_received_set = value

    # -------------------------------------------------------- array accessors
    @property
    def emit_times_array(self):
        """Emit times as a float64 array view (zero-copy, monotone)."""
        return self._emit_time.view()

    @property
    def receipt_times_array(self):
        """Receipt times as a float64 array view (zero-copy, monotone)."""
        return self._receipt_time.view()

    @property
    def receipt_emitted_array(self):
        """Per-receipt root emission times (parallel to the receipt times)."""
        return self._receipt_emitted.view()

    def emit_columns(self) -> Dict[str, Any]:
        """Compact copies of the emit columns (for shard transport/merging)."""
        return {
            "time": self._emit_time.view().copy(),
            "root": self._emit_root.view().copy(),
            "source": self._emit_source.view().copy(),
            "replay": self._emit_replay.view().copy(),
            "backlog": self._emit_backlog.view().copy(),
            "names": list(self._names),
        }

    def receipt_columns(self) -> Dict[str, Any]:
        """Compact copies of the receipt columns (for shard transport/merging)."""
        return {
            "time": self._receipt_time.view().copy(),
            "root": self._receipt_root.view().copy(),
            "event": self._receipt_event.view().copy(),
            "sink": self._receipt_sink.view().copy(),
            "emitted": self._receipt_emitted.view().copy(),
            "replay": self._receipt_replay.view().copy(),
            "names": list(self._names),
        }

    # -------------------------------------------------------------- recording
    def record_source_emit(
        self,
        root_id: int,
        source: str,
        replay_count: int = 0,
        from_backlog: bool = False,
        at_time: Optional[float] = None,
    ) -> None:
        now = self.sim.now if at_time is None else at_time
        self._emit_time.append(now)
        self._emit_root.append(root_id)
        self._emit_source.append(self._code(source))
        self._emit_replay.append(replay_count)
        self._emit_backlog.append(from_backlog)
        if replay_count > 0:
            self.replay_emits += 1

    def record_sink_receipt(
        self,
        root_id: int,
        event_id: int,
        sink: str,
        root_emitted_at: float,
        replay_count: int,
        at_time: Optional[float] = None,
    ) -> None:
        now = self.sim.now if at_time is None else at_time
        self._receipt_time.append(now)
        self._receipt_root.append(root_id)
        self._receipt_event.append(event_id)
        self._receipt_sink.append(self._code(sink))
        self._receipt_emitted.append(root_emitted_at)
        self._receipt_replay.append(replay_count)

    # ----------------------------------------------------------- bulk appends
    def extend_emits(
        self,
        times: Sequence[float],
        root_ids: Sequence[int],
        source: str,
        replay_count: int = 0,
        from_backlog: bool = False,
    ) -> None:
        before = self._emit_time.n
        self._emit_time.extend(times)
        count = self._emit_time.n - before
        self._emit_root.extend(root_ids)
        self._emit_source.extend_fill(self._code(source), count)
        self._emit_replay.extend_fill(replay_count, count)
        self._emit_backlog.extend_fill(from_backlog, count)
        if replay_count > 0:
            self.replay_emits += count

    def extend_receipts(
        self,
        times: Sequence[float],
        root_ids: Sequence[int],
        event_ids: Sequence[int],
        sinks: Any,
        root_emitted_ats: Sequence[float],
        replay_count: int = 0,
        sink_indices: Optional[Sequence[int]] = None,
    ) -> None:
        before = self._receipt_time.n
        self._receipt_time.extend(times)
        count = self._receipt_time.n - before
        self._receipt_root.extend(root_ids)
        self._receipt_event.extend(event_ids)
        if sink_indices is None:
            self._receipt_sink.extend_fill(self._code(sinks), count)
        else:
            codes = _np.asarray([self._code(name) for name in sinks], dtype=_np.int32)
            self._receipt_sink.extend(codes[_np.asarray(sink_indices)])
        self._receipt_emitted.extend(root_emitted_ats)
        self._receipt_replay.extend_fill(replay_count, count)
