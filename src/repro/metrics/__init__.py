"""Measurement infrastructure: event logs, timelines and rate analysis.

The paper's methodology is to log the timestamps of checkpoint and user events
and post-process them into the §4 metrics.  This package provides:

* :class:`~repro.metrics.log.EventLog` -- the raw record of source emissions,
  sink receipts, drops, kills and executor lifecycle transitions collected by
  the engine during a run;
* :mod:`repro.metrics.timeline` -- throughput and latency timelines (Figs. 7
  and 9) and the rate-stabilization detector (Fig. 8).

The seven migration metrics themselves (§4 of the paper) are computed in
:mod:`repro.core.metrics` from an :class:`EventLog` plus the strategy's
:class:`~repro.core.strategy.MigrationReport`.
"""

from repro.metrics.log import (
    DropRecord,
    EventLog,
    KillRecord,
    LifecycleRecord,
    SinkReceipt,
    SourceEmit,
)
from repro.metrics.timeline import (
    LatencyPoint,
    RatePoint,
    latency_timeline,
    rate_timeline,
    stabilization_time,
)

__all__ = [
    "DropRecord",
    "EventLog",
    "KillRecord",
    "LatencyPoint",
    "LifecycleRecord",
    "RatePoint",
    "SinkReceipt",
    "SourceEmit",
    "latency_timeline",
    "rate_timeline",
    "stabilization_time",
]
