"""Shared run-metadata helper for the ``results/`` JSON writers.

Every benchmark artifact (``BENCH_engine.json``, ``BENCH_chaos.json``,
``BENCH_predictive.json``, trace files) wants the same preamble -- schema
name, seed, a digest of the configuration that produced the numbers, and a
caller-injected timestamp -- but each writer used to assemble it by hand.
:func:`run_metadata` centralizes the shape so trend accumulation can stop
special-casing each schema.

Timestamps are always injected by the caller (or omitted): nothing in this
module reads the wall clock, keeping every artifact byte-reproducible for
the determinism tests unless the caller opts into stamping.
"""

from __future__ import annotations

import hashlib
import json
import platform
from dataclasses import asdict, is_dataclass
from typing import Dict, Optional


def config_digest(config: object) -> str:
    """Short stable digest of a configuration object.

    Accepts dataclasses, dicts, or anything JSON-representable; unknown
    objects fall back to ``repr``.  The digest changes iff the configuration
    content changes, independent of dict insertion order.
    """
    if is_dataclass(config) and not isinstance(config, type):
        payload = asdict(config)
    else:
        payload = config
    try:
        text = json.dumps(payload, sort_keys=True, default=repr)
    except TypeError:
        text = repr(payload)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def run_metadata(
    schema: str,
    seed: Optional[int] = None,
    config: Optional[object] = None,
    timestamp: Optional[str] = None,
    **extra: object,
) -> Dict[str, object]:
    """The shared metadata preamble for a ``results/`` JSON artifact.

    ``schema`` is the versioned schema name (``"repro-bench-engine/1"``,
    ...); ``config`` is digested via :func:`config_digest`; ``timestamp`` is
    caller-injected (ISO-8601 by convention) and omitted when ``None`` so
    deterministic artifacts stay byte-identical run to run.
    """
    metadata: Dict[str, object] = {
        "schema": schema,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    if seed is not None:
        metadata["seed"] = seed
    if config is not None:
        metadata["config_digest"] = config_digest(config)
    if timestamp is not None:
        metadata["timestamp"] = timestamp
    metadata.update(extra)
    return metadata
