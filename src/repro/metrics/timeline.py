"""Throughput and latency timelines, and the rate-stabilization detector.

These produce the series behind the paper's Fig. 7 (input/output throughput
during migration), Fig. 9 (average end-to-end latency over a moving 10 s
window) and Fig. 8 (rate stabilization time: the first moment after which the
output rate stays within 20 % of the expected stable rate for 60 s).

All series are computed in a single pass over the event log's monotone time
arrays (:attr:`~repro.metrics.log.EventLog.emit_times` /
:attr:`~repro.metrics.log.EventLog.receipt_times`): the window ``[start, end)``
is located with :mod:`bisect` and only the records inside it are visited,
instead of filtering the full log per timeline.

When the log is the columnar backend
(:class:`~repro.metrics.log.ColumnarEventLog`), the window is located with
``np.searchsorted`` and the per-bin counts/latency sums come from
``np.bincount`` — no Python loop over records.  ``bincount`` accumulates
sequentially in record order, the same association order as the scalar loop,
so the vectorized series are bit-identical to the classic ones.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Optional, Sequence

try:  # numpy is baked into the image; the scalar path covers its absence.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

from repro.metrics.log import EventLog, SinkReceipt, SourceEmit


@dataclass(frozen=True)
class RatePoint:
    """Observed rate in one time bin."""

    time: float
    rate: float


@dataclass(frozen=True)
class LatencyPoint:
    """Average end-to-end latency over one window."""

    time: float
    latency_s: float
    samples: int


def _bin_rates(times: Sequence[float], start: float, end: float, bin_s: float) -> List[RatePoint]:
    """Bin monotone ``times`` into ``bin_s``-second rate points over ``[start, end)``.

    ``times`` must be sorted ascending (the event log's time arrays are).
    """
    if end <= start or bin_s <= 0:
        return []
    num_bins = int(math.ceil((end - start) / bin_s))
    counts = [0] * num_bins
    lo = bisect_left(times, start)
    hi = bisect_left(times, end)
    for index in range(lo, hi):
        counts[int((times[index] - start) / bin_s)] += 1
    return [
        RatePoint(time=start + (i + 0.5) * bin_s, rate=count / bin_s)
        for i, count in enumerate(counts)
    ]


def rate_timeline(
    log: EventLog,
    kind: str = "output",
    start: float = 0.0,
    end: Optional[float] = None,
    bin_s: float = 1.0,
) -> List[RatePoint]:
    """Input or output rate over time.

    ``kind`` is ``"input"`` (source emissions, including replays and backlog
    drains) or ``"output"`` (sink receipts).  Rates are computed per
    ``bin_s``-second bins, as in the paper's timeline plots.
    """
    if kind == "input":
        times: Sequence[float] = log.emit_times
        times_array = getattr(log, "emit_times_array", None)
    elif kind == "output":
        times = log.receipt_times
        times_array = getattr(log, "receipt_times_array", None)
    else:
        raise ValueError(f"kind must be 'input' or 'output', got {kind!r}")
    if end is None:
        end = log.sim.now
    if times_array is not None and _np is not None:
        return _bin_rates_vectorized(times_array, start, end, bin_s)
    return _bin_rates(times, start, end, bin_s)


def _bin_rates_vectorized(times_array, start: float, end: float, bin_s: float) -> List[RatePoint]:
    """Columnar fast path of :func:`_bin_rates` (searchsorted + bincount)."""
    if end <= start or bin_s <= 0:
        return []
    num_bins = int(math.ceil((end - start) / bin_s))
    lo, hi = _np.searchsorted(times_array, [start, end], side="left")
    window = times_array[lo:hi]
    if window.size:
        indexes = ((window - start) / bin_s).astype(_np.int64)
        counts = _np.bincount(indexes, minlength=num_bins)[:num_bins].tolist()
    else:
        counts = [0] * num_bins
    return [
        RatePoint(time=start + (i + 0.5) * bin_s, rate=count / bin_s)
        for i, count in enumerate(counts)
    ]


def latency_timeline(
    log: EventLog,
    start: float = 0.0,
    end: Optional[float] = None,
    window_s: float = 10.0,
) -> List[LatencyPoint]:
    """Average end-to-end latency of sink receipts over consecutive windows.

    Matches the paper's Fig. 9: average event latency over a moving window of
    10 seconds (about 80 events at the stable output rate).
    """
    if end is None:
        end = log.sim.now
    if end <= start or window_s <= 0:
        return []
    num_windows = int(math.ceil((end - start) / window_s))
    times_array = getattr(log, "receipt_times_array", None)
    emitted_array = getattr(log, "receipt_emitted_array", None)
    if times_array is not None and emitted_array is not None and _np is not None:
        lo, hi = _np.searchsorted(times_array, [start, end], side="left")
        window = times_array[lo:hi]
        if window.size:
            indexes = ((window - start) / window_s).astype(_np.int64)
            counts = _np.bincount(indexes, minlength=num_windows)[:num_windows].tolist()
            sums = _np.bincount(
                indexes, weights=window - emitted_array[lo:hi], minlength=num_windows
            )[:num_windows].tolist()
        else:
            counts = [0] * num_windows
            sums = [0.0] * num_windows
    else:
        sums = [0.0] * num_windows
        counts = [0] * num_windows
        times = log.receipt_times
        receipts = log.sink_receipts
        lo = bisect_left(times, start)
        hi = bisect_left(times, end)
        for i in range(lo, hi):
            receipt = receipts[i]
            index = int((receipt.time - start) / window_s)
            sums[index] += receipt.time - receipt.root_emitted_at
            counts[index] += 1
    points = []
    for i in range(num_windows):
        if counts[i] == 0:
            continue
        points.append(
            LatencyPoint(time=start + (i + 0.5) * window_s, latency_s=sums[i] / counts[i], samples=counts[i])
        )
    return points


def stabilization_time(
    log: EventLog,
    expected_rate: float,
    after: float,
    tolerance: float = 0.2,
    window_s: float = 60.0,
    bin_s: float = 5.0,
    end: Optional[float] = None,
) -> Optional[float]:
    """Time (seconds after ``after``) at which the output rate stabilizes.

    The paper defines stability as the observed output rate staying within
    ``tolerance`` (20 %) of the expected stable output rate for ``window_s``
    (60 s); the *start* of that stable window is the stabilization time.
    Returns ``None`` if the rate never stabilizes before ``end``.
    """
    if expected_rate <= 0:
        raise ValueError("expected_rate must be positive")
    if end is None:
        end = log.sim.now
    points = rate_timeline(log, kind="output", start=after, end=end, bin_s=bin_s)
    if not points:
        return None
    bins_needed = max(1, int(round(window_s / bin_s)))
    low = expected_rate * (1.0 - tolerance)
    high = expected_rate * (1.0 + tolerance)
    in_band = [low <= p.rate <= high for p in points]
    run = 0
    for i, ok in enumerate(in_band):
        run = run + 1 if ok else 0
        if run >= bins_needed:
            start_index = i - bins_needed + 1
            return points[start_index].time - bin_s / 2.0 - after
    return None
