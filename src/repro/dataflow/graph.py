"""The dataflow graph (topology).

A :class:`Dataflow` is a validated directed acyclic graph of
:class:`~repro.dataflow.task.Task` objects connected by :class:`Edge`\\ s.  It
offers the structural queries the engine and the migration strategies need:
topological order, entry/exit tasks, per-task steady-state input rates,
critical path length, and total instance (slot) counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.dataflow.grouping import Grouping
from repro.dataflow.task import SinkTask, SourceTask, Task, TaskKind


class DataflowValidationError(ValueError):
    """Raised when a dataflow graph is structurally invalid."""


@dataclass(frozen=True)
class Edge:
    """A directed stream between two tasks."""

    src: str
    dst: str
    grouping: Grouping = Grouping.SHUFFLE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Edge({self.src} -> {self.dst}, {self.grouping.value})"


class Dataflow:
    """A validated streaming dataflow graph.

    Instances are normally created through
    :class:`~repro.dataflow.builder.TopologyBuilder` rather than directly.
    """

    def __init__(self, name: str, tasks: Sequence[Task], edges: Sequence[Edge]) -> None:
        self.name = name
        self._tasks: Dict[str, Task] = {}
        for task in tasks:
            if task.name in self._tasks:
                raise DataflowValidationError(f"duplicate task name {task.name!r}")
            self._tasks[task.name] = task
        self.edges: List[Edge] = list(edges)
        self._successors: Dict[str, List[str]] = {t: [] for t in self._tasks}
        self._predecessors: Dict[str, List[str]] = {t: [] for t in self._tasks}
        for edge in self.edges:
            if edge.src not in self._tasks:
                raise DataflowValidationError(f"edge references unknown task {edge.src!r}")
            if edge.dst not in self._tasks:
                raise DataflowValidationError(f"edge references unknown task {edge.dst!r}")
            self._successors[edge.src].append(edge.dst)
            self._predecessors[edge.dst].append(edge.src)
        self._validate()
        self._topo_order = self._topological_order()

    # ------------------------------------------------------------ validation
    def _validate(self) -> None:
        sources = [t for t in self._tasks.values() if t.is_source]
        sinks = [t for t in self._tasks.values() if t.is_sink]
        if not sources:
            raise DataflowValidationError(f"dataflow {self.name!r} has no source task")
        if not sinks:
            raise DataflowValidationError(f"dataflow {self.name!r} has no sink task")
        for task in self._tasks.values():
            if task.is_source and self._predecessors[task.name]:
                raise DataflowValidationError(f"source task {task.name!r} has incoming edges")
            if task.is_sink and self._successors[task.name]:
                raise DataflowValidationError(f"sink task {task.name!r} has outgoing edges")
            if not task.is_source and not self._predecessors[task.name]:
                raise DataflowValidationError(f"task {task.name!r} is unreachable (no incoming edges)")
            if not task.is_sink and not self._successors[task.name]:
                raise DataflowValidationError(f"task {task.name!r} is a dead end (no outgoing edges)")
        # Acyclicity is established by _topological_order raising on a cycle.
        self._topological_order()

    def _topological_order(self) -> List[str]:
        in_degree = {name: len(preds) for name, preds in self._predecessors.items()}
        ready = sorted(name for name, deg in in_degree.items() if deg == 0)
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for succ in self._successors[name]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self._tasks):
            raise DataflowValidationError(f"dataflow {self.name!r} contains a cycle")
        return order

    # -------------------------------------------------------------- accessors
    @property
    def tasks(self) -> List[Task]:
        """All tasks in insertion order."""
        return list(self._tasks.values())

    def task(self, name: str) -> Task:
        """Return the task with the given name."""
        if name not in self._tasks:
            raise KeyError(f"no task named {name!r} in dataflow {self.name!r}")
        return self._tasks[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    @property
    def task_names(self) -> List[str]:
        """Names of all tasks."""
        return list(self._tasks.keys())

    @property
    def sources(self) -> List[Task]:
        """Source tasks."""
        return [t for t in self._tasks.values() if t.is_source]

    @property
    def sinks(self) -> List[Task]:
        """Sink tasks."""
        return [t for t in self._tasks.values() if t.is_sink]

    @property
    def user_tasks(self) -> List[Task]:
        """Processing tasks (excluding sources and sinks), in topological order.

        These are the tasks the paper counts in Table 1 and the ones that are
        checkpointed and migrated.
        """
        order_index = {name: i for i, name in enumerate(self._topo_order)}
        tasks = [t for t in self._tasks.values() if t.kind is TaskKind.PROCESS]
        return sorted(tasks, key=lambda t: order_index[t.name])

    @property
    def entry_tasks(self) -> List[Task]:
        """User tasks that are directly downstream of a source."""
        entry_names: Set[str] = set()
        for source in self.sources:
            for succ in self._successors[source.name]:
                if self._tasks[succ].kind is TaskKind.PROCESS:
                    entry_names.add(succ)
        return [self._tasks[n] for n in self._topo_order if n in entry_names]

    @property
    def exit_tasks(self) -> List[Task]:
        """User tasks that feed directly into a sink."""
        exit_names: Set[str] = set()
        for sink in self.sinks:
            for pred in self._predecessors[sink.name]:
                if self._tasks[pred].kind is TaskKind.PROCESS:
                    exit_names.add(pred)
        return [self._tasks[n] for n in self._topo_order if n in exit_names]

    def successors(self, name: str) -> List[str]:
        """Downstream task names of ``name``."""
        return list(self._successors[name])

    def predecessors(self, name: str) -> List[str]:
        """Upstream task names of ``name``."""
        return list(self._predecessors[name])

    def out_edges(self, name: str) -> List[Edge]:
        """Outgoing edges of ``name``."""
        return [e for e in self.edges if e.src == name]

    def in_edges(self, name: str) -> List[Edge]:
        """Incoming edges of ``name``."""
        return [e for e in self.edges if e.dst == name]

    @property
    def topological_order(self) -> List[str]:
        """Task names in topological order (ties broken alphabetically)."""
        return list(self._topo_order)

    # -------------------------------------------------------------- analysis
    def total_instances(self, include_sources_and_sinks: bool = False) -> int:
        """Total number of task instances (slots needed).

        By default only user tasks are counted, matching Table 1 of the paper
        which excludes the source and sink (they live on a dedicated VM).
        """
        tasks = self.tasks if include_sources_and_sinks else self.user_tasks
        return sum(t.parallelism for t in tasks)

    def input_rates(self) -> Dict[str, float]:
        """Steady-state input event rate of every task (events/second).

        Source tasks are credited with their own generation rate.  Every
        emitted event is delivered on *each* outgoing edge (Storm semantics:
        downstream tasks each subscribe to the full stream), so a task's input
        rate is the sum of its upstream tasks' output rates.
        """
        rates: Dict[str, float] = {}
        for name in self._topo_order:
            task = self._tasks[name]
            if task.is_source:
                rates[name] = float(getattr(task, "rate", 0.0))
                continue
            incoming = 0.0
            for pred in self._predecessors[name]:
                pred_task = self._tasks[pred]
                pred_rate = rates[pred]
                out_rate = pred_rate if pred_task.is_source else pred_rate * pred_task.selectivity
                incoming += out_rate
            rates[name] = incoming
        return rates

    def output_rate(self) -> float:
        """Steady-state total event rate arriving at the sink tasks."""
        rates = self.input_rates()
        return sum(rates[s.name] for s in self.sinks)

    def critical_path_length(self) -> int:
        """Number of user tasks on the longest source-to-sink path."""
        longest: Dict[str, int] = {}
        for name in self._topo_order:
            task = self._tasks[name]
            own = 1 if task.kind is TaskKind.PROCESS else 0
            preds = self._predecessors[name]
            best_pred = max((longest[p] for p in preds), default=0)
            longest[name] = best_pred + own
        return max((longest[s.name] for s in self.sinks), default=0)

    def critical_path_latency(self) -> float:
        """Sum of task latencies along the longest source-to-sink path (seconds)."""
        longest: Dict[str, float] = {}
        for name in self._topo_order:
            task = self._tasks[name]
            own = task.latency_s if task.kind is TaskKind.PROCESS else 0.0
            preds = self._predecessors[name]
            best_pred = max((longest[p] for p in preds), default=0.0)
            longest[name] = best_pred + own
        return max((longest[s.name] for s in self.sinks), default=0.0)

    def apply_auto_parallelism(self, events_per_instance: float = 8.0) -> None:
        """Set each user task's parallelism from its steady-state input rate.

        The paper assigns "one task instance (thread) for each incremental
        8 events/sec input rate to a task".
        """
        if events_per_instance <= 0:
            raise ValueError("events_per_instance must be positive")
        rates = self.input_rates()
        for task in self.user_tasks:
            task.parallelism = max(1, math.ceil(rates[task.name] / events_per_instance - 1e-9))

    def describe(self) -> str:
        """Human-readable multi-line description of the dataflow."""
        rates = self.input_rates()
        lines = [f"Dataflow {self.name!r}: {len(self.user_tasks)} user tasks, "
                 f"{self.total_instances()} instances, critical path {self.critical_path_length()}"]
        for name in self._topo_order:
            task = self._tasks[name]
            preds = ", ".join(self._predecessors[name]) or "-"
            lines.append(
                f"  {task.kind.value:7s} {name:20s} x{task.parallelism:<2d} "
                f"in={rates[name]:5.1f} ev/s  from [{preds}]"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataflow({self.name!r}, tasks={len(self._tasks)}, edges={len(self.edges)}, "
            f"instances={self.total_instances()})"
        )
