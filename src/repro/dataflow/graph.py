"""The dataflow graph (topology).

A :class:`Dataflow` is a validated directed acyclic graph of
:class:`~repro.dataflow.task.Task` objects connected by :class:`Edge`\\ s.  It
offers the structural queries the engine and the migration strategies need:
topological order, entry/exit tasks, per-task steady-state input rates,
critical path length, and total instance (slot) counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.dataflow.grouping import Grouping
from repro.dataflow.task import SinkTask, SourceTask, Task, TaskKind


class DataflowValidationError(ValueError):
    """Raised when a dataflow graph is structurally invalid."""


def exact_instance_ceiling(rate_ev_s: float, capacity_ev_s: float) -> int:
    """``ceil(rate / capacity)`` computed exactly on the rational rate.

    Both operands are converted to exact rationals before dividing, so the
    result never depends on float rounding: ``24.0 / 8.0`` is exactly 3
    instances even when the float rate was accumulated through sums and
    products that would have nudged it to ``24.000000000000004`` (the case
    the old ``math.ceil(rate / cap - 1e-9)`` epsilon hack papered over,
    at the cost of under-provisioning rates a hair above a multiple).
    """
    if capacity_ev_s <= 0:
        raise ValueError("capacity_ev_s must be positive")
    if rate_ev_s <= 0:
        return 0
    ratio = Fraction(rate_ev_s) / Fraction(capacity_ev_s)
    return int(math.ceil(ratio))


@dataclass(frozen=True)
class RescalePlan:
    """Per-task target instance counts for a runtime parallelism change.

    The plan names only the tasks whose parallelism should change; every
    migration strategy (DSM/DCR/CCR) can enact one mid-migration, rebuilding
    the router's FIELDS key mapping and re-partitioning grouped task state to
    the new instance set.  Validation is against a concrete dataflow because
    only processing (user) tasks may be rescaled: sources and sinks live on
    the dedicated util VM and are never migrated, let alone rescaled.
    """

    targets: Mapping[str, int] = field(default_factory=dict)

    def validate(self, dataflow: "Dataflow") -> None:
        """Raise :class:`DataflowValidationError` if the plan does not fit the dataflow."""
        for task_name, parallelism in self.targets.items():
            if task_name not in dataflow:
                raise DataflowValidationError(
                    f"rescale references unknown task {task_name!r} in dataflow {dataflow.name!r}"
                )
            task = dataflow.task(task_name)
            if task.kind is not TaskKind.PROCESS:
                raise DataflowValidationError(
                    f"rescale target {task_name!r} is a {task.kind.value} task; "
                    "only processing tasks can change parallelism"
                )
            if not isinstance(parallelism, int) or parallelism < 1:
                raise DataflowValidationError(
                    f"rescale target {task_name!r}: parallelism must be an int >= 1, "
                    f"got {parallelism!r}"
                )

    def changes(self, dataflow: "Dataflow") -> Dict[str, Tuple[int, int]]:
        """The ``task -> (old, new)`` pairs that actually differ, in name order."""
        diff: Dict[str, Tuple[int, int]] = {}
        for task_name in sorted(self.targets):
            new = self.targets[task_name]
            old = dataflow.task(task_name).parallelism
            if new != old:
                diff[task_name] = (old, new)
        return diff

    def is_noop(self, dataflow: "Dataflow") -> bool:
        """Whether enacting the plan would change nothing."""
        return not self.changes(dataflow)

    def __len__(self) -> int:
        return len(self.targets)


@dataclass(frozen=True)
class Edge:
    """A directed stream between two tasks."""

    src: str
    dst: str
    grouping: Grouping = Grouping.SHUFFLE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Edge({self.src} -> {self.dst}, {self.grouping.value})"


class Dataflow:
    """A validated streaming dataflow graph.

    Instances are normally created through
    :class:`~repro.dataflow.builder.TopologyBuilder` rather than directly.
    """

    def __init__(self, name: str, tasks: Sequence[Task], edges: Sequence[Edge]) -> None:
        self.name = name
        self._tasks: Dict[str, Task] = {}
        for task in tasks:
            if task.name in self._tasks:
                raise DataflowValidationError(f"duplicate task name {task.name!r}")
            self._tasks[task.name] = task
        self.edges: List[Edge] = list(edges)
        self._successors: Dict[str, List[str]] = {t: [] for t in self._tasks}
        self._predecessors: Dict[str, List[str]] = {t: [] for t in self._tasks}
        for edge in self.edges:
            if edge.src not in self._tasks:
                raise DataflowValidationError(f"edge references unknown task {edge.src!r}")
            if edge.dst not in self._tasks:
                raise DataflowValidationError(f"edge references unknown task {edge.dst!r}")
            self._successors[edge.src].append(edge.dst)
            self._predecessors[edge.dst].append(edge.src)
        self._validate()
        self._topo_order = self._topological_order()

    # ------------------------------------------------------------ validation
    def _validate(self) -> None:
        sources = [t for t in self._tasks.values() if t.is_source]
        sinks = [t for t in self._tasks.values() if t.is_sink]
        if not sources:
            raise DataflowValidationError(f"dataflow {self.name!r} has no source task")
        if not sinks:
            raise DataflowValidationError(f"dataflow {self.name!r} has no sink task")
        for task in self._tasks.values():
            if task.is_source and self._predecessors[task.name]:
                raise DataflowValidationError(f"source task {task.name!r} has incoming edges")
            if task.is_sink and self._successors[task.name]:
                raise DataflowValidationError(f"sink task {task.name!r} has outgoing edges")
            if not task.is_source and not self._predecessors[task.name]:
                raise DataflowValidationError(f"task {task.name!r} is unreachable (no incoming edges)")
            if not task.is_sink and not self._successors[task.name]:
                raise DataflowValidationError(f"task {task.name!r} is a dead end (no outgoing edges)")
        # Acyclicity is established by _topological_order raising on a cycle.
        self._topological_order()

    def _topological_order(self) -> List[str]:
        in_degree = {name: len(preds) for name, preds in self._predecessors.items()}
        ready = sorted(name for name, deg in in_degree.items() if deg == 0)
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for succ in self._successors[name]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self._tasks):
            raise DataflowValidationError(f"dataflow {self.name!r} contains a cycle")
        return order

    # -------------------------------------------------------------- accessors
    @property
    def tasks(self) -> List[Task]:
        """All tasks in insertion order."""
        return list(self._tasks.values())

    def task(self, name: str) -> Task:
        """Return the task with the given name."""
        if name not in self._tasks:
            raise KeyError(f"no task named {name!r} in dataflow {self.name!r}")
        return self._tasks[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    @property
    def task_names(self) -> List[str]:
        """Names of all tasks."""
        return list(self._tasks.keys())

    @property
    def sources(self) -> List[Task]:
        """Source tasks."""
        return [t for t in self._tasks.values() if t.is_source]

    @property
    def sinks(self) -> List[Task]:
        """Sink tasks."""
        return [t for t in self._tasks.values() if t.is_sink]

    @property
    def user_tasks(self) -> List[Task]:
        """Processing tasks (excluding sources and sinks), in topological order.

        These are the tasks the paper counts in Table 1 and the ones that are
        checkpointed and migrated.
        """
        order_index = {name: i for i, name in enumerate(self._topo_order)}
        tasks = [t for t in self._tasks.values() if t.kind is TaskKind.PROCESS]
        return sorted(tasks, key=lambda t: order_index[t.name])

    @property
    def entry_tasks(self) -> List[Task]:
        """User tasks that are directly downstream of a source."""
        entry_names: Set[str] = set()
        for source in self.sources:
            for succ in self._successors[source.name]:
                if self._tasks[succ].kind is TaskKind.PROCESS:
                    entry_names.add(succ)
        return [self._tasks[n] for n in self._topo_order if n in entry_names]

    @property
    def exit_tasks(self) -> List[Task]:
        """User tasks that feed directly into a sink."""
        exit_names: Set[str] = set()
        for sink in self.sinks:
            for pred in self._predecessors[sink.name]:
                if self._tasks[pred].kind is TaskKind.PROCESS:
                    exit_names.add(pred)
        return [self._tasks[n] for n in self._topo_order if n in exit_names]

    def successors(self, name: str) -> List[str]:
        """Downstream task names of ``name``."""
        return list(self._successors[name])

    def predecessors(self, name: str) -> List[str]:
        """Upstream task names of ``name``."""
        return list(self._predecessors[name])

    def out_edges(self, name: str) -> List[Edge]:
        """Outgoing edges of ``name``."""
        return [e for e in self.edges if e.src == name]

    def in_edges(self, name: str) -> List[Edge]:
        """Incoming edges of ``name``."""
        return [e for e in self.edges if e.dst == name]

    @property
    def topological_order(self) -> List[str]:
        """Task names in topological order (ties broken alphabetically)."""
        return list(self._topo_order)

    # -------------------------------------------------------------- analysis
    def total_instances(self, include_sources_and_sinks: bool = False) -> int:
        """Total number of task instances (slots needed).

        By default only user tasks are counted, matching Table 1 of the paper
        which excludes the source and sink (they live on a dedicated VM).
        """
        tasks = self.tasks if include_sources_and_sinks else self.user_tasks
        return sum(t.parallelism for t in tasks)

    def input_rates(self) -> Dict[str, float]:
        """Steady-state input event rate of every task (events/second).

        Source tasks are credited with their own generation rate.  Every
        emitted event is delivered on *each* outgoing edge (Storm semantics:
        downstream tasks each subscribe to the full stream), so a task's input
        rate is the sum of its upstream tasks' output rates.

        Float view of :meth:`input_rates_exact` (one traversal, one rounding
        step per task -- keeping the two representations in lock-step by
        construction).
        """
        return {name: float(rate) for name, rate in self.input_rates_exact().items()}

    def input_rates_exact(self) -> Dict[str, Fraction]:
        """Steady-state input rates as exact rationals (no float accumulation).

        Mirrors :meth:`input_rates` but carries every intermediate value as a
        :class:`~fractions.Fraction`, so summed branch rates like
        ``8 + 8 + 8`` are exactly ``24`` rather than a float that drifted a
        few ulps above it.  Instance sizing uses this (see
        :meth:`apply_auto_parallelism`) so provisioning never depends on
        float rounding.
        """
        rates: Dict[str, Fraction] = {}
        for name in self._topo_order:
            task = self._tasks[name]
            if task.is_source:
                rates[name] = Fraction(float(getattr(task, "rate", 0.0)))
                continue
            incoming = Fraction(0)
            for pred in self._predecessors[name]:
                pred_task = self._tasks[pred]
                pred_rate = rates[pred]
                out_rate = (
                    pred_rate
                    if pred_task.is_source
                    else pred_rate * Fraction(pred_task.selectivity)
                )
                incoming += out_rate
            rates[name] = incoming
        return rates

    def output_rate(self) -> float:
        """Steady-state total event rate arriving at the sink tasks."""
        rates = self.input_rates()
        return sum(rates[s.name] for s in self.sinks)

    def critical_path_length(self) -> int:
        """Number of user tasks on the longest source-to-sink path."""
        longest: Dict[str, int] = {}
        for name in self._topo_order:
            task = self._tasks[name]
            own = 1 if task.kind is TaskKind.PROCESS else 0
            preds = self._predecessors[name]
            best_pred = max((longest[p] for p in preds), default=0)
            longest[name] = best_pred + own
        return max((longest[s.name] for s in self.sinks), default=0)

    def critical_path_latency(self) -> float:
        """Sum of task latencies along the longest source-to-sink path (seconds)."""
        longest: Dict[str, float] = {}
        for name in self._topo_order:
            task = self._tasks[name]
            own = task.latency_s if task.kind is TaskKind.PROCESS else 0.0
            preds = self._predecessors[name]
            best_pred = max((longest[p] for p in preds), default=0.0)
            longest[name] = best_pred + own
        return max((longest[s.name] for s in self.sinks), default=0.0)

    # ------------------------------------------------------------ parallelism
    def set_parallelism(self, task_name: str, parallelism: int) -> None:
        """Change a processing task's instance count, with validation.

        Parallelism is a *mutable* property of the dataflow: the engine's
        rescale machinery (see :meth:`TopologyRuntime.apply_rescale`) changes
        it at runtime, spawning or retiring executors to match.  Sources and
        sinks are fixed (they are pinned to the util VM and never migrated).
        """
        task = self.task(task_name)
        if task.kind is not TaskKind.PROCESS:
            raise DataflowValidationError(
                f"cannot rescale {task.kind.value} task {task_name!r}; "
                "only processing tasks have elastic parallelism"
            )
        if not isinstance(parallelism, int) or parallelism < 1:
            raise DataflowValidationError(
                f"task {task_name!r}: parallelism must be an int >= 1, got {parallelism!r}"
            )
        task.parallelism = parallelism

    def apply_auto_parallelism(self, events_per_instance: float = 8.0) -> None:
        """Set each user task's parallelism from its steady-state input rate.

        The paper assigns "one task instance (thread) for each incremental
        8 events/sec input rate to a task".  Tasks that declare their own
        ``capacity_ev_s`` are sized by it instead of the global rule
        (heterogeneous task latencies).  The ceiling is computed exactly on
        the rational rate (see :func:`exact_instance_ceiling`), so float noise
        from summed branch rates can neither inflate nor deflate the count.
        """
        if events_per_instance <= 0:
            raise ValueError("events_per_instance must be positive")
        rates = self.input_rates_exact()
        for task in self.user_tasks:
            capacity = task.capacity_ev_s if task.capacity_ev_s is not None else events_per_instance
            task.parallelism = max(1, exact_instance_ceiling(rates[task.name], capacity))

    def describe(self) -> str:
        """Human-readable multi-line description of the dataflow."""
        rates = self.input_rates()
        lines = [f"Dataflow {self.name!r}: {len(self.user_tasks)} user tasks, "
                 f"{self.total_instances()} instances, critical path {self.critical_path_length()}"]
        for name in self._topo_order:
            task = self._tasks[name]
            preds = ", ".join(self._predecessors[name]) or "-"
            lines.append(
                f"  {task.kind.value:7s} {name:20s} x{task.parallelism:<2d} "
                f"in={rates[name]:5.1f} ev/s  from [{preds}]"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataflow({self.name!r}, tasks={len(self._tasks)}, edges={len(self.edges)}, "
            f"instances={self.total_instances()})"
        )
