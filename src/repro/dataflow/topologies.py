"""The dataflows used in the paper's evaluation (Fig. 4 and Table 1).

Five dataflows are used:

* **Linear, Diamond, Star** -- micro-DAGs with 5 user tasks each that capture
  a sequential flow, a fan-out/fan-in, and a hub-and-spoke pattern.
* **Traffic** -- 11-task application DAG modelled on the IBM Infosphere
  intelligent-transportation application (GPS stream analytics).
* **Grid** -- 15-task application DAG modelled on smart-power-grid predictive
  analytics over meter and weather streams.

All tasks use the paper's experimental setup: dummy logic with a 100 ms
processing latency, 1:1 selectivity, and a source emitting synthetic events at
a fixed 8 events/second.  Task parallelism (instance count) follows Table 1 of
the paper: one instance per incremental 8 events/second of input rate, with
the per-task counts chosen so the totals match Table 1 exactly
(Linear 5, Diamond 8, Star 8, Grid 21, Traffic 13 instances).

Where the figure in the paper is ambiguous about the exact wiring, the
structure below preserves the documented pattern (fan-out/fan-in for Diamond,
hub-and-spoke for Star, multi-branch analytics pipelines for Traffic and
Grid), the cumulative rates shown in the figure (8/16/24/32 ev/s), and the
Table 1 instance totals; see EXPERIMENTS.md for the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.dataflow.builder import TopologyBuilder
from repro.dataflow.graph import Dataflow
from repro.dataflow.grouping import Grouping
from repro.reliability.repartition import PARTITIONED_STATE_KEY

#: Default source rate used in all paper experiments (events/second).
DEFAULT_RATE = 8.0
#: Default per-event task latency used in all paper experiments (seconds).
DEFAULT_LATENCY_S = 0.1


def linear(num_tasks: int = 5, rate: float = DEFAULT_RATE, latency_s: float = DEFAULT_LATENCY_S,
           stateful_every: int = 2) -> Dataflow:
    """Sequential chain of ``num_tasks`` user tasks (``Linear`` micro-DAG).

    ``linear(50)`` is the configuration used for the paper's 50-task drain-time
    experiment.  Every ``stateful_every``-th task is stateful so the
    checkpointing path is exercised.
    """
    if num_tasks < 1:
        raise ValueError("linear dataflow needs at least one task")
    builder = TopologyBuilder(f"linear-{num_tasks}" if num_tasks != 5 else "linear")
    builder.add_source("source", rate=rate)
    names = [f"task{i + 1}" for i in range(num_tasks)]
    for i, name in enumerate(names):
        builder.add_task(name, parallelism=1, latency_s=latency_s,
                         stateful=(i % max(1, stateful_every) == 0))
    builder.add_sink("sink")
    builder.chain("source", *names, "sink")
    return builder.build()


def diamond(rate: float = DEFAULT_RATE, latency_s: float = DEFAULT_LATENCY_S) -> Dataflow:
    """Fan-out / fan-in micro-DAG (``Diamond``): 5 user tasks, 8 instances.

    ``split`` fans out to two parallel branches which merge again, and the
    merged stream passes through a final task before the sink.  The merge task
    receives 16 ev/s and the post-merge task 16 ev/s; instance counts
    (1, 1, 1, 3, 2) match Table 1's total of 8 slots.
    """
    builder = TopologyBuilder("diamond")
    builder.add_source("source", rate=rate)
    builder.add_task("split", parallelism=1, latency_s=latency_s, stateful=True)
    builder.add_task("branch_a", parallelism=1, latency_s=latency_s)
    builder.add_task("branch_b", parallelism=1, latency_s=latency_s)
    builder.add_task("merge", parallelism=3, latency_s=latency_s, stateful=True)
    builder.add_task("post", parallelism=2, latency_s=latency_s)
    builder.add_sink("sink")
    builder.connect("source", "split")
    builder.fan_out("split", ["branch_a", "branch_b"])
    builder.fan_in(["branch_a", "branch_b"], "merge")
    builder.connect("merge", "post")
    builder.connect("post", "sink")
    return builder.build()


def star(rate: float = DEFAULT_RATE, latency_s: float = DEFAULT_LATENCY_S) -> Dataflow:
    """Hub-and-spoke micro-DAG (``Star``): 5 user tasks, 8 instances.

    Two in-spokes feed a central hub which broadcasts to two out-spokes; the
    hub and out-spokes see 16 ev/s each, so instance counts are
    (1, 1, 2, 2, 2) for a Table 1 total of 8 slots and a 32 ev/s sink rate.
    """
    builder = TopologyBuilder("star")
    builder.add_source("source", rate=rate)
    builder.add_task("spoke_in_a", parallelism=1, latency_s=latency_s)
    builder.add_task("spoke_in_b", parallelism=1, latency_s=latency_s)
    builder.add_task("hub", parallelism=2, latency_s=latency_s, stateful=True)
    builder.add_task("spoke_out_a", parallelism=2, latency_s=latency_s)
    builder.add_task("spoke_out_b", parallelism=2, latency_s=latency_s, stateful=True)
    builder.add_sink("sink")
    builder.fan_out("source", ["spoke_in_a", "spoke_in_b"])
    builder.fan_in(["spoke_in_a", "spoke_in_b"], "hub")
    builder.fan_out("hub", ["spoke_out_a", "spoke_out_b"])
    builder.fan_in(["spoke_out_a", "spoke_out_b"], "sink")
    return builder.build()


def traffic(rate: float = DEFAULT_RATE, latency_s: float = DEFAULT_LATENCY_S) -> Dataflow:
    """Traffic-analytics application DAG: 11 user tasks, 13 instances.

    Modelled on the IBM Infosphere Streams intelligent-transportation
    application referenced by the paper: GPS events are parsed and analysed
    along map-matching, speed and occupancy branches whose results merge into
    a city-wide traffic state; a congestion-alert branch feeds a dashboard.
    The sink receives 32 ev/s (24 from the merged state, 8 from the dashboard
    feed), matching the 1:4 end-to-end selectivity seen in the figure.
    """
    builder = TopologyBuilder("traffic")
    builder.add_source("source", rate=rate)
    one_instance = [
        "parse_gps",
        "map_match",
        "speed_calc",
        "occupancy",
        "route_update",
        "travel_time",
        "congestion_detect",
        "density_est",
        "alert_filter",
        "dashboard_feed",
    ]
    for i, name in enumerate(one_instance):
        builder.add_task(name, parallelism=1, latency_s=latency_s, stateful=(i % 3 == 0))
    builder.add_task("traffic_state", parallelism=3, latency_s=latency_s, stateful=True)
    builder.add_sink("sink")

    builder.connect("source", "parse_gps")
    builder.fan_out("parse_gps", ["map_match", "speed_calc", "occupancy"])
    builder.chain("map_match", "route_update", "travel_time")
    builder.connect("speed_calc", "congestion_detect")
    builder.connect("occupancy", "density_est")
    builder.fan_in(["travel_time", "congestion_detect", "density_est"], "traffic_state")
    builder.connect("congestion_detect", "alert_filter")
    builder.connect("alert_filter", "dashboard_feed")
    builder.fan_in(["traffic_state", "dashboard_feed"], "sink")
    return builder.build()


def grid(rate: float = DEFAULT_RATE, latency_s: float = DEFAULT_LATENCY_S) -> Dataflow:
    """Smart-grid application DAG: 15 user tasks, 21 instances.

    Modelled on the smart-power-grid analytics platform referenced by the
    paper: smart-meter and weather events are parsed and fanned out to load,
    usage, weather and anomaly branches; three forecasting models merge into a
    demand prediction that drives curtailment planning, while the anomaly
    branch raises alerts.  The sink receives 32 ev/s (24 from curtailment,
    8 from alerts), giving the 1:4 DAG selectivity the paper reports for Grid.
    """
    builder = TopologyBuilder("grid")
    builder.add_source("source", rate=rate)
    one_instance = [
        "parse",
        "load_extract",
        "usage_extract",
        "weather_extract",
        "anomaly_detect",
        "load_clean",
        "arima_forecast",
        "regression_model",
        "weather_forecast",
        "alert_filter",
        "alert_enrich",
        "alert_notify",
    ]
    for i, name in enumerate(one_instance):
        builder.add_task(name, parallelism=1, latency_s=latency_s, stateful=(i % 3 == 0))
    builder.add_task("forecast_merge", parallelism=3, latency_s=latency_s, stateful=True)
    builder.add_task("demand_predict", parallelism=3, latency_s=latency_s, stateful=True)
    builder.add_task("curtailment_plan", parallelism=3, latency_s=latency_s)
    builder.add_sink("sink")

    builder.connect("source", "parse")
    builder.fan_out("parse", ["load_extract", "usage_extract", "weather_extract", "anomaly_detect"])
    builder.chain("load_extract", "load_clean", "arima_forecast")
    builder.connect("usage_extract", "regression_model")
    builder.connect("weather_extract", "weather_forecast")
    builder.fan_in(["arima_forecast", "regression_model", "weather_forecast"], "forecast_merge")
    builder.chain("forecast_merge", "demand_predict", "curtailment_plan")
    builder.chain("anomaly_detect", "alert_filter", "alert_enrich", "alert_notify")
    builder.fan_in(["curtailment_plan", "alert_notify"], "sink")
    return builder.build()


# ------------------------------------------------------------ keyed variants
#: Number of distinct entity keys (vehicles / meters) the keyed sources cycle
#: through.  Small enough that every instance owns several keys at any
#: parallelism the experiments reach, large enough that re-keying moves state.
KEYED_NUM_KEYS = 64


def keyed_payload_factory(prefix: str, num_keys: int = KEYED_NUM_KEYS) -> Callable[[int], Any]:
    """Source payloads carrying a stable entity key (``{"key": "veh-7", ...}``)."""

    def _factory(seq: int) -> Any:
        return {"key": f"{prefix}-{seq % num_keys}", "seq": seq}

    return _factory


def keyed_state_logic(payload: Any, state: Dict[str, Any]) -> List[Any]:
    """Per-key counting under the partitioned-state contract.

    Entries under :data:`~repro.reliability.repartition.PARTITIONED_STATE_KEY`
    are re-distributed by the stable FIELDS hash on a rescale, so this logic
    makes the keyed topologies exercise real grouped-state re-partitioning
    (not just router re-keying) whenever a migration changes parallelism.
    """
    counts = state.setdefault(PARTITIONED_STATE_KEY, {})
    key = str(payload["key"]) if isinstance(payload, dict) and "key" in payload else str(payload)
    counts[key] = counts.get(key, 0) + 1
    state["processed"] = state.get("processed", 0) + 1
    return [payload]


def traffic_keyed(rate: float = DEFAULT_RATE, latency_s: float = DEFAULT_LATENCY_S) -> Dataflow:
    """Traffic DAG with per-vehicle keyed state (``traffic-keyed``).

    Structurally identical to :func:`traffic`, but the source emits events
    keyed by vehicle id and the city-wide ``traffic_state`` task keeps
    per-vehicle grouped state behind FIELDS-grouped input edges -- so the
    same key always lands on the same instance, and a rescale must re-key
    the routing *and* re-partition the state under load.
    """
    dataflow = traffic(rate=rate, latency_s=latency_s)
    builder = TopologyBuilder("traffic-keyed")
    builder.add_source("source", rate=rate, payload_factory=keyed_payload_factory("veh"))
    for task in dataflow.user_tasks:
        keyed = task.name == "traffic_state"
        builder.add_task(
            task.name,
            parallelism=task.parallelism,
            latency_s=task.latency_s,
            stateful=task.stateful,
            logic=keyed_state_logic if keyed else None,
        )
    builder.add_sink("sink")
    for edge in dataflow.edges:
        grouping = Grouping.FIELDS if edge.dst == "traffic_state" else edge.grouping
        builder.connect(edge.src, edge.dst, grouping=grouping)
    return builder.build()


def grid_keyed(rate: float = DEFAULT_RATE, latency_s: float = DEFAULT_LATENCY_S) -> Dataflow:
    """Grid DAG with per-meter keyed state (``grid-keyed``).

    Structurally identical to :func:`grid`, with meter-keyed source events
    and per-meter grouped state in ``forecast_merge`` and ``demand_predict``
    behind FIELDS-grouped input edges.
    """
    dataflow = grid(rate=rate, latency_s=latency_s)
    keyed_tasks = {"forecast_merge", "demand_predict"}
    builder = TopologyBuilder("grid-keyed")
    builder.add_source("source", rate=rate, payload_factory=keyed_payload_factory("meter"))
    for task in dataflow.user_tasks:
        builder.add_task(
            task.name,
            parallelism=task.parallelism,
            latency_s=task.latency_s,
            stateful=task.stateful,
            logic=keyed_state_logic if task.name in keyed_tasks else None,
        )
    builder.add_sink("sink")
    for edge in dataflow.edges:
        grouping = Grouping.FIELDS if edge.dst in keyed_tasks else edge.grouping
        builder.connect(edge.src, edge.dst, grouping=grouping)
    return builder.build()


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 of the paper: resource footprint of a dataflow."""

    dag: str
    tasks: int
    task_instances: int
    default_vms_2slot: int
    scale_in_vms_4slot: int
    scale_out_vms_1slot: int


#: Table 1 of the paper (tasks, slots and VM counts per dataflow).
TABLE1: Dict[str, Table1Row] = {
    "linear": Table1Row("linear", 5, 5, 3, 2, 5),
    "diamond": Table1Row("diamond", 5, 8, 4, 2, 8),
    "star": Table1Row("star", 5, 8, 4, 2, 8),
    "grid": Table1Row("grid", 15, 21, 11, 6, 21),
    "traffic": Table1Row("traffic", 11, 13, 7, 4, 13),
}

#: Factories for the five paper dataflows, keyed by name.
PAPER_TOPOLOGIES: Dict[str, Callable[[], Dataflow]] = {
    "linear": linear,
    "diamond": diamond,
    "star": star,
    "grid": grid,
    "traffic": traffic,
}

#: FIELDS-grouped variants of the application DAGs (per-entity keyed state).
#: Not part of the paper's figure matrix; used by the rescale and
#: multi-tenant runs to exercise re-keying under load.
KEYED_TOPOLOGIES: Dict[str, Callable[[], Dataflow]] = {
    "traffic-keyed": traffic_keyed,
    "grid-keyed": grid_keyed,
}

#: Every runnable topology (paper DAGs plus keyed variants).
ALL_TOPOLOGIES: Dict[str, Callable[[], Dataflow]] = {**PAPER_TOPOLOGIES, **KEYED_TOPOLOGIES}

#: Evaluation order used throughout the paper's figures.
PAPER_ORDER: List[str] = ["linear", "diamond", "star", "grid", "traffic"]


def by_name(name: str) -> Dataflow:
    """Build a topology by name: a paper dataflow (``linear``, ``diamond``,
    ``star``, ``grid``, ``traffic``) or a keyed variant (``traffic-keyed``,
    ``grid-keyed``)."""
    try:
        factory = ALL_TOPOLOGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown paper topology {name!r}; choose from {sorted(ALL_TOPOLOGIES)}"
        ) from None
    return factory()
