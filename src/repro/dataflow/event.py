"""Events that flow through the dataflow.

Two kinds of events exist:

* **Data events** -- the user stream.  Every data event belongs to a *causal
  tree* rooted at the event emitted by a source task; the root's 64-bit id is
  what the acker service tracks (see :mod:`repro.reliability.acker`).
* **Checkpoint (control) events** -- PREPARE / COMMIT / ROLLBACK / INIT waves
  emitted by the checkpoint coordinator.  These drive Storm's three-phase
  state checkpointing, which the DCR and CCR strategies re-purpose for
  just-in-time checkpoints during migration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional


class EventKind(Enum):
    """Top-level classification of an event."""

    DATA = "data"
    CHECKPOINT = "checkpoint"


class CheckpointAction(Enum):
    """The action carried by a checkpoint control event.

    Mirrors Storm's checkpoint state machine: a PREPARE wave snapshots task
    state, COMMIT persists it to the external store, ROLLBACK aborts a failed
    wave, and INIT restores committed state into (re)started tasks.
    """

    PREPARE = "prepare"
    COMMIT = "commit"
    ROLLBACK = "rollback"
    INIT = "init"


_EVENT_ID_COUNTER = itertools.count(1)


def next_event_id() -> int:
    """Return a fresh, process-unique event id.

    Storm uses random 64-bit ids; a monotonically increasing counter gives the
    same uniqueness guarantees while keeping experiments deterministic.
    """
    return next(_EVENT_ID_COUNTER)


def reserve_event_ids(count: int) -> int:
    """Reserve ``count`` consecutive event ids, returning the first.

    Equivalent to ``count`` :func:`next_event_id` calls (the reserved block is
    ``first .. first + count - 1``).  The vectorized batch cascade stamps
    whole emission/receipt cohorts from one reservation instead of paying a
    counter call per event.
    """
    global _EVENT_ID_COUNTER
    first = next(_EVENT_ID_COUNTER)
    _EVENT_ID_COUNTER = itertools.count(first + count)
    return first


def reset_event_ids() -> None:
    """Reset the global event-id counter (used by tests for determinism).

    Also drains the event pool: pooled objects are recycled run-local state,
    and a hermetic run (shard workers, equivalence tests) must not observe
    objects left over from a previous run.
    """
    global _EVENT_ID_COUNTER, _POOL_RECYCLED
    _EVENT_ID_COUNTER = itertools.count(1)
    _EVENT_POOL.clear()
    _POOL_RECYCLED = 0


#: Free list of dead Event objects available for reuse by copy_for_edge().
#: Fan-out routing clones an event once per additional edge and the clones
#: die at the sinks; recycling them skips the allocator on the hottest
#: allocation site.  Bounded so a burst cannot pin memory forever.
_EVENT_POOL: list = []
_EVENT_POOL_MAX = 512

#: Lifetime count of events returned to the pool; scraped by the telemetry
#: layer and reset alongside the ids in reset_event_ids().
_POOL_RECYCLED = 0


def pool_recycled_total() -> int:
    """Lifetime number of event objects returned to the recycle pool."""
    return _POOL_RECYCLED


def recycle_event(event: "Event") -> None:
    """Return a dead event object to the pool.

    Only call when the event has left the system entirely (completed at a
    sink) and is not anchored: anchored events may still be referenced by
    the acker's failure bookkeeping.  The payload reference is dropped so
    the pool never keeps user data alive.
    """
    if len(_EVENT_POOL) < _EVENT_POOL_MAX and not event.anchored:
        global _POOL_RECYCLED
        event.payload = None
        _EVENT_POOL.append(event)
        _POOL_RECYCLED += 1


@dataclass(slots=True)
class Event:
    """A single event (tuple) flowing between executors.

    Slotted: events are the most-allocated and most-read objects in a run,
    and slot storage makes both construction and field access measurably
    cheaper than instance dicts.

    Attributes
    ----------
    event_id:
        Unique id of this event.
    root_id:
        Id of the causal-tree root (the source-emitted event this one descends
        from).  For checkpoint events this is the id of the wave's root
        control event.
    kind:
        Data or checkpoint.
    source_task:
        Name of the task that produced the event.
    payload:
        Arbitrary user payload (kept small in the experiments).
    created_at:
        Simulated time at which this particular event object was produced.
    root_emitted_at:
        Simulated time at which the causal root was *first* emitted by the
        source (replays preserve the original value so end-to-end latency is
        measured against the original emission, as the paper does).
    checkpoint_action / checkpoint_id:
        Only set for checkpoint events: the action and the wave number.
    replay_count:
        How many times the causal root has been replayed by the source due to
        ack timeouts (0 for a first emission).
    anchored:
        Whether the event is tracked by the acker service.
    """

    event_id: int
    root_id: int
    kind: EventKind
    source_task: str
    payload: Any = None
    created_at: float = 0.0
    root_emitted_at: float = 0.0
    checkpoint_action: Optional[CheckpointAction] = None
    checkpoint_id: Optional[int] = None
    replay_count: int = 0
    anchored: bool = False

    # ------------------------------------------------------------- factories
    @classmethod
    def data(
        cls,
        source_task: str,
        payload: Any = None,
        created_at: float = 0.0,
        root_id: Optional[int] = None,
        root_emitted_at: Optional[float] = None,
        replay_count: int = 0,
        anchored: bool = False,
    ) -> "Event":
        """Create a data event.  If ``root_id`` is omitted the event is a root."""
        event_id = next_event_id()
        return cls(
            event_id=event_id,
            root_id=root_id if root_id is not None else event_id,
            kind=EventKind.DATA,
            source_task=source_task,
            payload=payload,
            created_at=created_at,
            root_emitted_at=root_emitted_at if root_emitted_at is not None else created_at,
            replay_count=replay_count,
            anchored=anchored,
        )

    @classmethod
    def checkpoint(
        cls,
        action: CheckpointAction,
        checkpoint_id: int,
        source_task: str,
        created_at: float = 0.0,
        root_id: Optional[int] = None,
        anchored: bool = True,
    ) -> "Event":
        """Create a checkpoint control event for the given wave."""
        event_id = next_event_id()
        return cls(
            event_id=event_id,
            root_id=root_id if root_id is not None else event_id,
            kind=EventKind.CHECKPOINT,
            source_task=source_task,
            payload=None,
            created_at=created_at,
            root_emitted_at=created_at,
            checkpoint_action=action,
            checkpoint_id=checkpoint_id,
            anchored=anchored,
        )

    # ------------------------------------------------------------ derivation
    def derive(self, source_task: str, payload: Any = None, created_at: float = 0.0) -> "Event":
        """Create a causally dependent child event (same root, new id)."""
        return Event(
            next(_EVENT_ID_COUNTER),
            self.root_id,
            self.kind,
            source_task,
            payload if payload is not None else self.payload,
            created_at,
            self.root_emitted_at,
            self.checkpoint_action,
            self.checkpoint_id,
            self.replay_count,
            self.anchored,
        )

    def copy_for_edge(self) -> "Event":
        """Duplicate the event for delivery on an additional outgoing edge.

        Storm delivers the *same* tuple object to every subscribed downstream
        task; for acking purposes each delivery is a distinct anchored edge, so
        we give each copy a fresh id while keeping the same root.  Built by
        positional construction: this runs once per routed event, and
        ``dataclasses.replace`` costs several times more than ``__init__``.
        Clones are drawn from the recycle pool when one is available (see
        :func:`recycle_event`); a reused object has every field re-stamped,
        so pooling is invisible to consumers.
        """
        if _EVENT_POOL:
            clone = _EVENT_POOL.pop()
            clone.event_id = next(_EVENT_ID_COUNTER)
            clone.root_id = self.root_id
            clone.kind = self.kind
            clone.source_task = self.source_task
            clone.payload = self.payload
            clone.created_at = self.created_at
            clone.root_emitted_at = self.root_emitted_at
            clone.checkpoint_action = self.checkpoint_action
            clone.checkpoint_id = self.checkpoint_id
            clone.replay_count = self.replay_count
            clone.anchored = self.anchored
            return clone
        return Event(
            next(_EVENT_ID_COUNTER),
            self.root_id,
            self.kind,
            self.source_task,
            self.payload,
            self.created_at,
            self.root_emitted_at,
            self.checkpoint_action,
            self.checkpoint_id,
            self.replay_count,
            self.anchored,
        )

    # ------------------------------------------------------------ properties
    @property
    def is_data(self) -> bool:
        """Whether this is a user data event."""
        return self.kind is EventKind.DATA

    @property
    def is_checkpoint(self) -> bool:
        """Whether this is a checkpoint control event."""
        return self.kind is EventKind.CHECKPOINT

    @property
    def is_root(self) -> bool:
        """Whether this event is the root of its causal tree."""
        return self.event_id == self.root_id

    @property
    def is_replay(self) -> bool:
        """Whether this event descends from a replayed root."""
        return self.replay_count > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_checkpoint:
            return (
                f"Event(ckpt {self.checkpoint_action.value} #{self.checkpoint_id}, "
                f"id={self.event_id})"
            )
        return f"Event(data id={self.event_id}, root={self.root_id}, from={self.source_task})"
