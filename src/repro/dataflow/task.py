"""Task definitions: sources, processing tasks and sinks.

A :class:`Task` describes *what* runs (user logic, latency, selectivity,
statefulness, parallelism); the engine turns each task into ``parallelism``
executors at deployment time.

User logic follows the paper's experimental setup by default: a dummy
processor that sleeps for ``latency_s`` (100 ms) per event and emits
``selectivity`` output payloads per input (1:1 in all paper experiments).
Stateful tasks additionally maintain a per-instance state dictionary that the
checkpoint machinery snapshots and restores; the default stateful logic counts
processed events, mirroring the paper's example of "a count of events seen".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (workloads -> dataflow)
    from repro.workloads.profiles import RateProfile


class TaskKind(Enum):
    """Role of a task inside the dataflow."""

    SOURCE = "source"
    PROCESS = "process"
    SINK = "sink"


#: Signature of user processing logic: ``(payload, state) -> list of output payloads``.
UserLogic = Callable[[Any, Dict[str, Any]], List[Any]]


def default_logic(selectivity: float) -> UserLogic:
    """Return dummy user logic with the given selectivity.

    The integral part of the selectivity determines how many copies of the
    input payload are emitted; a fractional remainder is handled by the
    executor through probabilistic emission (not used in the paper's 1:1
    experiments but supported for generality).
    """

    def _logic(payload: Any, state: Dict[str, Any]) -> List[Any]:
        state["processed"] = state.get("processed", 0) + 1
        count = int(selectivity)
        return [payload] * count

    # Marker read by the batch-stepping cascade: a task whose logic is the
    # dummy 1:1 forwarder (and whose per-call state effect is the single
    # counter increment above) can be swept with array arithmetic instead of
    # one Python call per event.  Custom user logic has no marker and forces
    # the per-event path.
    _logic.default_selectivity = int(selectivity)
    return _logic


@dataclass
class Task:
    """Definition of one dataflow task.

    Attributes
    ----------
    name:
        Unique name within the dataflow.
    kind:
        Source, processing task or sink.
    parallelism:
        Number of task instances (executors); the paper assigns one instance
        per incremental 8 events/sec of input rate.
    latency_s:
        Per-event processing latency of the user logic (100 ms in the paper).
    selectivity:
        Output events emitted per input event (1:1 in the paper).
    stateful:
        Whether the task maintains user state that must be checkpointed.
    logic:
        Optional user logic; defaults to the dummy sleep-and-forward logic.
    initial_state:
        Factory for a fresh per-instance state dictionary.
    state_size_bytes:
        Approximate serialized size of the task state, used by the state-store
        latency model when the state is persisted on COMMIT.
    capacity_ev_s:
        Optional per-instance service capacity (events/second) used when
        sizing this task's parallelism.  ``None`` falls back to the global
        1-instance-per-8-ev/s rule from Table 1 of the paper; setting it
        models heterogeneous task latencies (a fast filter needs fewer
        instances per ev/s than a heavy model-scoring task).
    """

    name: str
    kind: TaskKind = TaskKind.PROCESS
    parallelism: int = 1
    latency_s: float = 0.1
    selectivity: float = 1.0
    stateful: bool = False
    logic: Optional[UserLogic] = None
    initial_state: Callable[[], Dict[str, Any]] = field(default=dict)
    state_size_bytes: int = 256
    capacity_ev_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        if self.parallelism < 1:
            raise ValueError(f"task {self.name!r}: parallelism must be >= 1")
        if self.latency_s < 0:
            raise ValueError(f"task {self.name!r}: latency must be non-negative")
        if self.selectivity < 0:
            raise ValueError(f"task {self.name!r}: selectivity must be non-negative")
        if self.capacity_ev_s is not None and self.capacity_ev_s <= 0:
            raise ValueError(f"task {self.name!r}: capacity_ev_s must be positive when set")
        if self.logic is None:
            self.logic = default_logic(self.selectivity)

    @property
    def is_source(self) -> bool:
        """Whether this task is a source."""
        return self.kind is TaskKind.SOURCE

    @property
    def is_sink(self) -> bool:
        """Whether this task is a sink."""
        return self.kind is TaskKind.SINK

    def instance_ids(self) -> List[str]:
        """Executor ids for this task, in instance order (``name#0``, ``name#1`` ...)."""
        return [f"{self.name}#{i}" for i in range(self.parallelism)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.stateful:
            flags.append("stateful")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"Task({self.name}, {self.kind.value}, x{self.parallelism}, "
            f"{self.latency_s * 1000:.0f}ms, sel={self.selectivity}{suffix})"
        )


@dataclass
class SourceTask(Task):
    """A source task that generates the input stream.

    Attributes
    ----------
    rate:
        Events emitted per second while the source is unpaused (8 ev/s in the
        paper's experiments).  When a ``profile`` is set this is only the
        baseline used for capacity planning; the instantaneous rate follows
        the profile.
    profile:
        Optional :class:`~repro.workloads.profiles.RateProfile`.  When set,
        the source's emission rate follows ``profile.rate_at(sim.now)`` over
        simulated time instead of staying fixed at ``rate`` -- the input-rate
        dynamism that motivates elastic migration in the first place.
    payload_factory:
        Optional callable ``(sequence_number) -> payload``.
    """

    rate: float = 8.0
    profile: Optional["RateProfile"] = None
    payload_factory: Optional[Callable[[int], Any]] = None

    def __post_init__(self) -> None:
        self.kind = TaskKind.SOURCE
        self.latency_s = 0.0
        super().__post_init__()
        if self.rate <= 0:
            raise ValueError(f"source {self.name!r}: rate must be positive")


@dataclass
class SinkTask(Task):
    """A sink task that terminates the stream and records observations."""

    def __post_init__(self) -> None:
        self.kind = TaskKind.SINK
        self.latency_s = 0.0
        self.selectivity = 0.0
        super().__post_init__()
