"""Stream groupings: how events are distributed among a downstream task's instances.

Mirrors Storm's groupings.  The paper's experiments use shuffle grouping for
data events; the CCR strategy additionally relies on an *all* (broadcast)
channel from the checkpoint source to every task instance.
"""

from __future__ import annotations

from enum import Enum


class Grouping(Enum):
    """Distribution policy for one dataflow edge."""

    #: Round-robin across the downstream task's instances (Storm's default for
    #: the experiments; load-balances evenly).
    SHUFFLE = "shuffle"
    #: Hash of a payload key selects the instance; needed by keyed stateful
    #: tasks so the same key always lands on the same instance.
    FIELDS = "fields"
    #: Every instance of the downstream task receives a copy (Storm's "all"
    #: grouping); used for checkpoint control channels.
    ALL = "all"
    #: All events go to the first instance (Storm's "global" grouping).
    GLOBAL = "global"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
