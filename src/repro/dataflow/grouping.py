"""Stream groupings: how events are distributed among a downstream task's instances.

Mirrors Storm's groupings.  The paper's experiments use shuffle grouping for
data events; the CCR strategy additionally relies on an *all* (broadcast)
channel from the checkpoint source to every task instance.

This module also owns the **stable FIELDS hash**: the key -> instance mapping
must be identical wherever it is computed (the router selecting delivery
targets, the state re-partitioner re-keying grouped state during a rescale),
so both import it from here rather than each rolling their own.
"""

from __future__ import annotations

import zlib
from enum import Enum
from typing import Any


class Grouping(Enum):
    """Distribution policy for one dataflow edge."""

    #: Round-robin across the downstream task's instances (Storm's default for
    #: the experiments; load-balances evenly).
    SHUFFLE = "shuffle"
    #: Hash of a payload key selects the instance; needed by keyed stateful
    #: tasks so the same key always lands on the same instance.
    FIELDS = "fields"
    #: Every instance of the downstream task receives a copy (Storm's "all"
    #: grouping); used for checkpoint control channels.
    ALL = "all"
    #: All events go to the first instance (Storm's "global" grouping).
    GLOBAL = "global"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def stable_field_index(key: str, num_instances: int) -> int:
    """Stable FIELDS-grouping instance index for ``key``.

    Uses CRC-32 rather than the builtin ``hash()``: string hashing is
    randomized per process (``PYTHONHASHSEED``), which would send keyed
    streams to different instances run-to-run and make placements, figures
    and state re-partitioning irreproducible.
    """
    return zlib.crc32(key.encode("utf-8")) % num_instances


def field_key_of(payload: Any) -> str:
    """Extract the FIELDS-grouping key from an event payload.

    Dict payloads are keyed by their ``key``/``id``/``seq`` entry (first one
    present); any other payload is keyed by its string form.  The router and
    the rescale re-partitioner must agree on this rule, which is why it lives
    here.
    """
    if isinstance(payload, dict):
        for candidate in ("key", "id", "seq"):
            if candidate in payload:
                return str(payload[candidate])
    return str(payload)
