"""Fluent topology builder.

Mirrors Storm's ``TopologyBuilder``: declare sources, tasks and sinks, wire
them with stream groupings, then :meth:`TopologyBuilder.build` a validated
:class:`~repro.dataflow.graph.Dataflow`.

The CCR strategy's modification of Storm's ``TopologyBuilder`` (automatically
creating the broadcast wiring from the checkpoint source to all tasks) is
handled at the runtime layer (:mod:`repro.engine.runtime`), not here: the
checkpoint channel is a platform concern, not part of the user's dataflow.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.dataflow.graph import Dataflow, DataflowValidationError, Edge
from repro.dataflow.grouping import Grouping
from repro.dataflow.task import SinkTask, SourceTask, Task, TaskKind, UserLogic


class TopologyBuilder:
    """Incrementally assemble a :class:`~repro.dataflow.graph.Dataflow`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._tasks: Dict[str, Task] = {}
        self._edges: List[Edge] = []

    # ---------------------------------------------------------- declarations
    def add_source(
        self,
        name: str,
        rate: float = 8.0,
        parallelism: int = 1,
        payload_factory: Optional[Callable[[int], Any]] = None,
        profile: Optional[Any] = None,
    ) -> "TopologyBuilder":
        """Declare a source task emitting ``rate`` events/second.

        ``profile`` optionally attaches a
        :class:`~repro.workloads.profiles.RateProfile`; the emission rate then
        follows the profile over simulated time instead of staying fixed.
        """
        self._add(SourceTask(name=name, rate=rate, parallelism=parallelism,
                             payload_factory=payload_factory, profile=profile))
        return self

    def add_task(
        self,
        name: str,
        parallelism: int = 1,
        latency_s: float = 0.1,
        selectivity: float = 1.0,
        stateful: bool = False,
        logic: Optional[UserLogic] = None,
        state_size_bytes: int = 256,
        capacity_ev_s: Optional[float] = None,
    ) -> "TopologyBuilder":
        """Declare a processing task.

        ``capacity_ev_s`` optionally declares this task's per-instance service
        capacity; auto-parallelism and the elastic planner then size it by its
        own rate instead of the global 1-per-8-ev/s rule.
        """
        self._add(
            Task(
                name=name,
                kind=TaskKind.PROCESS,
                parallelism=parallelism,
                latency_s=latency_s,
                selectivity=selectivity,
                stateful=stateful,
                logic=logic,
                state_size_bytes=state_size_bytes,
                capacity_ev_s=capacity_ev_s,
            )
        )
        return self

    def add_sink(self, name: str, parallelism: int = 1) -> "TopologyBuilder":
        """Declare a sink task."""
        self._add(SinkTask(name=name, parallelism=parallelism))
        return self

    def _add(self, task: Task) -> None:
        if task.name in self._tasks:
            raise DataflowValidationError(f"task {task.name!r} declared twice")
        self._tasks[task.name] = task

    # --------------------------------------------------------------- wiring
    def connect(self, src: str, dst: str, grouping: Grouping = Grouping.SHUFFLE) -> "TopologyBuilder":
        """Wire an edge from ``src`` to ``dst`` with the given grouping."""
        if src not in self._tasks:
            raise DataflowValidationError(f"connect: unknown source task {src!r}")
        if dst not in self._tasks:
            raise DataflowValidationError(f"connect: unknown destination task {dst!r}")
        if src == dst:
            raise DataflowValidationError(f"connect: self-loop on task {src!r} is not allowed")
        edge = Edge(src=src, dst=dst, grouping=grouping)
        if any(e.src == src and e.dst == dst for e in self._edges):
            raise DataflowValidationError(f"connect: duplicate edge {src!r} -> {dst!r}")
        self._edges.append(edge)
        return self

    def chain(self, *names: str, grouping: Grouping = Grouping.SHUFFLE) -> "TopologyBuilder":
        """Wire a sequential chain of tasks: ``chain(a, b, c)`` creates a->b and b->c."""
        for src, dst in zip(names, names[1:]):
            self.connect(src, dst, grouping=grouping)
        return self

    def fan_out(self, src: str, dsts: List[str], grouping: Grouping = Grouping.SHUFFLE) -> "TopologyBuilder":
        """Wire ``src`` to each task in ``dsts``."""
        for dst in dsts:
            self.connect(src, dst, grouping=grouping)
        return self

    def fan_in(self, srcs: List[str], dst: str, grouping: Grouping = Grouping.SHUFFLE) -> "TopologyBuilder":
        """Wire each task in ``srcs`` to ``dst``."""
        for src in srcs:
            self.connect(src, dst, grouping=grouping)
        return self

    # ---------------------------------------------------------------- build
    def build(self, auto_parallelism: bool = False, events_per_instance: float = 8.0) -> Dataflow:
        """Validate and return the dataflow.

        With ``auto_parallelism=True`` each user task's parallelism is derived
        from its steady-state input rate (one instance per ``events_per_instance``
        events/second), per the paper's provisioning rule.
        """
        dataflow = Dataflow(self.name, list(self._tasks.values()), self._edges)
        if auto_parallelism:
            dataflow.apply_auto_parallelism(events_per_instance)
        return dataflow
