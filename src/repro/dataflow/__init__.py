"""Dataflow (topology) model.

A streaming application is a directed acyclic graph of tasks: one or more
*source* tasks emit event streams, intermediate tasks transform them, and
*sink* tasks terminate the streams.  Tasks may be stateful, have a data-
parallel degree (number of instances / executors), a per-event processing
latency and a selectivity (output events produced per input event).

This package holds the *definition* side only; the runtime behaviour lives in
:mod:`repro.engine`.

The module :mod:`repro.dataflow.topologies` provides the five dataflows used
throughout the paper's evaluation (Fig. 4 and Table 1): the Linear, Diamond
and Star micro-DAGs and the Traffic and Grid application DAGs, plus a
parametric ``linear(n)`` used for the 50-task drain-time experiment.
"""

from repro.dataflow.event import CheckpointAction, Event, EventKind
from repro.dataflow.grouping import Grouping, field_key_of, stable_field_index
from repro.dataflow.task import SinkTask, SourceTask, Task, TaskKind
from repro.dataflow.graph import (
    Dataflow,
    DataflowValidationError,
    Edge,
    RescalePlan,
    exact_instance_ceiling,
)
from repro.dataflow.builder import TopologyBuilder
from repro.dataflow import topologies

__all__ = [
    "CheckpointAction",
    "Dataflow",
    "DataflowValidationError",
    "Edge",
    "Event",
    "EventKind",
    "Grouping",
    "RescalePlan",
    "SinkTask",
    "SourceTask",
    "Task",
    "TaskKind",
    "TopologyBuilder",
    "exact_instance_ceiling",
    "field_key_of",
    "stable_field_index",
    "topologies",
]
