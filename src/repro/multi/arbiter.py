"""Cluster-wide arbitration of scaling decisions on a shared fleet.

On a multi-tenant cluster every dataflow runs its own elastic control loop,
but capacity is global: if each controller provisioned on its own, two
simultaneous surges could blow past the fleet budget, and one tenant could
rebalance onto VMs another tenant's in-flight scale-in is about to
deprovision.  The :class:`ScaleArbiter` is the single authority every
:class:`~repro.multi.tenant.TenantController` must ask before acquiring
capacity.

The arbitration policy, in the order the checks run:

1. **Migration serialization** -- at most ``max_concurrent_migrations``
   scaling migrations may be in flight at once (default 1: strictly
   serialized).  Concurrent migrations are safe only because every grant
   targets freshly provisioned VMs and the *retiring* sets (old VMs an
   in-flight migration will vacate) are published for schedulers to avoid.
2. **Fleet budget** -- worker slots in the cluster plus slots reserved by
   granted-but-not-yet-provisioned proposals must never exceed
   ``budget_slots``.  Reservations are taken at grant time and converted to
   physical accounting the moment the VMs join the cluster, so two tenants
   can never double-provision their way past the cap.
3. **Priority tiers** -- a proposal is deferred while a *higher-priority*
   tenant is waiting: capacity that frees up goes to the most important
   tenant first, even if it asked later.
4. **Proportional-share fallback** -- among waiting tenants of equal
   priority, the one holding the fewest slots per unit of weight wins the
   next grant, so a heavy tenant cannot starve a light one at the same
   priority tier.

Deferral is cheap by design: controllers re-propose on their next control
tick, so the arbiter keeps a *waiting registry* (who wants how much, since
when) rather than a callback queue, and clears entries on grant or when the
tenant withdraws (its demand went back in band).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.cluster.cloud import Cluster
from repro.cluster.vm import VirtualMachine


def is_worker_vm(vm: VirtualMachine) -> bool:
    """Whether a VM counts against the worker-slot budget (util hosts do not)."""
    return not vm.tags.get("role", "").startswith("util")


@dataclass(frozen=True)
class ArbiterDecision:
    """Outcome of one proposal."""

    granted: bool
    #: ``granted``, ``migration-in-flight``, ``budget``,
    #: ``yield-to-higher-priority`` or ``proportional-share``.
    reason: str


@dataclass
class TenantRegistration:
    """A tenant known to the arbiter."""

    tenant_id: str
    priority: int
    weight: float
    #: Live count of worker slots the tenant currently occupies (the manager
    #: wires this to the tenant's deployed executor count).
    holdings_fn: Callable[[], int]

    def held_per_weight(self) -> float:
        """Current holdings normalized by weight (proportional-share metric)."""
        return self.holdings_fn() / self.weight


@dataclass
class WaitingEntry:
    """A deferred proposal, kept until granted or withdrawn."""

    tenant_id: str
    priority: int
    slots: int
    direction: str
    since: float


@dataclass
class InFlightMigration:
    """Capacity bookkeeping for one granted scaling migration."""

    tenant_id: str
    #: Slots granted but not yet physically in the cluster.
    reserved_slots: int
    granted_at: float
    #: Old VMs the migration will vacate (published once the request is issued).
    retiring_vm_ids: Set[str] = field(default_factory=set)


@dataclass(frozen=True)
class ProposalRecord:
    """Audit-log entry for one arbitration: who asked, the verdict, and the
    budget position before/after, so contention is greppable (``repro multi
    --audit-json``) instead of reconstructed from prose logs."""

    time: float
    tenant_id: str
    direction: str
    slots_requested: int
    granted: bool
    reason: str
    #: Committed slots (physical fleet + reservations) before / after the
    #: verdict was applied, against the cluster-wide budget.
    committed_before: int = 0
    committed_after: int = 0
    budget_slots: int = 0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for JSON export."""
        return {
            "time": self.time,
            "tenant_id": self.tenant_id,
            "direction": self.direction,
            "slots_requested": self.slots_requested,
            "granted": self.granted,
            "reason": self.reason,
            "committed_before": self.committed_before,
            "committed_after": self.committed_after,
            "budget_slots": self.budget_slots,
        }


class ScaleArbiter:
    """Grants or defers tenants' scaling proposals under a fleet slot budget."""

    def __init__(
        self,
        cluster: Cluster,
        budget_slots: int,
        max_concurrent_migrations: int = 1,
    ) -> None:
        if budget_slots <= 0:
            raise ValueError(f"budget_slots must be positive, got {budget_slots}")
        if max_concurrent_migrations < 1:
            raise ValueError("max_concurrent_migrations must be at least 1")
        self.cluster = cluster
        self.budget_slots = budget_slots
        self.max_concurrent_migrations = max_concurrent_migrations
        self.tenants: Dict[str, TenantRegistration] = {}
        self.waiting: Dict[str, WaitingEntry] = {}
        self.in_flight: Dict[str, InFlightMigration] = {}
        self.log: List[ProposalRecord] = []
        #: Audit entries for grants returned unspent (see :meth:`notify_aborted`).
        self.aborts: List[ProposalRecord] = []
        #: VMs under an eviction notice (a tenant is draining them); placed
        #: like retiring VMs: nobody schedules onto a machine the cloud is
        #: about to reclaim.
        self.doomed_vms: Set[str] = set()
        #: High-water mark of committed slots (physical + reserved), for the
        #: budget invariant checks in tests and reports.
        self.max_committed_slots = 0

    # ---------------------------------------------------------- registration
    def register_tenant(
        self,
        tenant_id: str,
        priority: int = 1,
        weight: float = 1.0,
        holdings_fn: Optional[Callable[[], int]] = None,
    ) -> TenantRegistration:
        """Register a tenant; must happen before it may propose."""
        if tenant_id in self.tenants:
            raise ValueError(f"tenant {tenant_id!r} is already registered")
        if weight <= 0:
            raise ValueError(f"tenant {tenant_id!r}: weight must be positive")
        registration = TenantRegistration(
            tenant_id=tenant_id,
            priority=priority,
            weight=weight,
            holdings_fn=holdings_fn if holdings_fn is not None else (lambda: 0),
        )
        self.tenants[tenant_id] = registration
        return registration

    # ------------------------------------------------------------ accounting
    def fleet_slots(self) -> int:
        """Worker slots physically in the shared cluster right now."""
        return sum(len(vm.slots) for vm in self.cluster.vms if is_worker_vm(vm))

    def reserved_slots(self) -> int:
        """Slots granted but not yet provisioned into the cluster."""
        return sum(m.reserved_slots for m in self.in_flight.values())

    def committed_slots(self) -> int:
        """Physical plus reserved slots -- what the budget is checked against."""
        return self.fleet_slots() + self.reserved_slots()

    @property
    def retiring_vms(self) -> Set[str]:
        """VMs in-flight migrations are about to deprovision (do not place here)."""
        retiring: Set[str] = set()
        for migration in self.in_flight.values():
            retiring |= migration.retiring_vm_ids
        return retiring

    def _note_committed(self) -> None:
        committed = self.committed_slots()
        if committed > self.max_committed_slots:
            self.max_committed_slots = committed

    def observe_committed(self) -> int:
        """Fold the current committed count into the high-water mark.

        Called by the manager's fleet sampler so ``max_committed_slots``
        reflects the fleet even across stretches with no grants.
        """
        self._note_committed()
        return self.max_committed_slots

    # -------------------------------------------------------------- proposals
    def propose(self, tenant_id: str, direction: str, slots: int, now: float) -> ArbiterDecision:
        """Arbitrate one scaling proposal (``slots`` = new VM slots to provision).

        Scale-ins go through the same path: a consolidation provisions a new
        (smaller) fleet too, and its migration must be serialized like any
        other.  A deferred proposal stays in the waiting registry; the
        controller simply re-proposes next tick.
        """
        if tenant_id not in self.tenants:
            raise KeyError(f"tenant {tenant_id!r} is not registered with the arbiter")
        if slots < 0:
            raise ValueError(f"slots must be non-negative, got {slots}")
        me = self.tenants[tenant_id]

        committed_before = self.committed_slots()
        decision = self._decide(me, direction, slots)
        if decision.granted:
            self.waiting.pop(tenant_id, None)
            self.in_flight[tenant_id] = InFlightMigration(
                tenant_id=tenant_id, reserved_slots=slots, granted_at=now
            )
            self._note_committed()
        else:
            self.waiting[tenant_id] = WaitingEntry(
                tenant_id=tenant_id,
                priority=me.priority,
                slots=slots,
                direction=direction,
                since=self.waiting[tenant_id].since if tenant_id in self.waiting else now,
            )
        self.log.append(
            ProposalRecord(
                time=now,
                tenant_id=tenant_id,
                direction=direction,
                slots_requested=slots,
                granted=decision.granted,
                reason=decision.reason,
                committed_before=committed_before,
                committed_after=self.committed_slots(),
                budget_slots=self.budget_slots,
            )
        )
        return decision

    def _decide(self, me: TenantRegistration, direction: str, slots: int) -> ArbiterDecision:
        if me.tenant_id in self.in_flight:
            # Defensive: a tenant with a migration in flight must not propose
            # again (the controller blocks on migration_in_flight anyway).
            return ArbiterDecision(granted=False, reason="migration-in-flight")
        if len(self.in_flight) >= self.max_concurrent_migrations:
            return ArbiterDecision(granted=False, reason="migration-in-flight")
        if self.committed_slots() + slots > self.budget_slots:
            return ArbiterDecision(granted=False, reason="budget")
        rivals = [w for t, w in self.waiting.items() if t != me.tenant_id]
        if any(w.priority > me.priority for w in rivals):
            return ArbiterDecision(granted=False, reason="yield-to-higher-priority")
        peers = [w for w in rivals if w.priority == me.priority]
        if peers:
            my_share = me.held_per_weight()
            for waiting in peers:
                peer = self.tenants[waiting.tenant_id]
                if peer.held_per_weight() < my_share:
                    return ArbiterDecision(granted=False, reason="proportional-share")
        return ArbiterDecision(granted=True, reason="granted")

    def withdraw(self, tenant_id: str) -> None:
        """Drop a tenant's waiting entry (its demand went back in band)."""
        self.waiting.pop(tenant_id, None)

    # ---------------------------------------------------------- notifications
    def notify_provisioned(self, tenant_id: str, vm_ids: Iterable[str]) -> None:
        """Convert a grant's reservation into physical fleet accounting.

        The VMs are now in the cluster (counted by :meth:`fleet_slots`), so
        the matching reservation is released slot-for-slot -- double counting
        a VM as both physical and reserved would eat budget that is free.
        """
        migration = self.in_flight.get(tenant_id)
        if migration is None:
            return
        provisioned = sum(
            len(self.cluster.vm(vm_id).slots) for vm_id in vm_ids if vm_id in self.cluster
        )
        migration.reserved_slots = max(0, migration.reserved_slots - provisioned)
        self._note_committed()

    def notify_migration_started(self, tenant_id: str, retiring_vm_ids: Iterable[str]) -> None:
        """Publish the VMs an in-flight migration is going to vacate."""
        migration = self.in_flight.get(tenant_id)
        if migration is not None:
            migration.retiring_vm_ids |= set(retiring_vm_ids)

    def notify_complete(self, tenant_id: str) -> None:
        """A tenant's migration finished: clear its reservation and retiring set."""
        self.in_flight.pop(tenant_id, None)
        self._note_committed()

    def notify_aborted(self, tenant_id: str, now: float = 0.0) -> int:
        """Return an in-flight grant to the budget unspent.

        Called when a granted scaling action is abandoned -- e.g. every delta
        VM died during provisioning, so the migration will never start.
        Without this the tenant's :class:`InFlightMigration` entry would hold
        its reservation, its retiring set and (with serialized migrations) the
        single migration token forever, starving every other tenant.  Returns
        the number of reserved slots handed back.
        """
        committed_before = self.committed_slots()
        migration = self.in_flight.pop(tenant_id, None)
        if migration is None:
            return 0
        returned = migration.reserved_slots
        self.aborts.append(
            ProposalRecord(
                time=now,
                tenant_id=tenant_id,
                direction="abort",
                slots_requested=returned,
                granted=False,
                reason="aborted",
                committed_before=committed_before,
                committed_after=self.committed_slots(),
                budget_slots=self.budget_slots,
            )
        )
        self._note_committed()
        return returned

    def mark_doomed(self, vm_ids: Iterable[str]) -> None:
        """Publish VMs under an eviction notice (no tenant should place here)."""
        self.doomed_vms |= set(vm_ids)

    def clear_doomed(self, vm_ids: Iterable[str]) -> None:
        """Drop eviction-notice markers once the VMs are drained or reclaimed."""
        self.doomed_vms -= set(vm_ids)

    # ---------------------------------------------------------------- queries
    def grants(self) -> List[ProposalRecord]:
        """Audit-log entries that were granted."""
        return [r for r in self.log if r.granted]

    def deferrals(self) -> List[ProposalRecord]:
        """Audit-log entries that were deferred, with their reasons."""
        return [r for r in self.log if not r.granted]
