"""The multi-tenant cluster manager: many dataflows, one shared fleet.

The :class:`ClusterManager` is the operator-side composition root the paper's
north-star use case needs (a cloud provider hosting many users' pipelines):
it owns one :class:`~repro.sim.Simulator`, one
:class:`~repro.cluster.cloud.CloudProvider`, one shared
:class:`~repro.cluster.cloud.Cluster` and one
:class:`~repro.multi.arbiter.ScaleArbiter`, and hosts N independent tenants,
each with its own dataflow, :class:`~repro.engine.runtime.TopologyRuntime`,
:class:`~repro.elastic.monitor.ElasticityMonitor`,
:class:`~repro.elastic.planner.AllocationPlanner` and
:class:`~repro.multi.tenant.TenantController`.

Deployment bin-packs every tenant onto a common D2 worker fleet (partially
filled VMs first, so tenants co-locate instead of each rounding up to a
private fleet) via the occupancy-aware
:class:`~repro.cluster.scheduler.SharedFleetScheduler`.  Each tenant gets a
dedicated util VM for its sources and sinks (the paper pins them off the
migration path), tagged ``role="util:<tenant>"`` so the tenant's runtime
finds its own and never the neighbours'.

While running, the manager samples fleet-level occupancy
(:class:`FleetSample`) so experiments can report cluster utilization and
verify the budget invariant over time.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Union

from repro.cluster.cloud import CloudProvider, Cluster
from repro.cluster.scheduler import SharedFleetScheduler
from repro.cluster.vm import D2, D3
from repro.core.strategy import strategy_by_name
from repro.dataflow.graph import Dataflow
from repro.elastic.controller import ControllerConfig
from repro.elastic.monitor import ElasticityMonitor
from repro.elastic.planner import AllocationPlanner
from repro.elastic.policy import IncrementalPlacement
from repro.engine.config import RuntimeConfig
from repro.engine.runtime import TopologyRuntime
from repro.multi.arbiter import ScaleArbiter, is_worker_vm
from repro.multi.tenant import TenantController
from repro.sim import Simulator
from repro.workloads.profiles import RateProfile, profile_by_name


@dataclass
class Tenant:
    """One hosted dataflow and its control stack."""

    name: str
    dataflow: Dataflow
    strategy: str
    priority: int
    weight: float
    profile: Optional[RateProfile]
    runtime: TopologyRuntime = None  # type: ignore[assignment]  # set at deploy
    monitor: ElasticityMonitor = None  # type: ignore[assignment]
    planner: AllocationPlanner = None  # type: ignore[assignment]
    controller: TenantController = None  # type: ignore[assignment]
    util_vm_id: Optional[str] = None
    config: Optional[RuntimeConfig] = None
    controller_config: Optional[ControllerConfig] = None
    instance_capacity_ev_s: float = 8.0
    task_capacities_ev_s: Optional[Dict[str, float]] = None
    elastic_parallelism: bool = False
    #: ``full-replace`` (fresh fleet per scaling action, the default) or
    #: ``incremental`` (keep unchanged instances; a consolidation re-uses
    #: partially-free shared VMs instead of provisioning a private fleet).
    placement: str = "full-replace"

    @property
    def deployed(self) -> bool:
        """Whether the tenant's runtime has been deployed."""
        return self.runtime is not None and self.runtime.deployed


@dataclass(frozen=True)
class FleetSample:
    """One observation of the shared fleet."""

    time: float
    #: Worker slots physically provisioned (must stay within the budget).
    worker_slots: int
    #: Worker slots hosting an executor.
    occupied_slots: int
    #: Committed slots as the arbiter sees them (physical + reserved).
    committed_slots: int

    @property
    def utilization(self) -> float:
        """Occupied fraction of the provisioned worker slots."""
        return self.occupied_slots / self.worker_slots if self.worker_slots else 0.0


def _tenant_seed(base_seed: int, tenant: str, dag_name: str) -> int:
    """Independent random streams per tenant, reproducibly."""
    digest = hashlib.sha256(f"multi:{tenant}:{dag_name}".encode("utf-8")).digest()
    return base_seed * 1_000_003 + int.from_bytes(digest[:4], "big")


class ClusterManager:
    """Owns the shared fleet and hosts N arbitrated tenants."""

    def __init__(
        self,
        budget_slots: int,
        sim: Optional[Simulator] = None,
        provisioning_latency_s: float = 30.0,
        billing_granularity_s: float = 60.0,
        max_concurrent_migrations: int = 1,
        fleet_sample_interval_s: float = 15.0,
        seed: int = 2018,
    ) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.provider = CloudProvider(
            self.sim,
            provisioning_latency_s=provisioning_latency_s,
            billing_granularity_s=billing_granularity_s,
        )
        self.cluster = Cluster()
        self.arbiter = ScaleArbiter(
            self.cluster,
            budget_slots=budget_slots,
            max_concurrent_migrations=max_concurrent_migrations,
        )
        self.fleet_sample_interval_s = fleet_sample_interval_s
        self.seed = seed
        self.tenants: Dict[str, Tenant] = {}
        self.fleet_samples: List[FleetSample] = []
        self.initial_vm_ids: List[str] = []
        self._deployed = False
        self._sampler_timer = None

    # ----------------------------------------------------------------- tenants
    def add_tenant(
        self,
        name: str,
        dataflow: Dataflow,
        strategy: str = "ccr",
        profile: Optional[Union[str, RateProfile]] = None,
        priority: int = 1,
        weight: float = 1.0,
        config: Optional[RuntimeConfig] = None,
        controller_config: Optional[ControllerConfig] = None,
        instance_capacity_ev_s: float = 8.0,
        task_capacities_ev_s: Optional[Dict[str, float]] = None,
        elastic_parallelism: bool = False,
        profile_duration_s: float = 900.0,
        placement: str = "full-replace",
    ) -> Tenant:
        """Register a dataflow as a tenant (before :meth:`deploy`).

        ``profile`` follows the elastic runner's convention: a preset name is
        instantiated per source at that source's own base rate; a
        :class:`RateProfile` instance is only accepted for single-source
        dataflows.  ``None`` keeps the sources' declared constant rates.
        ``placement="incremental"`` gives the tenant the rescale-aware
        placer: grows keep the current fleet and provision only the delta,
        and consolidations re-use partially-free shared VMs (zero new
        provisioning) whenever the shared fleet can absorb the survivors.
        """
        if placement not in ("full-replace", "incremental"):
            raise ValueError(f"unknown placement policy {placement!r}")
        if self._deployed:
            raise RuntimeError("tenants must be added before deploy()")
        if name in self.tenants:
            raise ValueError(f"tenant {name!r} is already registered")
        rate_profile: Optional[RateProfile]
        sources = dataflow.sources
        if isinstance(profile, str):
            for source in sources:
                if source.profile is None:
                    source.profile = profile_by_name(
                        profile, base_rate=float(source.rate), duration_s=profile_duration_s
                    )
            rate_profile = profile_by_name(
                profile,
                base_rate=sum(float(s.rate) for s in sources),
                duration_s=profile_duration_s,
            )
        elif profile is not None:
            if len(sources) > 1:
                raise ValueError(
                    "a RateProfile instance is ambiguous for a multi-source dataflow; "
                    "attach per-source profiles to the SourceTasks instead"
                )
            sources[0].profile = profile
            rate_profile = profile
        else:
            rate_profile = None
        tenant = Tenant(
            name=name,
            dataflow=dataflow,
            strategy=strategy,
            priority=priority,
            weight=weight,
            profile=rate_profile,
            config=config,
            controller_config=controller_config,
            instance_capacity_ev_s=instance_capacity_ev_s,
            task_capacities_ev_s=dict(task_capacities_ev_s or {}) or None,
            elastic_parallelism=elastic_parallelism,
            placement=placement,
        )
        self.tenants[name] = tenant
        return tenant

    def tenant(self, name: str) -> Tenant:
        """Return a registered tenant by name."""
        return self.tenants[name]

    # ------------------------------------------------------------- deployment
    def _excluded_vms_for(self, tenant_name: str) -> Callable[[], Set[str]]:
        """Dynamic VM exclusions for one tenant's scheduler.

        Every util VM (its own is reached through pinning only) plus whatever
        the arbiter currently lists as retiring.
        """

        def _excluded() -> Set[str]:
            excluded = {
                vm.vm_id for vm in self.cluster.vms if not is_worker_vm(vm)
            }
            excluded |= self.arbiter.retiring_vms
            return excluded

        return _excluded

    def deploy(self) -> None:
        """Provision the shared fleet and deploy every tenant onto it."""
        if self._deployed:
            raise RuntimeError("ClusterManager is already deployed")
        if not self.tenants:
            raise RuntimeError("no tenants registered")
        total_slots = sum(t.dataflow.total_instances() for t in self.tenants.values())
        # The fleet is built from whole D2 VMs, so the budget must admit the
        # *provisioned* slot count, not just the instance total -- an odd
        # total rounds up to one extra slot that would otherwise breach the
        # arbiter invariant at t=0 and wedge every future proposal.
        initial_count = int(math.ceil(total_slots / D2.slots))
        initial_slots = initial_count * D2.slots
        if initial_slots > self.arbiter.budget_slots:
            raise ValueError(
                f"tenants need {total_slots} worker slots ({initial_count} D2 VMs = "
                f"{initial_slots} provisioned slots) but the fleet budget is "
                f"{self.arbiter.budget_slots}"
            )

        # One dedicated util VM per tenant (sources/sinks never migrate).
        for name, tenant in self.tenants.items():
            util_vm = self.provider.provision(D3, 1, name_prefix=f"util-{name}")[0]
            util_vm.tags["role"] = f"util:{name}"
            util_vm.tags["tenant"] = name
            self.cluster.add_vm(util_vm)
            tenant.util_vm_id = util_vm.vm_id

        # The shared worker fleet: sized for the *sum* of the tenants' slots,
        # so co-location saves the per-tenant round-up a private fleet pays.
        for vm in self.provider.provision(D2, initial_count, name_prefix="shared-d2"):
            vm.tags["tenant"] = "shared"
            self.cluster.add_vm(vm)
            self.initial_vm_ids.append(vm.vm_id)

        for name, tenant in self.tenants.items():
            strategy_cls = strategy_by_name(tenant.strategy)
            config = tenant.config
            if config is None:
                config = strategy_cls.runtime_config(
                    seed=_tenant_seed(self.seed, name, tenant.dataflow.name)
                )
            config.util_vm_role = f"util:{name}"
            tenant.config = config
            runtime = TopologyRuntime(
                tenant.dataflow,
                self.cluster,
                sim=self.sim,
                config=config,
                scheduler=SharedFleetScheduler(self._excluded_vms_for(name)),
            )
            runtime.deploy()
            tenant.runtime = runtime
            tenant.monitor = ElasticityMonitor(
                runtime,
                interval_s=(tenant.controller_config or ControllerConfig()).check_interval_s,
            )
            tenant.planner = AllocationPlanner(
                tenant.dataflow,
                instance_capacity_ev_s=tenant.instance_capacity_ev_s,
                task_capacities_ev_s=tenant.task_capacities_ev_s,
                elastic_parallelism=tenant.elastic_parallelism,
            )
            placement_policy = None
            if tenant.placement == "incremental":
                # Shared-fleet incremental placer: consolidations re-use
                # partially-free shared VMs, and the dynamic exclusion set
                # (every util VM, every retiring VM) is honoured exactly as
                # the tenant's scheduler honours it.
                placement_policy = IncrementalPlacement(
                    reuse_free_slots=True,
                    excluded_vms_fn=self._excluded_vms_for(name),
                )
            tenant.controller = TenantController(
                name,
                self.arbiter,
                runtime,
                self.provider,
                tenant.monitor,
                tenant.planner,
                strategy_cls,
                config=tenant.controller_config,
                initial_tier="baseline",
                placement=placement_policy,
            )
            self.arbiter.register_tenant(
                name,
                priority=tenant.priority,
                weight=tenant.weight,
                holdings_fn=(lambda rt=runtime: len(rt.user_executors)),
            )
        self._deployed = True

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start every tenant (sources emit, controllers watch) and the sampler."""
        if not self._deployed:
            raise RuntimeError("deploy() must be called before start()")
        for tenant in self.tenants.values():
            tenant.runtime.start()
            tenant.controller.start()
        if self._sampler_timer is None:
            self._sampler_timer = self.sim.every(self.fleet_sample_interval_s, self.sample_fleet)

    def run(self, until: float) -> None:
        """Advance the shared simulation."""
        self.sim.run(until=until)

    def stop(self) -> None:
        """Stop controllers, sources and the fleet sampler."""
        for tenant in self.tenants.values():
            if tenant.controller is not None:
                tenant.controller.stop()
            if tenant.runtime is not None:
                tenant.runtime.stop_sources()
        if self._sampler_timer is not None:
            self._sampler_timer.cancel()
            self._sampler_timer = None

    # -------------------------------------------------------------- inspection
    def sample_fleet(self) -> FleetSample:
        """Record one fleet-level occupancy sample."""
        worker_vms = [vm for vm in self.cluster.vms if is_worker_vm(vm)]
        sample = FleetSample(
            time=self.sim.now,
            worker_slots=sum(len(vm.slots) for vm in worker_vms),
            occupied_slots=sum(len(vm.occupied_slots) for vm in worker_vms),
            committed_slots=self.arbiter.committed_slots(),
        )
        self.arbiter.observe_committed()
        self.fleet_samples.append(sample)
        return sample

    def mean_utilization(self) -> float:
        """Mean worker-slot utilization across the recorded fleet samples."""
        if not self.fleet_samples:
            return 0.0
        return sum(s.utilization for s in self.fleet_samples) / len(self.fleet_samples)

    def total_cost(self) -> float:
        """Total accrued cloud cost (workers and util VMs) right now."""
        return self.provider.total_cost()
