"""Per-tenant elastic controller: proposes to the arbiter instead of acting.

A :class:`TenantController` is an
:class:`~repro.elastic.controller.ElasticityController` whose capacity
acquisition is routed through the cluster's
:class:`~repro.multi.arbiter.ScaleArbiter`:

* before provisioning, the confirmed decision is *proposed*; a deferral
  leaves the controller's pending state intact, so it simply re-proposes on
  the next control tick until the arbiter lets it through (or the demand
  goes back in band, which withdraws the proposal);
* on grant, the VMs are provisioned into the shared cluster, tagged with the
  tenant id, and the arbiter's reservation is converted to physical
  accounting immediately -- the budget can never be double-claimed;
* when the migration request is issued, the VMs it will vacate are published
  as *retiring* so no other tenant is scheduled onto them;
* on completion, vacated VMs are deprovisioned **only if genuinely empty**
  (a co-located tenant's executors keep a shared VM alive and billed) and
  the arbiter releases the migration token.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Type

from repro.cluster.cloud import CloudProvider
from repro.cluster.vm import VM_TYPES, VirtualMachine
from repro.core.strategy import MigrationStrategy
from repro.elastic.controller import (
    ControllerConfig,
    ElasticityController,
    EvacuationRecord,
    RecoveryRecord,
    ScalingAction,
)
from repro.elastic.forecast import ForecastPolicy
from repro.elastic.monitor import ElasticityMonitor
from repro.elastic.planner import AllocationPlanner, TargetAllocation
from repro.elastic.policy import PlacementPolicy
from repro.engine.runtime import TopologyRuntime
from repro.multi.arbiter import ScaleArbiter


@dataclass(frozen=True)
class Deferral:
    """One control tick on which the arbiter held this tenant back."""

    time: float
    direction: str
    slots_requested: int
    reason: str


def slots_of(target: TargetAllocation) -> int:
    """VM slots a target allocation's full fleet would provision."""
    return sum(VM_TYPES[name].slots * count for name, count in target.vm_counts.items())


class TenantController(ElasticityController):
    """Elasticity controller that must win arbitration before scaling."""

    def __init__(
        self,
        tenant_id: str,
        arbiter: ScaleArbiter,
        runtime: TopologyRuntime,
        provider: CloudProvider,
        monitor: ElasticityMonitor,
        planner: AllocationPlanner,
        strategy_cls: Type[MigrationStrategy],
        config: Optional[ControllerConfig] = None,
        initial_tier: str = "baseline",
        placement: Optional[PlacementPolicy] = None,
        forecast_policy: Optional[ForecastPolicy] = None,
    ) -> None:
        super().__init__(
            runtime, provider, monitor, planner, strategy_cls,
            config=config, initial_tier=initial_tier,
            placement=placement, forecast_policy=forecast_policy,
        )
        self.tenant_id = tenant_id
        self.arbiter = arbiter
        self.deferrals: List[Deferral] = []

    # ------------------------------------------------------------ arbitration
    def _tick(self) -> None:
        had_pending = self._pending_tier is not None
        super()._tick()
        if had_pending and self._pending_tier is None and not self._migration_in_flight:
            # The demand went back in band before the arbiter let us through:
            # stop claiming a place in the waiting registry.
            self.arbiter.withdraw(self.tenant_id)

    def _acquire_capacity(self, action: ScalingAction) -> bool:
        # Propose exactly what will be provisioned: the full target fleet
        # under full-replace placement, only the delta under incremental
        # (a consolidation re-using free shared slots proposes zero).
        slots = action.provision_slots
        decision = self.arbiter.propose(
            self.tenant_id, action.direction, slots, now=self.runtime.sim.now
        )
        if not decision.granted:
            self.deferrals.append(
                Deferral(
                    time=self.runtime.sim.now,
                    direction=action.direction,
                    slots_requested=slots,
                    reason=decision.reason,
                )
            )
            return False
        granted = super()._acquire_capacity(action)
        for vm_id in action.provisioned_vm_ids:
            self.runtime.cluster.vm(vm_id).tags["tenant"] = self.tenant_id
        self.arbiter.notify_provisioned(self.tenant_id, action.provisioned_vm_ids)
        return granted

    def _migration_starting(self, action: ScalingAction, old_vm_ids: List[str]) -> None:
        self.arbiter.notify_migration_started(self.tenant_id, old_vm_ids)

    def _release_capacity(self, action: ScalingAction, old_vm_ids: List[str]) -> None:
        super()._release_capacity(action, old_vm_ids)
        self.arbiter.notify_complete(self.tenant_id)

    # ------------------------------------------------------- faults & chaos
    def _action_aborted(self, action: ScalingAction) -> None:
        # Every delta VM of a granted action died during provisioning: the
        # grant must go back to the budget or its migration token would
        # starve every other tenant forever.
        self.arbiter.notify_aborted(self.tenant_id, now=self.runtime.sim.now)

    def _delta_replaced(self, action: ScalingAction, vms: List[VirtualMachine]) -> None:
        for vm in vms:
            vm.tags["tenant"] = self.tenant_id
        self.arbiter.notify_provisioned(self.tenant_id, [vm.vm_id for vm in vms])

    def _replacement_provisioned(self, record: RecoveryRecord, vm: VirtualMachine) -> None:
        vm.tags["tenant"] = self.tenant_id

    def _evacuation_capacity_ready(self, record: EvacuationRecord, vm: VirtualMachine) -> None:
        vm.tags["tenant"] = self.tenant_id

    def _vm_eligible(self, vm: VirtualMachine) -> bool:
        # Never rebuild onto another tenant's VM, one an in-flight migration
        # is about to vacate, or one the cloud is about to reclaim.
        if vm.vm_id in self.arbiter.retiring_vms or vm.vm_id in self.arbiter.doomed_vms:
            return False
        return vm.tags.get("tenant") in (None, self.tenant_id)

    def _evacuation_starting(self, record: EvacuationRecord) -> None:
        self.arbiter.mark_doomed({record.vm_id})

    def _evacuation_finished(self, record: EvacuationRecord) -> None:
        self.arbiter.clear_doomed({record.vm_id})
