"""Multi-tenant clusters: many dataflows sharing one arbitrated fleet.

The paper evaluates one dataflow migrating on a private VM set; its
motivating use case -- cloud operators hosting streaming pipelines for
millions of users -- means many dataflows on one fleet.  This package adds
that layer on top of everything below it:

* :class:`~repro.multi.manager.ClusterManager` -- owns one shared
  :class:`~repro.cluster.cloud.CloudProvider`/cluster and hosts N tenants,
  bin-packed onto a common worker fleet;
* :class:`~repro.multi.arbiter.ScaleArbiter` -- arbitrates every tenant's
  scale/rescale/migrate proposals under a cluster-wide slot budget with
  priority tiers, a proportional-share fallback, migration serialization
  and retiring-VM publication;
* :class:`~repro.multi.tenant.TenantController` -- the per-tenant elastic
  controller that *proposes instead of acting*.
"""

from repro.multi.arbiter import (
    ArbiterDecision,
    ProposalRecord,
    ScaleArbiter,
    is_worker_vm,
)
from repro.multi.manager import ClusterManager, FleetSample, Tenant
from repro.multi.tenant import Deferral, TenantController, slots_of

__all__ = [
    "ArbiterDecision",
    "ClusterManager",
    "Deferral",
    "FleetSample",
    "ProposalRecord",
    "ScaleArbiter",
    "Tenant",
    "TenantController",
    "is_worker_vm",
    "slots_of",
]
