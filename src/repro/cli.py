"""Command-line interface for running reproduction experiments.

Usage (after ``pip install -e .`` / ``python setup.py develop``)::

    python -m repro describe grid
    python -m repro experiment --dag grid --strategy ccr --scaling in
    python -m repro elastic --dag traffic --strategy ccr --profile surge
    python -m repro rescale --dag grid --strategy ccr --surge 2.0
    python -m repro predict --dag grid --profile surge --slo 30
    python -m repro multi --dags traffic,grid --strategy ccr
    python -m repro shard --dag grid --shards 4 --workers 2
    python -m repro chaos --dag grid-keyed --strategy dsm --storms 3
    python -m repro trace elastic --dag grid
    python -m repro figure table1
    python -m repro figure fig5 --scaling out --jobs 4
    python -m repro figure drain
    python -m repro figure statestore

``experiment`` runs a single migration experiment and prints the §4 metrics;
``elastic`` runs a closed-loop autoscaling experiment (profile-driven sources,
monitor, planner and controller) and prints the scaling timeline plus the
cloud bill; ``rescale`` rides one surge twice -- once with capacity-adding
parallelism rescale, once with the paper's placement-only scaling -- and
prints the side-by-side latency/backlog comparison; ``predict`` rides one
dynamism scenario once per forecast policy (reactive / EWMA / Holt-Winters /
profile lookahead) and prints the SLO-violation / provisioning-lead-time /
cost comparison; ``multi`` hosts several dataflows as tenants of one shared,
budget-arbitrated fleet (offset surges) and compares every tenant against
its private-fleet baseline; ``chaos`` fires a deterministic spot-eviction
storm at the fleet and compares notice-aware draining against oblivious
unplanned recovery on restore latency, replays and the bill; ``trace`` runs
one scenario with full telemetry and exports its control-plane trace
(schema-versioned JSONL plus a Perfetto-loadable Chrome trace; the same
export rides ``--trace`` on elastic/predict/chaos/multi/shard); ``figure``
regenerates one of the paper's
tables/figures (the same drivers the benchmark harness uses, ``--jobs N``
fans the experiment matrix out across processes) and prints the reproduced
rows next to the paper's published values.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.dataflow import topologies
from repro.elastic import ControllerConfig
from repro.elastic.forecast import FORECAST_POLICIES
from repro.experiments.predictive import DEFAULT_POLICIES
from repro.experiments import (
    run_chaos_experiment,
    run_elastic_experiment,
    run_migration_experiment,
    run_multi_experiment,
    run_predictive_experiment,
    run_rescale_experiment,
    run_sharded_elastic_experiment,
    run_sharded_experiment,
)
from repro.experiments.chaos import DEFAULT_MODES
from repro.experiments.figures import (
    ExperimentMatrix,
    drain_time_rows,
    figure5_rows,
    figure6_rows,
    figure7_series,
    figure8_rows,
    figure9_series,
    rebalance_duration_summary,
    statestore_micro,
    table1_rows,
)
from repro.experiments.formatting import (
    format_latency_series,
    format_rate_series,
    format_table,
)
from repro.workloads.profiles import PROFILE_PRESETS


def _cmd_describe(args: argparse.Namespace) -> int:
    dataflow = topologies.by_name(args.dag)
    print(dataflow.describe())
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = run_migration_experiment(
        dag=args.dag,
        strategy=args.strategy,
        scaling=args.scaling,
        migrate_at_s=args.migrate_at,
        post_migration_s=args.duration,
        seed=args.seed,
    )
    print(format_table([result.metrics.as_dict()], title="Migration metrics (§4)"))
    report = result.report
    print()
    print("Protocol phases (seconds after the migration request):")
    for field in ("sources_paused_at", "prepare_completed_at", "commit_completed_at",
                  "rebalance_started_at", "rebalance_command_completed_at",
                  "init_completed_at", "sources_unpaused_at", "completed_at"):
        value = getattr(report, field)
        if value is not None:
            print(f"  {field:32s} {value - report.requested_at:8.2f}")
    print()
    print(format_table([result.log.summary()], title="Run summary"))
    return 0


def _trace_path(base: str, label: str = "") -> str:
    """Derive a per-label trace path: ``TRACE_x.jsonl`` -> ``TRACE_x.<label>.jsonl``."""
    if not label:
        return base
    stem, dot, ext = base.rpartition(".")
    if not dot:
        return f"{base}.{label}"
    return f"{stem}.{label}.{ext}"


def _export_trace(telemetry, out: str, label: str = "") -> None:
    """Write one telemetry object as JSONL + Chrome trace and print its digest."""
    from repro.obs import summarize, write_chrome_trace, write_trace_jsonl

    path = _trace_path(out, label)
    jsonl = write_trace_jsonl(telemetry, path)
    chrome_name = str(jsonl)
    if chrome_name.endswith(".jsonl"):
        chrome_name = chrome_name[: -len(".jsonl")] + ".chrome.json"
    else:
        chrome_name += ".chrome.json"
    chrome = write_chrome_trace(telemetry, chrome_name)
    print()
    if label:
        print(f"--- trace: {label} ---")
    print(summarize(telemetry))
    print(f"[trace written to {jsonl}; load {chrome} at ui.perfetto.dev]")


def _multi_telemetry(result, duration_s: float):
    """Synthesize a multi-tenant trace from the run's typed records.

    Tenant simulations run inside the cluster manager, so there is no live
    tracer; migrations and arbitration verdicts are reconstructed from the
    per-tenant ScalingActions and the arbiter's audit log.
    """
    from repro.obs import Telemetry

    shared = result.shared
    telemetry = Telemetry()
    telemetry.meta.update(
        scenario="multi",
        duration_s=duration_s,
        budget_slots=shared.budget_slots,
        tenants=sorted(shared.tenants),
    )
    for name in sorted(shared.tenants):
        telemetry.record_actions(shared.tenants[name].actions, now=duration_s, tenant=name)
    telemetry.record_arbiter(shared.manager.arbiter)
    return telemetry


def _shard_telemetry(result, dag: str, strategy: str, shards: int, elastic: bool):
    """Synthesize a sharded-run trace from per-shard summaries + planned actions."""
    from repro.obs import Telemetry

    telemetry = Telemetry()
    telemetry.meta.update(
        scenario="shard",
        dag=dag,
        strategy=strategy,
        shards=shards,
        workers=result.workers,
        digest=result.digest,
    )
    for res in result.results:
        for key in ("source_emits", "sink_receipts", "distinct_roots_received"):
            telemetry.registry.counter("shard", key, shard=str(res.index)).set_total(
                int(res.summary.get(key, 0))
            )
    if elastic:
        for action in result.actions:
            telemetry.tracer.emit(
                f"plan.{action.direction}",
                "plan",
                action.decided_at,
                action.decided_at,
                direction=action.direction,
                from_tier=action.from_tier,
                to_tier=action.to_tier,
                observed_rate_ev_s=action.observed_rate,
                vm_counts={name: count for name, count in action.vm_counts},
            )
    return telemetry


def _cmd_elastic(args: argparse.Namespace) -> int:
    if args.duration <= 0:
        print("repro elastic: error: --duration must be positive", file=sys.stderr)
        return 2
    try:
        controller_config = ControllerConfig(
            check_interval_s=args.check_interval,
            confirm_samples=args.confirm_samples,
            cooldown_s=args.cooldown,
        )
    except ValueError as exc:
        print(f"repro elastic: error: {exc}", file=sys.stderr)
        return 2
    result = run_elastic_experiment(
        dag=args.dag,
        strategy=args.strategy,
        profile=args.profile,
        duration_s=args.duration,
        seed=args.seed,
        controller_config=controller_config,
        telemetry=bool(args.trace),
    )

    print(f"Elastic run: {args.dag} / {args.strategy} / profile={args.profile} "
          f"({args.duration:.0f}s simulated)")
    print()
    if result.actions:
        rows = []
        for action in result.actions:
            report = action.report
            rows.append({
                "decided_at_s": round(action.decided_at, 1),
                "direction": f"scale-{action.direction}",
                "tier": f"{action.from_tier}->{action.to_tier}",
                "observed_ev_s": round(action.observed_rate, 1),
                "allocation": " ".join(
                    f"{c}x{n}" for n, c in sorted(action.target.vm_counts.items())
                ),
                "protocol_s": (
                    round(report.protocol_duration_s, 1)
                    if report is not None and report.protocol_duration_s is not None
                    else "-"
                ),
                "vms_released": len(action.deprovisioned_vm_ids),
            })
        print(format_table(rows, title="Scaling actions"))
        if result.controller.migration_in_flight:
            print("(last migration still in flight when the run ended -- an "
                  "overloaded dataflow drains/captures slowly; see the queue column)")
    else:
        print("Scaling actions: none (rate never left the current tier's band)")
    print()

    sample_rows = []
    stride = max(1, len(result.samples) // 12)
    for sample in result.samples[::stride]:
        sample_rows.append({
            "t_s": round(sample.time, 1),
            "in_ev_s": round(sample.input_rate, 1),
            "out_ev_s": round(sample.output_rate, 1),
            "latency_ms": (
                round(sample.avg_latency_s * 1000, 1)
                if sample.avg_latency_s is not None else "-"
            ),
            "queued": sample.queue_backlog,
            "backlog": sample.source_backlog,
        })
    if sample_rows:
        print(format_table(sample_rows, title="Monitor timeline (subsampled)"))
        print()

    print("Billing (relative pay-as-you-go units, per-minute granularity)")
    for record in result.provider.billing_records:
        status = "released" if record.deprovisioned_at is not None else "running"
        print(f"  {record.vm_id:12s} {record.vm_type:3s} {status:9s} "
              f"cost {record.cost(result.runtime.sim.now):8.4f}")
    print(f"  total: {result.total_cost:.4f}")
    if args.trace:
        _export_trace(result.telemetry, args.trace)
    return 0


def _cmd_rescale(args: argparse.Namespace) -> int:
    if args.duration <= 0:
        print("repro rescale: error: --duration must be positive", file=sys.stderr)
        return 2
    if args.surge <= 1.0:
        print("repro rescale: error: --surge must be > 1", file=sys.stderr)
        return 2
    result = run_rescale_experiment(
        dag=args.dag,
        strategy=args.strategy,
        surge_multiplier=args.surge,
        duration_s=args.duration,
        seed=args.seed,
    )

    print(f"Rescale comparison: {args.dag} / {args.strategy}, "
          f"{args.surge:g}x surge over [{result.surge_start_s:.0f}s, {result.surge_end_s:.0f}s] "
          f"of a {args.duration:.0f}s run")
    print()
    print(format_table(
        [result.capacity.as_dict(), result.placement.as_dict()],
        title="Capacity-adding rescale vs placement-only scaling "
              "(measured from surge start to end of run)",
    ))
    print()
    for summary in (result.capacity, result.placement):
        for action in summary.result.actions:
            rescale = action.target.rescale
            changed = (
                f"rescaled {len(rescale.targets)} tasks -> "
                f"{sum(rescale.targets.values())} target instances"
                if rescale is not None else "placement only (parallelism fixed)"
            )
            print(f"  {summary.mode:9s} scale-{action.direction} at t={action.decided_at:7.1f}s "
                  f"({action.from_tier}->{action.to_tier}): {changed}")
    print()
    if result.capacity_wins:
        print(f"Capacity-adding rescale wins: {result.latency_improvement:.2f}x lower mean "
              f"sink latency, and {result.placement.final_backlog - result.capacity.final_backlog} "
              f"fewer backlogged events left at the end of the run than placement-only scaling.")
    else:
        print("Placement-only scaling was not beaten on this configuration "
              "(try a stronger --surge or a longer --duration).")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    if args.duration <= 0:
        print("repro predict: error: --duration must be positive", file=sys.stderr)
        return 2
    if args.slo <= 0:
        print("repro predict: error: --slo must be positive", file=sys.stderr)
        return 2
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    unknown = [p for p in policies if p not in FORECAST_POLICIES]
    if unknown:
        print(f"repro predict: error: unknown forecast policy(s) {unknown}; choose from "
              f"{sorted(FORECAST_POLICIES)}", file=sys.stderr)
        return 2
    result = run_predictive_experiment(
        dag=args.dag,
        strategy=args.strategy,
        profile=args.profile,
        policies=policies,
        surge_multiplier=args.surge,
        duration_s=args.duration,
        seed=args.seed,
        slo_latency_s=args.slo,
        placement=args.placement,
        telemetry=bool(args.trace),
    )

    window = ""
    if result.surge_start_s is not None:
        window = (f", {args.surge:g}x surge over "
                  f"[{result.surge_start_s:.0f}s, {result.surge_end_s:.0f}s]")
    print(f"Predictive comparison: {args.dag} / {args.strategy} / profile={args.profile}"
          f"{window} of a {args.duration:.0f}s run, SLO {args.slo:g}s sink latency")
    print()
    print(format_table(
        [summary.as_dict() for summary in result.runs.values()],
        title="Forecast policies (lead_s > 0 = provisioned before the surge landed)",
    ))
    print()
    for summary in result.runs.values():
        for action in summary.result.actions:
            trigger = "SLO breach" if action.slo_escalated else "rate"
            print(f"  {summary.policy:13s} scale-{action.direction} at t={action.decided_at:7.1f}s "
                  f"({action.from_tier}->{action.to_tier}) trigger={trigger} "
                  f"forecast={action.forecast_rate:.1f} ev/s observed={action.observed_rate:.1f} ev/s")
    baseline = result.reactive
    best = result.best_predictive()
    if baseline is not None and best is not None:
        saved = result.violation_improvement_s(best.policy)
        print()
        if saved is not None and saved > 0:
            print(f"Best predictive policy ({best.policy}): {saved:.0f}s fewer SLO-violation "
                  f"seconds than reactive ({best.slo_violation_s:.0f}s vs "
                  f"{baseline.slo_violation_s:.0f}s).")
        else:
            print("No predictive policy beat the reactive baseline on this scenario "
                  "(try a longer horizon, a stronger surge, or the lookahead oracle).")
    if args.json:
        path = result.write_headline_json(args.json)
        print(f"\n[headline numbers written to {path}]")
    if args.trace:
        for policy, telemetry in result.telemetries.items():
            _export_trace(telemetry, args.trace, label=policy)
    return 0


def _cmd_multi(args: argparse.Namespace) -> int:
    if args.duration <= 0:
        print("repro multi: error: --duration must be positive", file=sys.stderr)
        return 2
    dags = [d.strip() for d in args.dags.split(",") if d.strip()]
    unknown = [d for d in dags if d not in topologies.ALL_TOPOLOGIES]
    if unknown:
        print(f"repro multi: error: unknown dataflow(s) {unknown}; choose from "
              f"{sorted(topologies.ALL_TOPOLOGIES)}", file=sys.stderr)
        return 2
    priorities = None
    if args.priorities:
        try:
            priorities = [int(p) for p in args.priorities.split(",")]
        except ValueError:
            print("repro multi: error: --priorities must be comma-separated integers",
                  file=sys.stderr)
            return 2
        if len(priorities) != len(dags):
            print(f"repro multi: error: --priorities needs {len(dags)} entries",
                  file=sys.stderr)
            return 2
    result = run_multi_experiment(
        dags=dags,
        strategy=args.strategy,
        duration_s=args.duration,
        surge_multiplier=args.surge,
        seed=args.seed,
        budget_slots=args.budget,
        priorities=priorities,
        elastic_parallelism=not args.placement_only,
        include_private_baseline=not args.no_baseline,
        placement=args.placement,
    )
    shared = result.shared

    print(f"Multi-tenant run: {len(dags)} dataflows / {args.strategy} on one shared fleet "
          f"({args.duration:.0f}s simulated, {args.surge:g}x offset surges, "
          f"budget {shared.budget_slots} worker slots)")
    print()
    rows = []
    for name, summary in shared.tenants.items():
        row = summary.as_dict()
        start, end = result.surge_windows[name]
        row["surge"] = f"{start:.0f}-{end:.0f}s"
        ratio = result.latency_ratio(name)
        row["vs_private"] = f"{ratio:.2f}x" if ratio is not None else "-"
        rows.append(row)
    print(format_table(rows, title="Tenants (latency vs. each tenant alone on a private fleet)"))
    print()

    print("Arbitration:")
    for record in shared.manager.arbiter.log:
        verdict = "granted " if record.granted else f"deferred ({record.reason})"
        print(f"  t={record.time:7.1f}s {record.tenant_id:14s} scale-{record.direction:3s} "
              f"{record.slots_requested:3d} slots  {verdict}")
    print(f"  peak committed slots: {shared.max_committed_slots} / {shared.budget_slots} budget; "
          f"max concurrent migrations: {shared.max_concurrent_migrations()}")
    print()

    print("Fleet (shared vs. sum of private fleets):")
    print(f"  mean worker slots   {shared.mean_worker_slots:8.1f}"
          + (f"  vs {result.private_mean_worker_slots:8.1f} private" if result.private else ""))
    util = f"  mean utilization    {shared.mean_utilization:8.1%}"
    if result.private and result.private_mean_utilization is not None:
        util += f"  vs {result.private_mean_utilization:8.1%} private"
    print(util)
    print(f"  total cost          {shared.total_cost:8.4f}"
          + (f"  vs {result.private_total_cost:8.4f} private" if result.private else ""))
    if args.audit_json:
        arbiter = shared.manager.arbiter
        payload = {
            "schema": "repro-audit/1",
            "budget_slots": arbiter.budget_slots,
            "max_committed_slots": arbiter.max_committed_slots,
            "records": [record.as_dict() for record in arbiter.log],
            "aborts": [record.as_dict() for record in arbiter.aborts],
        }
        path = Path(args.audit_json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"\n[arbitration audit written to {path}]")
    if args.trace:
        _export_trace(_multi_telemetry(result, args.duration), args.trace)
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    if args.shards < 1:
        print("repro shard: error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.elastic:
        result = run_sharded_elastic_experiment(
            dag=args.dag,
            shards=args.shards,
            workers=args.workers,
            duration_s=args.duration,
            seed=args.seed,
            strategy=args.strategy,
            profile=args.profile,
            batch_stepping=not args.classic,
        )
        print(f"Sharded elastic run: {args.dag} / {args.strategy} / {args.profile} / "
              f"{args.shards} shards x {args.duration:.0f}s on {result.workers} worker(s)")
    else:
        result = run_sharded_experiment(
            dag=args.dag,
            shards=args.shards,
            workers=args.workers,
            duration_s=args.duration,
            seed=args.seed,
            strategy=args.strategy,
            batch_stepping=not args.classic,
        )
        print(f"Sharded run: {args.dag} / {args.strategy} / {args.shards} shards "
              f"x {args.duration:.0f}s on {result.workers} worker(s)")
    print()
    rows = [
        {
            "shard": res.index,
            "emits": int(res.summary.get("source_emits", 0)),
            "receipts": int(res.summary.get("sink_receipts", 0)),
            "roots_received": int(res.summary.get("distinct_roots_received", 0)),
        }
        for res in result.results
    ]
    print(format_table(rows, title="Per-shard summaries"))
    print()
    print(format_table([result.log.summary()], title="Merged log (worker-count invariant)"))
    if args.elastic:
        print()
        if result.actions:
            action_rows = [
                {
                    "decided_at": f"{action.decided_at:.1f}",
                    "direction": action.direction,
                    "tier": f"{action.from_tier} -> {action.to_tier}",
                    "observed_ev_s": f"{action.observed_rate:.2f}",
                    "vms": ", ".join(f"{name} x{count}" for name, count in action.vm_counts),
                }
                for action in result.actions
            ]
            print(format_table(
                action_rows, title="Planned scaling actions (centralized controller tick)"
            ))
        else:
            print("Planned scaling actions: none (offered rate stayed in band)")
    print(f"\nmerged log digest: {result.digest}")
    if args.trace:
        _export_trace(
            _shard_telemetry(result, args.dag, args.strategy, args.shards, args.elastic),
            args.trace,
        )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.duration <= 0:
        print("repro chaos: error: --duration must be positive", file=sys.stderr)
        return 2
    if args.storms < 1:
        print("repro chaos: error: --storms must be >= 1", file=sys.stderr)
        return 2
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    unknown = [m for m in modes if m not in DEFAULT_MODES]
    if unknown:
        print(f"repro chaos: error: unknown recovery mode(s) {unknown}; choose from "
              f"{list(DEFAULT_MODES)}", file=sys.stderr)
        return 2
    result = run_chaos_experiment(
        dag=args.dag,
        strategy=args.strategy,
        modes=modes,
        duration_s=args.duration,
        seed=args.seed,
        storm_count=args.storms,
        storm_start_s=args.storm_start,
        storm_spacing_s=args.storm_spacing,
        notice_s=args.notice,
        telemetry=bool(args.trace),
    )

    print(f"Chaos run: {args.dag} / {args.strategy} / {args.storms} spot evictions "
          f"({args.notice:g}s notice) over a {args.duration:.0f}s run")
    print()
    print(format_table(
        [summary.as_dict() for summary in result.runs.values()],
        title="Recovery modes (restore_s = unavailability after each reclaim)",
    ))
    print()
    for summary in result.runs.values():
        run = summary.result
        for fault in run.injector.records:
            when = f"t={fault.fired_at:7.1f}s" if fault.fired_at is not None else "unfired"
            print(f"  {summary.mode:10s} {when} {fault.event.kind:6s} "
                  f"{fault.vm_id or '-':10s} -> {fault.outcome}")
    notice, oblivious = result.notice, result.oblivious
    if notice is not None and oblivious is not None:
        print()
        if (notice.mean_restore_s <= oblivious.mean_restore_s
                and notice.total_cost <= oblivious.total_cost):
            print(f"Notice-aware recovery wins on both axes: "
                  f"{notice.mean_restore_s:.1f}s vs {oblivious.mean_restore_s:.1f}s restore, "
                  f"${notice.total_cost:.4f} vs ${oblivious.total_cost:.4f} bill.")
        else:
            print("The notice window did not pay for itself on this storm "
                  "(try a longer notice, a milder storm, or a faster strategy).")
    if args.json:
        path = result.write_headline_json(args.json)
        print(f"\n[headline numbers written to {path}]")
    if args.trace:
        for mode, summary in result.runs.items():
            if summary.result.telemetry is not None:
                _export_trace(summary.result.telemetry, args.trace, label=mode)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one scenario with full telemetry and export its trace."""
    scenario = args.scenario
    out = args.out or f"results/TRACE_{scenario}.jsonl"
    duration = args.duration if args.duration is not None else (
        120.0 if scenario == "shard" else 600.0
    )
    if duration <= 0:
        print("repro trace: error: --duration must be positive", file=sys.stderr)
        return 2
    if scenario == "elastic":
        result = run_elastic_experiment(
            dag=args.dag or "grid",
            strategy=args.strategy or "ccr",
            profile=args.profile,
            duration_s=duration,
            seed=args.seed,
            telemetry=True,
        )
        _export_trace(result.telemetry, out)
    elif scenario == "predict":
        result = run_predictive_experiment(
            dag=args.dag or "grid",
            strategy=args.strategy or "ccr",
            profile=args.profile,
            surge_multiplier=args.surge,
            duration_s=duration,
            seed=args.seed,
            telemetry=True,
        )
        for policy, telemetry in result.telemetries.items():
            _export_trace(telemetry, out, label=policy)
    elif scenario == "chaos":
        result = run_chaos_experiment(
            dag=args.dag or "grid-keyed",
            strategy=args.strategy or "dsm",
            duration_s=duration,
            seed=args.seed,
            telemetry=True,
        )
        for mode, summary in result.runs.items():
            if summary.result.telemetry is not None:
                _export_trace(summary.result.telemetry, out, label=mode)
    elif scenario == "multi":
        dags = [d.strip() for d in (args.dag or "traffic,grid").split(",") if d.strip()]
        result = run_multi_experiment(
            dags=dags,
            strategy=args.strategy or "ccr",
            duration_s=duration,
            surge_multiplier=args.surge,
            seed=args.seed,
            include_private_baseline=False,
        )
        _export_trace(_multi_telemetry(result, duration), out)
    else:  # shard
        shards = 4
        result = run_sharded_elastic_experiment(
            dag=args.dag or "grid",
            shards=shards,
            duration_s=duration,
            seed=args.seed,
            strategy=args.strategy or "dcr",
            profile=args.profile,
        )
        _export_trace(
            _shard_telemetry(result, args.dag or "grid", args.strategy or "dcr",
                             shards, elastic=True),
            out,
        )
    return 0


def _matrix(args: argparse.Namespace) -> ExperimentMatrix:
    return ExperimentMatrix(
        migrate_at_s=args.migrate_at,
        post_migration_s=args.duration,
        seed=args.seed,
        dags=args.dags.split(",") if args.dags else topologies.PAPER_ORDER,
    )


def _cmd_figure(args: argparse.Namespace) -> int:
    name = args.name
    if name == "table1":
        print(format_table(table1_rows(), title="Table 1 (reproduced vs paper)"))
        return 0
    if name == "statestore":
        print(format_table([statestore_micro()], title="State-store micro-benchmark"))
        return 0
    if name == "drain":
        rows = drain_time_rows(seed=args.seed)
        print(format_table(rows, title="Drain (DCR) vs capture (CCR) durations in ms"))
        return 0

    matrix = _matrix(args)
    if args.jobs != 1:
        # Fan the hermetic experiment matrix out across processes; only the
        # cells the requested figure reads are computed.
        scalings = ("in", "out") if name == "rebalance" else (args.scaling,)
        dags = [args.dag] if name in ("fig7", "fig9") else None
        strategies = ["dsm"] if name == "fig6" else None
        matrix.prefetch(scalings=scalings, processes=args.jobs or None,
                        dags=dags, strategies=strategies)
    if name == "fig5":
        print(format_table(figure5_rows(matrix, args.scaling), title=f"Fig. 5 scale-{args.scaling}"))
    elif name == "fig6":
        print(format_table(figure6_rows(matrix, args.scaling), title=f"Fig. 6 scale-{args.scaling}"))
    elif name == "fig7":
        series = figure7_series(matrix, dag=args.dag, scaling=args.scaling)
        for strategy, data in series.items():
            print(format_rate_series(f"{strategy} input", data["input"]))
            print(format_rate_series(f"{strategy} output", data["output"]))
    elif name == "fig8":
        print(format_table(figure8_rows(matrix, args.scaling), title=f"Fig. 8 scale-{args.scaling}"))
    elif name == "fig9":
        series = figure9_series(matrix, dag=args.dag, scaling=args.scaling)
        for strategy, data in series.items():
            print(format_latency_series(strategy, data["latency"]))
    elif name == "rebalance":
        print(format_table([rebalance_duration_summary(matrix)], title="Rebalance duration summary"))
    else:  # pragma: no cover - argparse restricts choices
        print(f"unknown figure {name!r}", file=sys.stderr)
        return 2
    return 0


def _add_trace_flag(sub_parser: argparse.ArgumentParser, name: str) -> None:
    sub_parser.add_argument(
        "--trace", nargs="?", const=f"results/TRACE_{name}.jsonl", default=None,
        metavar="PATH",
        help="run with full telemetry and write the control-plane trace to PATH "
             f"(default: results/TRACE_{name}.jsonl) plus a Perfetto-loadable "
             ".chrome.json next to it",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    describe = sub.add_parser("describe", help="print the structure of a paper dataflow")
    describe.add_argument("dag", choices=sorted(topologies.PAPER_TOPOLOGIES))
    describe.set_defaults(func=_cmd_describe)

    experiment = sub.add_parser("experiment", help="run one migration experiment")
    experiment.add_argument("--dag", default="grid", choices=sorted(topologies.PAPER_TOPOLOGIES))
    experiment.add_argument("--strategy", default="ccr", choices=("dsm", "dcr", "ccr"))
    experiment.add_argument("--scaling", default="in", choices=("in", "out"))
    experiment.add_argument("--migrate-at", type=float, default=90.0, dest="migrate_at")
    experiment.add_argument("--duration", type=float, default=540.0,
                            help="post-migration observation window (seconds)")
    experiment.add_argument("--seed", type=int, default=2018)
    experiment.set_defaults(func=_cmd_experiment)

    elastic = sub.add_parser("elastic", help="run a closed-loop autoscaling experiment")
    elastic.add_argument("--dag", default="traffic", choices=sorted(topologies.ALL_TOPOLOGIES))
    elastic.add_argument("--strategy", default="ccr", choices=("dsm", "dcr", "ccr"))
    elastic.add_argument("--profile", default="surge", choices=sorted(PROFILE_PRESETS))
    elastic.add_argument("--duration", type=float, default=900.0,
                         help="total simulated run time (seconds)")
    elastic.add_argument("--check-interval", type=float, default=15.0, dest="check_interval",
                         help="controller sampling/decision interval (seconds)")
    elastic.add_argument("--confirm-samples", type=int, default=2, dest="confirm_samples",
                         help="consecutive agreeing samples required before scaling (hysteresis)")
    elastic.add_argument("--cooldown", type=float, default=60.0,
                         help="quiet period after a migration before the next one (seconds)")
    elastic.add_argument("--seed", type=int, default=2018)
    _add_trace_flag(elastic, "elastic")
    elastic.set_defaults(func=_cmd_elastic)

    rescale = sub.add_parser(
        "rescale",
        help="compare capacity-adding rescale vs placement-only scaling on one surge",
    )
    rescale.add_argument("--dag", default="grid", choices=sorted(topologies.ALL_TOPOLOGIES))
    rescale.add_argument("--strategy", default="ccr", choices=("dsm", "dcr", "ccr"))
    rescale.add_argument("--surge", type=float, default=2.0,
                         help="surge multiplier applied to the baseline source rate")
    rescale.add_argument("--duration", type=float, default=600.0,
                         help="total simulated run time (seconds); the surge spans 25%%-60%% of it")
    rescale.add_argument("--seed", type=int, default=2018)
    rescale.set_defaults(func=_cmd_rescale)

    predict = sub.add_parser(
        "predict",
        help="compare reactive vs predictive (forecast-driven) scaling policies",
    )
    predict.add_argument("--dag", default="grid", choices=sorted(topologies.ALL_TOPOLOGIES))
    predict.add_argument("--strategy", default="ccr", choices=("dsm", "dcr", "ccr"))
    predict.add_argument("--profile", default="surge",
                         choices=("surge", "step", "ramp", "diurnal", "burst"),
                         help="dynamism scenario (surge/step/ramp use --surge as the multiplier)")
    predict.add_argument("--policies", default=",".join(DEFAULT_POLICIES),
                         help="comma-separated forecast policies to compare")
    predict.add_argument("--surge", type=float, default=2.0,
                         help="surge multiplier applied to the baseline source rate")
    predict.add_argument("--duration", type=float, default=600.0,
                         help="total simulated run time (seconds)")
    predict.add_argument("--slo", type=float, default=30.0,
                         help="sink-latency SLO in seconds (scored and used as the overload trigger); "
                              "the default separates surge meltdown from ordinary migration transients")
    predict.add_argument("--placement", default="incremental",
                         choices=("full-replace", "incremental"),
                         help="place stage used by every run")
    predict.add_argument("--json", default="",
                         help="also write the headline numbers to this JSON file "
                              "(fed into the CI perf-trend accumulation)")
    predict.add_argument("--seed", type=int, default=2018)
    _add_trace_flag(predict, "predict")
    predict.set_defaults(func=_cmd_predict)

    multi = sub.add_parser(
        "multi",
        help="run several dataflows on one shared, budget-arbitrated fleet",
    )
    multi.add_argument("--dags", default="traffic,grid",
                       help="comma-separated tenant dataflows (paper DAGs or keyed variants)")
    multi.add_argument("--strategy", default="ccr", choices=("dsm", "dcr", "ccr"))
    multi.add_argument("--duration", type=float, default=600.0,
                       help="total simulated run time (seconds)")
    multi.add_argument("--surge", type=float, default=2.0,
                       help="surge multiplier for each tenant's offset rush hour")
    multi.add_argument("--budget", type=int, default=None,
                       help="cluster-wide worker-slot budget (default: co-located fleet "
                            "plus one expanded tenant)")
    multi.add_argument("--priorities", default="",
                       help="comma-separated tenant priorities, higher wins (default: all equal)")
    multi.add_argument("--placement-only", action="store_true", dest="placement_only",
                       help="restrict tenants to the paper's placement-only scaling "
                            "(default: capacity-adding parallelism rescale, which actually "
                            "absorbs the surges)")
    multi.add_argument("--placement", default="full-replace",
                       choices=("full-replace", "incremental"),
                       help="per-tenant place stage: 'incremental' keeps unchanged "
                            "instances in place and lets consolidations re-use "
                            "partially-free shared VMs instead of provisioning a fresh fleet")
    multi.add_argument("--no-baseline", action="store_true", dest="no_baseline",
                       help="skip the per-tenant private-fleet baseline runs")
    multi.add_argument("--audit-json", default="", dest="audit_json", metavar="PATH",
                       help="write the arbiter's structured audit log (every proposal "
                            "and abort with its verdict and budget position) to this "
                            "JSON file")
    multi.add_argument("--seed", type=int, default=2018)
    _add_trace_flag(multi, "multi")
    multi.set_defaults(func=_cmd_multi)

    shard = sub.add_parser(
        "shard",
        help="run a steady-state experiment partitioned across a process pool",
    )
    shard.add_argument("--dag", default="grid", choices=sorted(topologies.ALL_TOPOLOGIES))
    shard.add_argument("--strategy", default="dcr", choices=("dsm", "dcr", "ccr"))
    shard.add_argument("--shards", type=int, default=4,
                       help="number of key partitions (one hermetic simulation each)")
    shard.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: $REPRO_SIM_SHARDS, else one per "
                            "shard capped at the CPU count; the merged log is identical "
                            "for every value)")
    shard.add_argument("--duration", type=float, default=60.0,
                       help="simulated duration of each shard (seconds)")
    shard.add_argument("--classic", action="store_true",
                       help="disable the batch-stepping cascade inside each shard")
    shard.add_argument("--elastic", action="store_true",
                       help="profile-driven run with per-shard monitors and a "
                            "centralized controller tick over the merged samples "
                            "(planned scaling actions, worker-count invariant)")
    shard.add_argument("--profile", default="surge",
                       help="rate-profile preset for --elastic runs (default: surge)")
    shard.add_argument("--seed", type=int, default=2018)
    _add_trace_flag(shard, "shard")
    shard.set_defaults(func=_cmd_shard)

    chaos = sub.add_parser(
        "chaos",
        help="ride a spot-eviction storm with notice-aware vs oblivious recovery",
    )
    chaos.add_argument("--dag", default="grid-keyed", choices=sorted(topologies.ALL_TOPOLOGIES))
    chaos.add_argument("--strategy", default="dsm", choices=("dsm", "dcr", "ccr"))
    chaos.add_argument("--modes", default=",".join(DEFAULT_MODES),
                       help="comma-separated recovery modes to compare")
    chaos.add_argument("--duration", type=float, default=600.0,
                       help="total simulated run time (seconds)")
    chaos.add_argument("--storms", type=int, default=3,
                       help="number of spot evictions in the storm")
    chaos.add_argument("--storm-start", type=float, default=150.0, dest="storm_start",
                       help="simulated time of the first eviction (seconds)")
    chaos.add_argument("--storm-spacing", type=float, default=120.0, dest="storm_spacing",
                       help="spacing between evictions (seconds, plus keyed jitter)")
    chaos.add_argument("--notice", type=float, default=120.0,
                       help="eviction notice window (seconds)")
    chaos.add_argument("--json", default="",
                       help="also write the headline numbers to this JSON file "
                            "(fed into the CI perf-trend accumulation)")
    chaos.add_argument("--seed", type=int, default=2018)
    _add_trace_flag(chaos, "chaos")
    chaos.set_defaults(func=_cmd_chaos)

    trace = sub.add_parser(
        "trace",
        help="run one scenario with full telemetry and export its trace "
             "(JSONL + Perfetto-loadable Chrome trace)",
    )
    trace.add_argument("scenario", choices=("elastic", "predict", "chaos", "multi", "shard"))
    trace.add_argument("--dag", default=None,
                       help="dataflow (default: the scenario's own default; "
                            "comma-separated tenant list for multi)")
    trace.add_argument("--strategy", default=None, choices=("dsm", "dcr", "ccr"))
    trace.add_argument("--profile", default="surge",
                       help="rate-profile preset for elastic/predict/shard")
    trace.add_argument("--surge", type=float, default=2.0,
                       help="surge multiplier for predict/multi scenarios")
    trace.add_argument("--duration", type=float, default=None,
                       help="simulated run time (default: 600s; 120s per shard)")
    trace.add_argument("--seed", type=int, default=2018)
    trace.add_argument("--out", default="", metavar="PATH",
                       help="trace JSONL path (default: results/TRACE_<scenario>.jsonl)")
    trace.set_defaults(func=_cmd_trace)

    figure = sub.add_parser("figure", help="regenerate one of the paper's tables/figures")
    figure.add_argument("name", choices=("table1", "fig5", "fig6", "fig7", "fig8", "fig9",
                                         "drain", "rebalance", "statestore"))
    figure.add_argument("--scaling", default="in", choices=("in", "out"))
    figure.add_argument("--dag", default="grid", choices=sorted(topologies.PAPER_TOPOLOGIES))
    figure.add_argument("--dags", default="", help="comma-separated subset of dataflows")
    figure.add_argument("--migrate-at", type=float, default=90.0, dest="migrate_at")
    figure.add_argument("--duration", type=float, default=540.0)
    figure.add_argument("--seed", type=int, default=2018)
    figure.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the experiment matrix "
                             "(0 = one per CPU core; cells are hermetic, results identical)")
    figure.set_defaults(func=_cmd_figure)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
