"""Trace exporters: schema-versioned JSONL, Chrome trace-event JSON, text.

Three views of one :class:`~repro.obs.telemetry.Telemetry`:

* :func:`write_trace_jsonl` -- the machine-readable record (header line,
  then one line per span, then one line per metric).  Span lines carry the
  wall-clock stamps *in addition to* the canonical simulated-time content;
  :func:`canonical_trace_text` is the wall-clock-free rendering that the
  same-seed byte-identity tests compare.
* :func:`write_chrome_trace` -- Chrome trace-event JSON ("X" complete
  events over simulated microseconds) loadable in Perfetto / chrome://tracing.
* :func:`summarize` -- a terminal-friendly digest.

:func:`validate_trace_jsonl` is a hand-rolled structural validator (the
container has no jsonschema package) used by tests and the CI smoke job.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from .telemetry import Telemetry
from .trace import TRACE_SCHEMA

#: Span fields every JSONL span line must carry (validator contract).
_SPAN_FIELDS = ("span_id", "parent_id", "name", "category", "start_s", "end_s", "args")
_METRIC_KINDS = {"counter", "gauge", "histogram"}


def _dumps(record: Dict[str, object]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def trace_header(telemetry: Telemetry, **meta: object) -> Dict[str, object]:
    """The header record: schema version plus run metadata."""
    header: Dict[str, object] = {"type": "header", "schema": TRACE_SCHEMA}
    header.update(telemetry.meta)
    header.update(meta)
    return header


def trace_lines(telemetry: Telemetry, canonical: bool = False, **meta: object) -> List[str]:
    """All JSONL lines for a telemetry object, in deterministic order.

    With ``canonical=True`` wall-clock span stamps are dropped, which is the
    content covered by the same-seed byte-identity contract.
    """
    lines = [_dumps(trace_header(telemetry, **meta))]
    for span in telemetry.tracer.spans:
        record = span.canonical() if canonical else span.as_dict()
        lines.append(_dumps(record))
    for metric in telemetry.registry.snapshot():
        record = {"type": "metric"}
        record.update(metric)
        lines.append(_dumps(record))
    return lines


def canonical_trace_text(telemetry: Telemetry, **meta: object) -> str:
    """Wall-clock-free trace rendering; byte-identical across same-seed runs."""
    return "\n".join(trace_lines(telemetry, canonical=True, **meta)) + "\n"


def write_trace_jsonl(telemetry: Telemetry, path: str, **meta: object) -> str:
    """Write the schema-versioned JSONL trace; returns ``path``."""
    parent = os.path.dirname(str(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        for line in trace_lines(telemetry, canonical=False, **meta):
            handle.write(line + "\n")
    return path


def validate_trace_jsonl(path: str) -> List[Dict[str, object]]:
    """Structurally validate a JSONL trace; returns the parsed records.

    Raises ``ValueError`` on the first violation: missing/odd header,
    malformed span (missing fields, dangling parent, end before start) or
    metric record, or an unknown record type.
    """
    with open(path) as handle:
        raw_lines = [line for line in handle.read().splitlines() if line]
    if not raw_lines:
        raise ValueError(f"{path}: empty trace")
    records = []
    for lineno, line in enumerate(raw_lines, start=1):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
    header = records[0]
    if header.get("type") != "header":
        raise ValueError(f"{path}: first record must be the header, got {header.get('type')!r}")
    if header.get("schema") != TRACE_SCHEMA:
        raise ValueError(f"{path}: schema {header.get('schema')!r} != {TRACE_SCHEMA!r}")
    span_ids = set()
    for lineno, record in enumerate(records[1:], start=2):
        kind = record.get("type")
        if kind == "span":
            for field in _SPAN_FIELDS:
                if field not in record:
                    raise ValueError(f"{path}:{lineno}: span missing {field!r}")
            if not isinstance(record["args"], dict):
                raise ValueError(f"{path}:{lineno}: span args must be an object")
            if record["end_s"] is not None and record["end_s"] < record["start_s"]:
                raise ValueError(f"{path}:{lineno}: span ends before it starts")
            parent = record["parent_id"]
            if parent is not None and parent not in span_ids:
                raise ValueError(f"{path}:{lineno}: dangling parent_id {parent}")
            span_ids.add(record["span_id"])
        elif kind == "metric":
            if record.get("kind") not in _METRIC_KINDS:
                raise ValueError(f"{path}:{lineno}: unknown metric kind {record.get('kind')!r}")
            for field in ("subsystem", "name", "labels"):
                if field not in record:
                    raise ValueError(f"{path}:{lineno}: metric missing {field!r}")
        elif kind == "header":
            raise ValueError(f"{path}:{lineno}: duplicate header")
        else:
            raise ValueError(f"{path}:{lineno}: unknown record type {kind!r}")
    return records


#: Stable thread-id assignment per span category in the Chrome export:
#: Perfetto renders one named track per tid.
_CATEGORY_TIDS = {
    "control": 1,
    "control.stage": 2,
    "migration": 3,
    "migration.phase": 4,
    "checkpoint": 5,
    "recovery": 6,
    "evacuation": 7,
    "chaos": 8,
    "arbiter": 9,
    "plan": 10,
}


def chrome_trace(telemetry: Telemetry, **meta: object) -> Dict[str, object]:
    """Chrome trace-event JSON: "X" complete events over simulated µs."""
    events: List[Dict[str, object]] = []
    next_tid = max(_CATEGORY_TIDS.values()) + 1
    tids = dict(_CATEGORY_TIDS)
    for span in telemetry.tracer.spans:
        tid = tids.get(span.category)
        if tid is None:
            tid = tids[span.category] = next_tid
            next_tid += 1
        end_s = span.end_s if span.end_s is not None else span.start_s
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        args.update(span.args)
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "pid": 0,
                "tid": tid,
                "ts": span.start_s * 1e6,
                "dur": (end_s - span.start_s) * 1e6,
                "args": args,
            }
        )
    thread_meta = [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": 0,
            "tid": tid,
            "args": {"name": category},
        }
        for category, tid in sorted(tids.items(), key=lambda item: item[1])
    ]
    header = trace_header(telemetry, **meta)
    header.pop("type", None)
    return {"traceEvents": thread_meta + events, "otherData": header}


def write_chrome_trace(telemetry: Telemetry, path: str, **meta: object) -> str:
    """Write the Perfetto-loadable Chrome trace JSON; returns ``path``."""
    parent = os.path.dirname(str(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(chrome_trace(telemetry, **meta), handle, sort_keys=True)
        handle.write("\n")
    return path


def summarize(telemetry: Telemetry) -> str:
    """Terminal-friendly digest: span counts per category, headline metrics."""
    lines = ["trace summary"]
    by_category: Dict[str, int] = {}
    for span in telemetry.tracer.spans:
        by_category[span.category] = by_category.get(span.category, 0) + 1
    lines.append(f"  spans: {len(telemetry.tracer.spans)}")
    for category in sorted(by_category):
        lines.append(f"    {category:<16} {by_category[category]}")
    open_spans = telemetry.tracer.open_spans()
    if open_spans:
        lines.append(f"  open spans: {len(open_spans)}")
    snapshot = telemetry.registry.snapshot()
    lines.append(f"  metrics: {len(snapshot)}")
    for metric in snapshot:
        labels = metric["labels"]
        label_text = (
            "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}" if labels else ""
        )
        name = f"{metric['subsystem']}.{metric['name']}{label_text}"
        if metric["kind"] == "histogram":
            mean = metric["mean"]
            mean_text = f"{mean:.3f}" if mean is not None else "-"
            lines.append(f"    {name:<48} n={metric['count']} mean={mean_text}")
        elif metric["kind"] == "gauge":
            lines.append(
                f"    {name:<48} {metric['value']:.6g} (high {metric['high_water']:.6g})"
            )
        else:
            lines.append(f"    {name:<48} {metric['value']:.6g}")
    return "\n".join(lines)
