"""Span tracer for the control plane.

Spans model *why the controller acted*: every control tick is a span with
five child spans (``sense -> forecast -> plan -> place -> act``) carrying the
stage inputs/outputs, and the long-running protocols (scaling migrations,
recoveries, evacuations, checkpoint waves, rebalances, injected faults)
become spans stamped with their simulated start/end times.

Design constraints, in order:

* **Determinism** -- span ids are sequential in creation order, every
  simulated-time field is a pure function of the run, and wall-clock stamps
  are carried *separately* (``wall_start_s``/``wall_end_s``) so exporters can
  drop them when comparing same-seed runs byte for byte
  (:meth:`Span.canonical`).
* **Async-safe parenting** -- control-plane work is not a call stack: a
  migration begun at one tick completes many simulated minutes later, long
  after its parent tick span ended.  The tracer therefore uses explicit
  ``begin()``/``end()`` with explicit ``parent`` references instead of a
  context-manager stack.
* **Inertness** -- with telemetry off no tracer exists; instrumented code
  guards on the runtime's ``telemetry`` attribute being ``None``.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Optional

#: Schema identifier written into every exported trace header.
TRACE_SCHEMA = "repro-trace/1"


class Span:
    """One traced operation over simulated time."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "category",
        "start_s",
        "end_s",
        "wall_start_s",
        "wall_end_s",
        "args",
    )

    def __init__(
        self,
        span_id: int,
        name: str,
        category: str,
        start_s: float,
        parent_id: Optional[int] = None,
        wall_start_s: Optional[float] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        #: Simulated-time bounds (seconds since run start).
        self.start_s = start_s
        self.end_s: Optional[float] = None
        #: Wall-clock bounds (``time.time()``), excluded from canonical content.
        self.wall_start_s = wall_start_s
        self.wall_end_s: Optional[float] = None
        self.args: Dict[str, object] = args if args is not None else {}

    @property
    def duration_s(self) -> Optional[float]:
        """Simulated duration (``None`` while open)."""
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def canonical(self) -> Dict[str, object]:
        """The deterministic (simulated-time-only) view of the span.

        Wall-clock stamps are intentionally absent: this dict -- and only
        this dict -- is what the same-seed byte-identity contract covers.
        """
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "args": self.args,
        }

    def as_dict(self) -> Dict[str, object]:
        """Canonical content plus the wall-clock stamps."""
        record = self.canonical()
        record["wall_start_s"] = self.wall_start_s
        record["wall_end_s"] = self.wall_end_s
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(#{self.span_id} {self.category}/{self.name} "
            f"[{self.start_s}, {self.end_s}] parent={self.parent_id})"
        )


class SpanTracer:
    """Creates and stores spans with deterministic sequential ids."""

    __slots__ = ("spans", "_next_id", "_clock")

    def __init__(self, clock=_time.time) -> None:
        self.spans: List[Span] = []
        self._next_id = 0
        # Injectable wall clock (tests freeze it); simulated time is always
        # passed in explicitly by the caller.
        self._clock = clock

    def begin(
        self,
        name: str,
        category: str,
        sim_now: float,
        parent: Optional[Span] = None,
        **args: object,
    ) -> Span:
        """Open a span at simulated time ``sim_now``."""
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            start_s=sim_now,
            parent_id=parent.span_id if parent is not None else None,
            wall_start_s=self._clock(),
            args=dict(args),
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def end(self, span: Span, sim_now: float, **args: object) -> Span:
        """Close a span at simulated time ``sim_now``, merging ``args`` in."""
        if span.end_s is not None:
            raise ValueError(f"span #{span.span_id} ({span.name}) already ended")
        if sim_now < span.start_s:
            raise ValueError(
                f"span #{span.span_id} ({span.name}) cannot end at {sim_now} "
                f"before its start {span.start_s}"
            )
        span.end_s = sim_now
        span.wall_end_s = self._clock()
        if args:
            span.args.update(args)
        return span

    def emit(
        self,
        name: str,
        category: str,
        start_s: float,
        end_s: float,
        parent: Optional[Span] = None,
        **args: object,
    ) -> Span:
        """Record an already-finished interval as one span (record synthesis)."""
        span = self.begin(name, category, start_s, parent=parent, **args)
        return self.end(span, end_s)

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of a span, in creation order."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def by_category(self, category: str) -> List[Span]:
        """All spans of one category, in creation order."""
        return [s for s in self.spans if s.category == category]

    def open_spans(self) -> List[Span]:
        """Spans begun but never ended (run stopped mid-protocol)."""
        return [s for s in self.spans if s.end_s is None]
