"""Unified telemetry layer: metrics registry, span tracer, trace exporters.

Everything here is opt-in via ``RuntimeConfig.telemetry``: with the flag off
no telemetry object exists and the engine hot paths pay nothing beyond the
plain integer tallies they always kept.
"""

from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .telemetry import Telemetry
from .trace import TRACE_SCHEMA, Span, SpanTracer
from .export import (
    canonical_trace_text,
    chrome_trace,
    summarize,
    trace_lines,
    validate_trace_jsonl,
    write_chrome_trace,
    write_trace_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "TRACE_SCHEMA",
    "Span",
    "SpanTracer",
    "canonical_trace_text",
    "chrome_trace",
    "summarize",
    "trace_lines",
    "validate_trace_jsonl",
    "write_chrome_trace",
    "write_trace_jsonl",
]
