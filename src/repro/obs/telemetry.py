"""Telemetry facade: one object owning the metrics registry and span tracer.

``TopologyRuntime`` creates a :class:`Telemetry` when
``RuntimeConfig.telemetry`` is on and leaves the attribute ``None``
otherwise, so every instrumentation site is a single ``is None`` guard and
the hot path never pays for observability it did not ask for.

The split of responsibilities:

* **Live spans** -- the elasticity controller opens/closes spans *as it
  runs* (one per control tick, five stage children), because the stage
  inputs/outputs are only available in the moment.
* **Scraped metrics** -- hot components keep their plain integer tallies
  (``Simulator.processed_events``, ``Router.routed_count``, executor
  counters, ...); :meth:`Telemetry.scrape` folds them into the registry at
  sample/finalize time.
* **Synthesized spans** -- the long-running protocols already leave typed
  records (``ScalingAction``, ``RecoveryRecord``, ``EvacuationRecord``,
  ``CheckpointWave``, ``FaultRecord``, arbiter ``ProposalRecord``);
  :meth:`Telemetry.finalize` turns them into spans after the run, with
  checkpoint waves parented to the innermost protocol span containing them.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Optional

from .registry import MetricsRegistry
from .trace import Span, SpanTracer


class Telemetry:
    """Holds the registry + tracer for one run, plus run-level metadata."""

    __slots__ = ("registry", "tracer", "meta", "_finalized")

    def __init__(self, clock=_time.time) -> None:
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(clock=clock)
        #: Run-level metadata (seed, scenario, ...) merged into trace headers.
        self.meta: Dict[str, object] = {}
        self._finalized = False

    # ------------------------------------------------------------- sampling
    def sample_queues(self, runtime) -> None:
        """Update queue-depth gauges (high-water tracked across calls).

        Called from the controller tick -- per control period, never per
        event, so the cost is bounded by executor count.
        """
        gauge = self.registry.gauge
        for executor_id in sorted(runtime.executors):
            executor = runtime.executors[executor_id]
            depth = getattr(executor, "queue_length", None)
            if depth is not None:
                gauge("executor", "queue_depth", executor=executor_id).set(depth)
        for source in runtime.source_executors:
            gauge("executor", "source_backlog", executor=source.executor_id).set(
                source.backlog_size
            )

    # ------------------------------------------------------------- scraping
    def scrape(self, runtime=None, provider=None, injector=None) -> None:
        """Fold the plain tallies of the hot components into the registry."""
        registry = self.registry
        if runtime is not None:
            sim = runtime.sim
            registry.counter("kernel", "events_stepped").set_total(sim.processed_events)
            registry.counter("kernel", "heap_compactions").set_total(sim.compactions)
            registry.counter("kernel", "batch_cohorts").set_total(sim.batch_cohorts)

            router = runtime.router
            registry.counter("router", "deliveries").set_total(router.routed_count)
            registry.counter("router", "route_cache_builds").set_total(router.plan_builds)
            registry.counter("router", "route_cache_hits").set_total(
                max(0, router.route_calls - router.plan_builds)
            )
            registry.counter("router", "batched_deliveries").set_total(
                router.batched_deliveries
            )
            from ..dataflow.event import pool_recycled_total

            registry.counter("router", "pool_recycles").set_total(pool_recycled_total())

            by_task: Dict[str, List] = {}
            for executor in runtime.executors.values():
                by_task.setdefault(executor.task.name, []).append(executor)
            for task_name in sorted(by_task):
                members = by_task[task_name]
                registry.counter("executor", "processed", task=task_name).set_total(
                    sum(e.processed_count for e in members)
                )
                registry.counter("executor", "busy_time_s", task=task_name).set_total(
                    sum(e.busy_time_s for e in members)
                )
            for source in runtime.source_executors:
                task_name = source.task.name
                registry.counter("executor", "emitted", task=task_name).set_total(
                    sum(
                        s.emitted_count
                        for s in runtime.source_executors
                        if s.task.name == task_name
                    )
                )
                registry.counter("executor", "replayed", task=task_name).set_total(
                    sum(
                        s.replayed_count
                        for s in runtime.source_executors
                        if s.task.name == task_name
                    )
                )
            self.sample_queues(runtime)

            stats = runtime.acker.stats
            for field in (
                "registered",
                "completed",
                "failed",
                "anchors",
                "acks",
                "late_acks",
                "bulk_anchors",
                "bulk_acks",
            ):
                registry.counter("acker", field).set_total(getattr(stats, field))
            registry.counter("acker", "replays").set_total(
                sum(s.replayed_count for s in runtime.source_executors)
            )
            registry.gauge("acker", "pending_trees").set(runtime.acker.pending_count)

            waves: Dict[tuple, int] = {}
            durations: Dict[str, List[float]] = {}
            for wave in runtime.checkpoints.history:
                key = (wave.action.value, wave.status.value)
                waves[key] = waves.get(key, 0) + 1
                duration = wave.duration_s
                if duration is not None:
                    durations.setdefault(wave.action.value, []).append(duration)
            for action_value, status_value in sorted(waves):
                registry.counter(
                    "checkpoint", "waves", action=action_value, status=status_value
                ).set_total(waves[(action_value, status_value)])
            for action_value in sorted(durations):
                histogram = registry.histogram(
                    "checkpoint", "wave_duration_s", action=action_value
                )
                if histogram.count == 0:  # scrape() may run more than once
                    for duration in durations[action_value]:
                        histogram.observe(duration)

        if provider is not None:
            provisions: Dict[str, int] = {}
            for record in provider.billing_records:
                provisions[record.market] = provisions.get(record.market, 0) + 1
            for market in sorted(provisions):
                registry.counter("cloud", "provisions", market=market).set_total(
                    provisions[market]
                )
            registry.counter("cloud", "provisioning_failures").set_total(
                provider.provisioning_failures
            )
            breakdown = provider.cost_breakdown()
            for market in sorted(breakdown):
                registry.gauge("cloud", "cost", market=market).set(breakdown[market])
            registry.gauge("cloud", "cost_total").set(provider.total_cost())

        if injector is not None:
            faults: Dict[tuple, int] = {}
            for record in injector.records:
                key = (record.event.kind, record.outcome)
                faults[key] = faults.get(key, 0) + 1
            for kind, outcome in sorted(faults):
                registry.counter("chaos", "faults", kind=kind, outcome=outcome).set_total(
                    faults[(kind, outcome)]
                )

    # --------------------------------------------------- protocol synthesis
    def record_faults(self, records) -> List[Span]:
        """One ``chaos`` span per :class:`FaultRecord` (exactly one each)."""
        spans = []
        for record in records:
            start = record.fired_at if record.fired_at is not None else record.event.at_s
            end = record.killed_at
            if end is None:
                end = record.deadline if record.deadline is not None else start
            end = max(end, start)
            spans.append(
                self.tracer.emit(
                    f"fault.{record.event.kind}",
                    "chaos",
                    start,
                    end,
                    index=record.index,
                    kind=record.event.kind,
                    vm_id=record.vm_id,
                    outcome=record.outcome,
                    scheduled_at_s=record.event.at_s,
                    notice_s=record.event.notice_s,
                    deadline_s=record.deadline,
                )
            )
        return spans

    def record_arbiter(self, arbiter) -> List[Span]:
        """Zero-duration ``arbiter`` spans for every proposal and abort."""
        spans = []
        for record in list(arbiter.log) + list(arbiter.aborts):
            spans.append(
                self.tracer.emit(
                    f"proposal.{record.direction}",
                    "arbiter",
                    record.time,
                    record.time,
                    tenant=record.tenant_id,
                    slots_requested=record.slots_requested,
                    granted=record.granted,
                    reason=record.reason,
                    committed_before=record.committed_before,
                    committed_after=record.committed_after,
                    budget_slots=record.budget_slots,
                )
            )
        return spans

    def record_actions(
        self, actions, now: Optional[float] = None, tenant: Optional[str] = None
    ) -> List[Span]:
        """One ``migration`` span (plus phase children) per ScalingAction.

        ``now`` caps still-in-flight protocols at the end of the run;
        ``tenant`` labels multi-tenant runs.  Unenacted, unaborted decisions
        (still waiting on capacity) have no protocol interval and are skipped.
        """
        emit = self.tracer.emit
        spans: List[Span] = []
        for action in actions:
            start = action.enacted_at
            if start is None:
                if not action.aborted:
                    continue
                start = action.decided_at
            end = action.completed_at
            if end is None:
                end = now if now is not None and now > start else start
            span = emit(
                f"migration.{action.direction}",
                "migration",
                start,
                end,
                direction=action.direction,
                from_tier=action.from_tier,
                to_tier=action.to_tier,
                decided_at_s=action.decided_at,
                observed_rate_ev_s=action.observed_rate,
                forecast_rate_ev_s=action.forecast_rate,
                slo_escalated=action.slo_escalated,
                provision_counts=dict(action.provision_counts),
                kept_vms=len(action.kept_vm_ids),
                provisioned_vms=len(action.provisioned_vm_ids),
                aborted=action.aborted,
                tenant=tenant,
            )
            self._report_children(span, action.report)
            spans.append(span)
        return spans

    def _report_children(self, parent: Span, report) -> None:
        """Synthesize protocol-phase child spans from a MigrationReport."""
        if report is None:
            return
        emit = self.tracer.emit

        def phase(name: str, start: Optional[float], end: Optional[float], **args) -> None:
            if start is None or end is None or end < start:
                return
            emit(name, "checkpoint" if name.startswith("checkpoint") else "migration.phase",
                 start, end, parent=parent, **args)

        drain_start = report.drain_started_at
        if drain_start is None:
            drain_start = report.sources_paused_at
        phase(
            "checkpoint.prepare",
            drain_start,
            report.prepare_completed_at,
            checkpoint_id=report.checkpoint_id,
        )
        phase(
            "checkpoint.commit",
            report.prepare_completed_at,
            report.commit_completed_at,
            checkpoint_id=report.checkpoint_id,
        )
        rebalance = report.rebalance_record
        if rebalance is not None:
            end = rebalance.all_ready_at
            phase(
                "rebalance",
                rebalance.started_at,
                end,
                migrating=len(rebalance.migrating),
                staying=len(rebalance.staying),
                loaded=rebalance.loaded,
            )
            phase("state.restore", end, report.init_completed_at)
        rescale = report.rescale_record
        if rescale is not None:
            phase(
                "state.repartition",
                rescale.applied_at,
                rescale.applied_at,
                changes={task: list(pair) for task, pair in sorted(rescale.changes.items())},
                spawned=len(rescale.spawned),
                retired=len(rescale.retired),
                restarting=len(rescale.restarting),
            )

    def finalize(
        self,
        runtime=None,
        controller=None,
        provider=None,
        injector=None,
        tenant: Optional[str] = None,
    ) -> None:
        """Scrape final metrics and synthesize protocol spans from records.

        Idempotent: a second call is a no-op, so experiment helpers and the
        CLI can both call it without double-counting.
        """
        if self._finalized:
            return
        self._finalized = True
        now = runtime.sim.now if runtime is not None else None
        emit = self.tracer.emit
        protocol_spans: List[Span] = []

        def _end(value: Optional[float], start: float) -> float:
            if value is not None:
                return value
            return now if now is not None and now > start else start

        if controller is not None:
            protocol_spans.extend(
                self.record_actions(controller.actions, now=now, tenant=tenant)
            )
            for recovery in getattr(controller, "recoveries", []):
                span = emit(
                    f"recovery.{recovery.kind}",
                    "recovery",
                    recovery.failed_at,
                    _end(recovery.restored_at, recovery.failed_at),
                    vm_id=recovery.vm_id,
                    kind=recovery.kind,
                    lost_executors=len(recovery.lost_executors),
                    events_lost=recovery.events_lost,
                    trees_failed=recovery.trees_failed,
                    replacements=len(recovery.replacement_vm_ids),
                    provisioning_failures=recovery.provisioning_failures,
                    tenant=tenant,
                )
                if recovery.rebalanced_at is not None and recovery.restored_at is not None:
                    emit(
                        "state.restore",
                        "migration.phase",
                        recovery.rebalanced_at,
                        recovery.restored_at,
                        parent=span,
                    )
                protocol_spans.append(span)
            for evacuation in getattr(controller, "evacuations", []):
                fallback = evacuation.deadline if evacuation.overrun else None
                end = evacuation.completed_at if evacuation.completed_at is not None else fallback
                span = emit(
                    "evacuation",
                    "evacuation",
                    evacuation.notice_at,
                    _end(end, evacuation.notice_at),
                    vm_id=evacuation.vm_id,
                    deadline_s=evacuation.deadline,
                    evaded=evacuation.evaded,
                    overrun=evacuation.overrun,
                    migration_issued=evacuation.migration_issued,
                    replacements=len(evacuation.replacement_vm_ids),
                    replacement_market=evacuation.replacement_market,
                    tenant=tenant,
                )
                self._report_children(span, evacuation.report)
                protocol_spans.append(span)

        if runtime is not None:
            # Checkpoint waves nest inside the innermost protocol span whose
            # interval contains their start; periodic waves outside any
            # protocol surface as top-level checkpoint spans.
            for wave in runtime.checkpoints.history:
                parent = None
                for candidate in protocol_spans:
                    if candidate.start_s <= wave.started_at and (
                        candidate.end_s is None or wave.started_at <= candidate.end_s
                    ):
                        if parent is None or candidate.start_s >= parent.start_s:
                            parent = candidate
                emit(
                    f"checkpoint.wave.{wave.action.value}",
                    "checkpoint",
                    wave.started_at,
                    _end(wave.completed_at, wave.started_at),
                    parent=parent,
                    checkpoint_id=wave.checkpoint_id,
                    action=wave.action.value,
                    mode=wave.mode.value,
                    expected=len(wave.expected),
                    status=wave.status.value,
                    emit_count=wave.emit_count,
                )

        if injector is not None:
            self.record_faults(injector.records)

        self.scrape(runtime=runtime, provider=provider, injector=injector)
