"""Slotted metrics registry: counters, gauges and histograms for the engine.

The registry is the *cold* half of the telemetry layer.  Hot components never
call into it per event -- they keep the plain integer/float tallies they
always kept (``Simulator.processed_events``, ``Router.routed_count``,
``Executor.busy_time_s``, ...) and the registry is populated by **scraping**
those tallies at sample or finalize time (:meth:`repro.obs.Telemetry.scrape`).
That is what makes telemetry zero-allocation on the hot path and fully inert
when ``RuntimeConfig.telemetry`` is off: with telemetry disabled no registry
object even exists.

Metrics are keyed by ``(subsystem, name, labels)`` where ``labels`` is a
sorted tuple of ``(key, value)`` pairs, so the same metric scraped for two
executors lands in two slots and snapshots iterate in a deterministic,
PYTHONHASHSEED-independent order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: A fully resolved metric key: (subsystem, name, sorted (label, value) pairs).
MetricKey = Tuple[str, str, Tuple[Tuple[str, str], ...]]


def _label_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing tally."""

    __slots__ = ("subsystem", "name", "labels", "value")

    kind = "counter"

    def __init__(self, subsystem: str, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.subsystem = subsystem
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the tally."""
        if amount < 0:
            raise ValueError(f"counter {self.subsystem}.{self.name}: negative increment {amount}")
        self.value += amount

    def set_total(self, total: float) -> None:
        """Overwrite with a scraped cumulative total (scrape-style update)."""
        self.value = float(total)

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "subsystem": self.subsystem,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """Point-in-time value, with a high-water mark across updates."""

    __slots__ = ("subsystem", "name", "labels", "value", "high_water")

    kind = "gauge"

    def __init__(self, subsystem: str, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.subsystem = subsystem
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        """Record the current value; the high-water mark tracks the maximum."""
        self.value = float(value)
        if self.value > self.high_water:
            self.high_water = self.value

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "subsystem": self.subsystem,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
            "high_water": self.high_water,
        }


class Histogram:
    """Streaming summary (count / sum / min / max) of observed values.

    Deliberately bucket-free: the trace consumers that need distributions
    read the raw spans; the registry carries the cheap invariants.
    """

    __slots__ = ("subsystem", "name", "labels", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, subsystem: str, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.subsystem = subsystem
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        """Mean of the observations so far (``None`` when empty)."""
        if not self.count:
            return None
        return self.total / self.count

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "subsystem": self.subsystem,
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create registry of metrics keyed by ``(subsystem, name, labels)``."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, object] = {}

    def _get(self, cls, subsystem: str, name: str, labels: Dict[str, object]):
        key = (subsystem, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(subsystem, name, key[2])
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {subsystem}.{name}{labels} already registered as {metric.kind}"
            )
        return metric

    def counter(self, subsystem: str, name: str, **labels: object) -> Counter:
        """The counter at ``(subsystem, name, labels)``, created on first use."""
        return self._get(Counter, subsystem, name, labels)

    def gauge(self, subsystem: str, name: str, **labels: object) -> Gauge:
        """The gauge at ``(subsystem, name, labels)``, created on first use."""
        return self._get(Gauge, subsystem, name, labels)

    def histogram(self, subsystem: str, name: str, **labels: object) -> Histogram:
        """The histogram at ``(subsystem, name, labels)``, created on first use."""
        return self._get(Histogram, subsystem, name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> List[Dict[str, object]]:
        """All metrics as plain dicts, sorted by key (deterministic order)."""
        return [self._metrics[key].snapshot() for key in sorted(self._metrics)]
