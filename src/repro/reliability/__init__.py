"""Reliability substrates: acking, checkpointing and state persistence.

These are the Storm capabilities the paper builds on:

* :mod:`repro.reliability.acker` -- the XOR-hash acknowledgment service that
  provides at-least-once processing by replaying root events whose causal tree
  does not complete within a timeout (30 s by default).
* :mod:`repro.reliability.statestore` -- the Redis-like external key-value
  store used to persist checkpointed task state (and, for CCR, captured
  in-flight events), with a latency model calibrated to the paper's
  micro-benchmark (2000 events checkpointed in about 100 ms).
* :mod:`repro.reliability.checkpoint` -- the checkpoint coordinator that
  drives PREPARE / COMMIT / ROLLBACK / INIT waves, either periodically (DSM)
  or just-in-time during migration (DCR / CCR), sequentially along dataflow
  edges or broadcast directly to every task (CCR).
"""

from repro.reliability.acker import AckerService, AckerStats, PendingTree
from repro.reliability.checkpoint import (
    CheckpointCoordinator,
    CheckpointWave,
    WaveMode,
    WaveStatus,
)
from repro.reliability.statestore import StateStore, StateStoreStats, StoredValue

__all__ = [
    "AckerService",
    "AckerStats",
    "CheckpointCoordinator",
    "CheckpointWave",
    "PendingTree",
    "StateStore",
    "StateStoreStats",
    "StoredValue",
    "WaveMode",
    "WaveStatus",
]
