"""Reliability substrates: acking, checkpointing and state persistence.

These are the Storm capabilities the paper builds on:

* :mod:`repro.reliability.acker` -- the XOR-hash acknowledgment service that
  provides at-least-once processing by replaying root events whose causal tree
  does not complete within a timeout (30 s by default).
* :mod:`repro.reliability.statestore` -- the Redis-like external key-value
  store used to persist checkpointed task state (and, for CCR, captured
  in-flight events), with a latency model calibrated to the paper's
  micro-benchmark (2000 events checkpointed in about 100 ms).
* :mod:`repro.reliability.checkpoint` -- the checkpoint coordinator that
  drives PREPARE / COMMIT / ROLLBACK / INIT waves, either periodically (DSM)
  or just-in-time during migration (DCR / CCR), sequentially along dataflow
  edges or broadcast directly to every task (CCR).
* :mod:`repro.reliability.repartition` -- grouped-state re-partitioning for
  runtime parallelism changes: re-keys checkpointed ``by_key`` state (and
  CCR's captured pending events) to a rescaled task's new instance set using
  the router's stable FIELDS hash.
"""

from repro.reliability.acker import AckerService, AckerStats, PendingTree
from repro.reliability.checkpoint import (
    CheckpointCoordinator,
    CheckpointWave,
    WaveMode,
    WaveStatus,
)
from repro.reliability.repartition import (
    PARTITIONED_STATE_KEY,
    RepartitionStats,
    merge_states,
    repartition_rescaled_tasks,
    repartition_task_state,
    split_pending_events,
    split_state,
    task_is_keyed,
)
from repro.reliability.statestore import (
    StateStore,
    StateStoreStats,
    StoredValue,
    checkpoint_key,
)

__all__ = [
    "AckerService",
    "AckerStats",
    "CheckpointCoordinator",
    "CheckpointWave",
    "PARTITIONED_STATE_KEY",
    "PendingTree",
    "RepartitionStats",
    "StateStore",
    "StateStoreStats",
    "StoredValue",
    "WaveMode",
    "WaveStatus",
    "checkpoint_key",
    "merge_states",
    "repartition_rescaled_tasks",
    "repartition_task_state",
    "split_pending_events",
    "split_state",
    "task_is_keyed",
]
