"""Storm-style acknowledgment service (XOR causal trees).

Every root event emitted by a source registers a 64-bit id with the acker.
Each causally derived event XORs its id into the tree's hash when it is
anchored (emitted) and again when it is acked (processed); once every event
has been anchored and acked exactly once the hash returns to zero and the
tree is *complete*.  If the hash is still non-zero when the timeout expires
(30 s by default) the tree has *failed* and the source replays the cached
root event.

This is exactly the mechanism the paper's DSM baseline relies on for
reliability, and the source of its large catch-up and recovery times: events
in flight when the rebalance kills executors never complete their trees and
are replayed only after the 30 s timeout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.sim import Simulator, Timer

try:  # numpy accelerates the bulk XOR folds; the scalar path is exact without it
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None


@dataclass
class PendingTree:
    """Tracking state for one root event's causal tree."""

    root_id: int
    registered_at: float
    ack_hash: int = 0
    anchored_count: int = 0
    acked_count: int = 0
    timeout_timer: Optional[Timer] = None

    @property
    def complete(self) -> bool:
        """Whether every anchored event has been acked (hash returned to zero)."""
        return self.ack_hash == 0 and self.anchored_count > 0


@dataclass
class AckerStats:
    """Counters kept by the acker service."""

    registered: int = 0
    completed: int = 0
    failed: int = 0
    anchors: int = 0
    acks: int = 0
    late_acks: int = 0
    #: Anchors/acks that went through the bulk (batched) APIs rather than the
    #: per-event calls.  Both are also counted in ``anchors``/``acks``; these
    #: two break out how much of the ack stream the batch cascade absorbed.
    bulk_anchors: int = 0
    bulk_acks: int = 0


class AckerService:
    """Tracks causal trees of root events and detects completion or timeout.

    Callbacks
    ---------
    ``on_complete(root_id)``
        Invoked when a tree completes; the source uses this to drop the cached
        root event.
    ``on_fail(root_id)``
        Invoked when a tree times out; the source uses this to replay the root.
    """

    def __init__(
        self,
        sim: Simulator,
        timeout_s: float = 30.0,
        on_complete: Optional[Callable[[int], None]] = None,
        on_fail: Optional[Callable[[int], None]] = None,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError("ack timeout must be positive")
        self.sim = sim
        self.timeout_s = timeout_s
        self.on_complete = on_complete
        self.on_fail = on_fail
        self._pending: Dict[int, PendingTree] = {}
        self.stats = AckerStats()
        self.failed_roots: List[int] = []

    # ----------------------------------------------------------- registration
    def register(self, root_id: int, at_time: Optional[float] = None) -> None:
        """Start tracking a new root event (or a replayed instance of it).

        ``at_time`` back-dates the registration: the batch cascade registers
        trees at their source-tick times while the kernel clock still sits at
        the cascade's entry point, so the timeout timer must fire at
        ``tick + timeout`` exactly as the classic path would schedule it.
        """
        if root_id in self._pending:
            # A replay of a root that is somehow still tracked: reset the tree.
            existing = self._pending[root_id]
            if existing.timeout_timer is not None:
                existing.timeout_timer.cancel()
        if at_time is None:
            tree = PendingTree(root_id=root_id, registered_at=self.sim.now)
            tree.timeout_timer = self.sim.schedule(self.timeout_s, self._check_timeout, root_id)
        else:
            tree = PendingTree(root_id=root_id, registered_at=at_time)
            tree.timeout_timer = self.sim.schedule_at(
                at_time + self.timeout_s, self._check_timeout, root_id
            )
        self._pending[root_id] = tree
        self.stats.registered += 1

    def register_block(
        self,
        root_ids: Sequence[int],
        registered_at: Sequence[float],
        ack_hashes: Sequence[int],
        anchored_counts: Sequence[int],
        acked_counts: Sequence[int],
    ) -> None:
        """Materialize pending trees for roots a batch sweep left unresolved.

        Each tree lands with the exact hash/counter state the classic path
        would have accumulated by the end of the stretch (the hash is the XOR
        fold of the root's still-outstanding event ids) and a timeout timer at
        ``registered_at + timeout``.  The symbolic anchors/acks that cancelled
        inside the sweep are included in the counts, so the per-tree counters
        and the aggregate stats stay classic-consistent.
        """
        pending = self._pending
        schedule_at = self.sim.schedule_at
        check = self._check_timeout
        timeout = self.timeout_s
        total_anchored = 0
        total_acked = 0
        for root_id, at, ack_hash, anchored, acked in zip(
            root_ids, registered_at, ack_hashes, anchored_counts, acked_counts
        ):
            root_id = int(root_id)
            tree = PendingTree(
                root_id=root_id,
                registered_at=float(at),
                ack_hash=int(ack_hash),
                anchored_count=int(anchored),
                acked_count=int(acked),
            )
            tree.timeout_timer = schedule_at(float(at) + timeout, check, root_id)
            pending[root_id] = tree
            total_anchored += tree.anchored_count
            total_acked += tree.acked_count
        n = len(root_ids)
        stats = self.stats
        stats.registered += n
        stats.anchors += total_anchored
        stats.acks += total_acked
        stats.bulk_anchors += total_anchored
        stats.bulk_acks += total_acked

    def absorb_resolved(self, count: int, anchors: int = 0, acks: int = 0) -> None:
        """Account for trees that registered *and* completed inside one batch sweep.

        A loss-free steady-state stretch resolves such trees to zero without
        ever materializing a :class:`PendingTree` or a timeout timer — only
        the counters advance (``anchors``/``acks`` are the symbolic pairs
        whose XOR contributions cancelled inside the sweep)."""
        if count <= 0 and not anchors and not acks:
            return
        stats = self.stats
        stats.registered += count
        stats.completed += count
        stats.anchors += anchors
        stats.acks += acks
        stats.bulk_anchors += anchors
        stats.bulk_acks += acks

    def is_pending(self, root_id: int) -> bool:
        """Whether the given root is still being tracked."""
        return root_id in self._pending

    @property
    def pending_count(self) -> int:
        """Number of trees currently being tracked."""
        return len(self._pending)

    # ------------------------------------------------------------ ack / anchor
    def anchor(self, root_id: int, event_id: int) -> None:
        """Record that ``event_id`` was emitted as part of ``root_id``'s tree."""
        tree = self._pending.get(root_id)
        if tree is None:
            return
        tree.ack_hash ^= event_id
        tree.anchored_count += 1
        self.stats.anchors += 1

    def ack(self, root_id: int, event_id: int) -> None:
        """Record that ``event_id`` has been fully processed by its task."""
        tree = self._pending.get(root_id)
        if tree is None:
            self.stats.late_acks += 1
            return
        tree.ack_hash ^= event_id
        tree.acked_count += 1
        self.stats.acks += 1
        if tree.complete:
            self._complete(root_id)

    def fail(self, root_id: int) -> None:
        """Explicitly fail a tree (e.g. user logic error), triggering a replay."""
        if root_id in self._pending:
            self._fail(root_id)

    # ------------------------------------------------------------- bulk APIs
    @staticmethod
    def _folds(pairs: Sequence[Tuple[int, int]]) -> Iterator[Tuple[int, int, int]]:
        """Reduce ``(root_id, event_id)`` pairs to per-root ``(root, xor, count)``.

        The XOR fold is order-independent, so the whole stream collapses with
        one ``np.bitwise_xor.reduceat`` over a root-sorted view; the scalar
        dict fold is the exact same reduction without numpy (or for tiny
        batches where the sort setup costs more than it saves).
        """
        n = len(pairs)
        if _np is not None and n >= 8:
            arr = _np.asarray(pairs, dtype=_np.uint64)
            order = _np.argsort(arr[:, 0], kind="stable")
            roots = arr[order, 0]
            ids = arr[order, 1]
            starts = _np.flatnonzero(_np.r_[True, roots[1:] != roots[:-1]])
            xors = _np.bitwise_xor.reduceat(ids, starts)
            counts = _np.diff(_np.r_[starts, n])
            for root, x, cnt in zip(roots[starts], xors, counts):
                yield int(root), int(x), int(cnt)
            return
        folds: Dict[int, List[int]] = {}
        for root_id, event_id in pairs:
            entry = folds.get(root_id)
            if entry is None:
                folds[root_id] = [event_id, 1]
            else:
                entry[0] ^= event_id
                entry[1] += 1
        for root_id, (x, cnt) in folds.items():
            yield int(root_id), int(x), int(cnt)

    def anchor_batch(self, pairs: Sequence[Tuple[int, int]]) -> None:
        """Anchor many ``(root_id, event_id)`` pairs in one XOR fold per tree.

        Equivalent to calling :meth:`anchor` once per pair (XOR is
        commutative); pairs whose root is no longer pending are dropped, just
        as the per-event path drops them.
        """
        if not pairs:
            return
        pending = self._pending
        applied = 0
        for root_id, fold, count in self._folds(pairs):
            tree = pending.get(root_id)
            if tree is None:
                continue
            tree.ack_hash ^= fold
            tree.anchored_count += count
            applied += count
        self.stats.anchors += applied
        self.stats.bulk_anchors += applied

    def ack_batch(self, pairs: Sequence[Tuple[int, int]]) -> None:
        """Ack many ``(root_id, event_id)`` pairs in one XOR fold per tree.

        Completion is checked once per affected tree, after its whole fold has
        been applied — callers must apply :meth:`anchor_batch` first so no
        tree's hash can transiently return to zero mid-batch (the classic path
        has the same ordering: children anchor before their parent acks).
        """
        if not pairs:
            return
        pending = self._pending
        stats = self.stats
        applied = 0
        for root_id, fold, count in self._folds(pairs):
            tree = pending.get(root_id)
            if tree is None:
                stats.late_acks += count
                continue
            tree.ack_hash ^= fold
            tree.acked_count += count
            applied += count
            if tree.complete:
                self._complete(root_id)
        stats.acks += applied
        stats.bulk_acks += applied

    def settle_batch(
        self,
        root_ids: Sequence[int],
        anchored_counts: Sequence[int],
        acked_counts: Sequence[int],
    ) -> None:
        """Apply anchor/ack *pairs whose XOR contributions already cancelled*.

        A batch sweep that both anchors and acks the same event never needs to
        touch the tree's hash — the two XORs annihilate — but the per-tree
        counters and the completion check still have to advance exactly as the
        per-event path would have advanced them.  Used for trees that existed
        before the sweep and had in-sweep traffic routed through them.
        """
        pending = self._pending
        stats = self.stats
        total_anchored = 0
        total_acked = 0
        for root_id, anchored, acked in zip(root_ids, anchored_counts, acked_counts):
            tree = pending.get(int(root_id))
            if tree is None:
                stats.late_acks += int(acked)
                continue
            tree.anchored_count += int(anchored)
            tree.acked_count += int(acked)
            total_anchored += int(anchored)
            total_acked += int(acked)
            if tree.complete:
                self._complete(int(root_id))
        stats.anchors += total_anchored
        stats.acks += total_acked
        stats.bulk_anchors += total_anchored
        stats.bulk_acks += total_acked

    # --------------------------------------------------------------- internal
    def _complete(self, root_id: int) -> None:
        tree = self._pending.pop(root_id, None)
        if tree is None:
            return
        if tree.timeout_timer is not None:
            tree.timeout_timer.cancel()
        self.stats.completed += 1
        if self.on_complete is not None:
            self.on_complete(root_id)

    def _fail(self, root_id: int) -> None:
        tree = self._pending.pop(root_id, None)
        if tree is None:
            return
        if tree.timeout_timer is not None:
            tree.timeout_timer.cancel()
        self.stats.failed += 1
        self.failed_roots.append(root_id)
        if self.on_fail is not None:
            self.on_fail(root_id)

    def _check_timeout(self, root_id: int) -> None:
        tree = self._pending.get(root_id)
        if tree is None:
            return
        if tree.complete:
            self._complete(root_id)
        else:
            self._fail(root_id)

    # ------------------------------------------------------------ maintenance
    def flush(self) -> int:
        """Drop all pending trees without failing them; returns how many were dropped.

        Used when acking is turned off mid-run (DCR/CCR do not ack data events).
        """
        count = len(self._pending)
        for tree in self._pending.values():
            if tree.timeout_timer is not None:
                tree.timeout_timer.cancel()
        self._pending.clear()
        return count
