"""Storm-style acknowledgment service (XOR causal trees).

Every root event emitted by a source registers a 64-bit id with the acker.
Each causally derived event XORs its id into the tree's hash when it is
anchored (emitted) and again when it is acked (processed); once every event
has been anchored and acked exactly once the hash returns to zero and the
tree is *complete*.  If the hash is still non-zero when the timeout expires
(30 s by default) the tree has *failed* and the source replays the cached
root event.

This is exactly the mechanism the paper's DSM baseline relies on for
reliability, and the source of its large catch-up and recovery times: events
in flight when the rebalance kills executors never complete their trees and
are replayed only after the 30 s timeout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sim import Simulator, Timer


@dataclass
class PendingTree:
    """Tracking state for one root event's causal tree."""

    root_id: int
    registered_at: float
    ack_hash: int = 0
    anchored_count: int = 0
    acked_count: int = 0
    timeout_timer: Optional[Timer] = None

    @property
    def complete(self) -> bool:
        """Whether every anchored event has been acked (hash returned to zero)."""
        return self.ack_hash == 0 and self.anchored_count > 0


@dataclass
class AckerStats:
    """Counters kept by the acker service."""

    registered: int = 0
    completed: int = 0
    failed: int = 0
    anchors: int = 0
    acks: int = 0
    late_acks: int = 0


class AckerService:
    """Tracks causal trees of root events and detects completion or timeout.

    Callbacks
    ---------
    ``on_complete(root_id)``
        Invoked when a tree completes; the source uses this to drop the cached
        root event.
    ``on_fail(root_id)``
        Invoked when a tree times out; the source uses this to replay the root.
    """

    def __init__(
        self,
        sim: Simulator,
        timeout_s: float = 30.0,
        on_complete: Optional[Callable[[int], None]] = None,
        on_fail: Optional[Callable[[int], None]] = None,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError("ack timeout must be positive")
        self.sim = sim
        self.timeout_s = timeout_s
        self.on_complete = on_complete
        self.on_fail = on_fail
        self._pending: Dict[int, PendingTree] = {}
        self.stats = AckerStats()
        self.failed_roots: List[int] = []

    # ----------------------------------------------------------- registration
    def register(self, root_id: int) -> None:
        """Start tracking a new root event (or a replayed instance of it)."""
        if root_id in self._pending:
            # A replay of a root that is somehow still tracked: reset the tree.
            existing = self._pending[root_id]
            if existing.timeout_timer is not None:
                existing.timeout_timer.cancel()
        tree = PendingTree(root_id=root_id, registered_at=self.sim.now)
        tree.timeout_timer = self.sim.schedule(self.timeout_s, self._check_timeout, root_id)
        self._pending[root_id] = tree
        self.stats.registered += 1

    def is_pending(self, root_id: int) -> bool:
        """Whether the given root is still being tracked."""
        return root_id in self._pending

    @property
    def pending_count(self) -> int:
        """Number of trees currently being tracked."""
        return len(self._pending)

    # ------------------------------------------------------------ ack / anchor
    def anchor(self, root_id: int, event_id: int) -> None:
        """Record that ``event_id`` was emitted as part of ``root_id``'s tree."""
        tree = self._pending.get(root_id)
        if tree is None:
            return
        tree.ack_hash ^= event_id
        tree.anchored_count += 1
        self.stats.anchors += 1

    def ack(self, root_id: int, event_id: int) -> None:
        """Record that ``event_id`` has been fully processed by its task."""
        tree = self._pending.get(root_id)
        if tree is None:
            self.stats.late_acks += 1
            return
        tree.ack_hash ^= event_id
        tree.acked_count += 1
        self.stats.acks += 1
        if tree.complete:
            self._complete(root_id)

    def fail(self, root_id: int) -> None:
        """Explicitly fail a tree (e.g. user logic error), triggering a replay."""
        if root_id in self._pending:
            self._fail(root_id)

    # --------------------------------------------------------------- internal
    def _complete(self, root_id: int) -> None:
        tree = self._pending.pop(root_id, None)
        if tree is None:
            return
        if tree.timeout_timer is not None:
            tree.timeout_timer.cancel()
        self.stats.completed += 1
        if self.on_complete is not None:
            self.on_complete(root_id)

    def _fail(self, root_id: int) -> None:
        tree = self._pending.pop(root_id, None)
        if tree is None:
            return
        if tree.timeout_timer is not None:
            tree.timeout_timer.cancel()
        self.stats.failed += 1
        self.failed_roots.append(root_id)
        if self.on_fail is not None:
            self.on_fail(root_id)

    def _check_timeout(self, root_id: int) -> None:
        tree = self._pending.get(root_id)
        if tree is None:
            return
        if tree.complete:
            self._complete(root_id)
        else:
            self._fail(root_id)

    # ------------------------------------------------------------ maintenance
    def flush(self) -> int:
        """Drop all pending trees without failing them; returns how many were dropped.

        Used when acking is turned off mid-run (DCR/CCR do not ack data events).
        """
        count = len(self._pending)
        for tree in self._pending.values():
            if tree.timeout_timer is not None:
                tree.timeout_timer.cancel()
        self._pending.clear()
        return count
