"""Redis-like external key-value store with a latency model.

Storm persists checkpointed task state to Redis; the DCR strategy persists
just the user state, while CCR additionally persists each task's captured
pending-event list.  The only property of Redis the paper's results depend on
is its write/read latency, for which the paper reports a micro-benchmark:
"it takes just 100 ms to checkpoint 2000 events to Redis from Storm".

The default latency model is calibrated to that number: with ~100 bytes per
event, 2000 events are ~200 kB, so the per-byte cost is 0.5 µs/byte on top of
a 0.5 ms base round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.sim import Simulator


def checkpoint_key(dataflow_name: str, executor_id: str) -> str:
    """Canonical state-store key an executor's checkpoint lives under.

    Shared by the executor's COMMIT/INIT path and the rescale
    re-partitioner: both must address exactly the same keys, or a rescale
    would silently restore fresh state.
    """
    return f"ckpt/{dataflow_name}/{executor_id}"


@dataclass
class StoredValue:
    """A value held by the store, with versioning for repeated commits."""

    key: str
    value: Any
    size_bytes: int
    version: int
    stored_at: float


@dataclass
class StateStoreStats:
    """Operation counters and byte totals for the store."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    total_write_latency_s: float = 0.0
    total_read_latency_s: float = 0.0


class StateStore:
    """In-process key-value store with simulated network/IO latency.

    All operations are asynchronous with respect to simulated time: the caller
    provides an ``on_complete`` callback which is invoked after the modelled
    latency has elapsed.  The value itself is stored immediately (the store is
    not a source of inconsistency in the paper's protocols; only its latency
    matters).
    """

    #: Nominal serialized size of one captured event (bytes); calibrated so the
    #: paper's 2000-event / 100 ms micro-benchmark holds.
    EVENT_SIZE_BYTES = 100

    def __init__(
        self,
        sim: Simulator,
        base_latency_s: float = 0.0005,
        per_byte_latency_s: float = 5.0e-7,
    ) -> None:
        self.sim = sim
        self.base_latency_s = base_latency_s
        self.per_byte_latency_s = per_byte_latency_s
        self._data: Dict[str, StoredValue] = {}
        self.stats = StateStoreStats()

    # -------------------------------------------------------------- latency
    def write_latency(self, size_bytes: int) -> float:
        """Modelled latency for writing ``size_bytes`` bytes."""
        return self.base_latency_s + max(0, size_bytes) * self.per_byte_latency_s

    def read_latency(self, size_bytes: int) -> float:
        """Modelled latency for reading ``size_bytes`` bytes."""
        return self.base_latency_s + max(0, size_bytes) * self.per_byte_latency_s

    # ------------------------------------------------------------ operations
    def put(
        self,
        key: str,
        value: Any,
        size_bytes: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> float:
        """Store ``value`` under ``key``; returns the modelled write latency.

        ``on_complete`` is scheduled after the latency has elapsed.
        """
        previous = self._data.get(key)
        version = previous.version + 1 if previous else 1
        self._data[key] = StoredValue(
            key=key, value=value, size_bytes=size_bytes, version=version, stored_at=self.sim.now
        )
        latency = self.write_latency(size_bytes)
        self.stats.puts += 1
        self.stats.bytes_written += max(0, size_bytes)
        self.stats.total_write_latency_s += latency
        if on_complete is not None:
            self.sim.schedule_fast(latency, on_complete)
        return latency

    def get(
        self,
        key: str,
        on_complete: Optional[Callable[[Any], None]] = None,
        default: Any = None,
    ) -> float:
        """Read the value under ``key``; returns the modelled read latency.

        ``on_complete(value)`` is scheduled after the latency has elapsed; the
        ``default`` is passed if the key is absent.
        """
        stored = self._data.get(key)
        size = stored.size_bytes if stored else 0
        value = stored.value if stored else default
        latency = self.read_latency(size)
        self.stats.gets += 1
        self.stats.bytes_read += size
        self.stats.total_read_latency_s += latency
        if on_complete is not None:
            self.sim.schedule_fast(latency, on_complete, (value,))
        return latency

    def delete(self, key: str) -> bool:
        """Remove ``key`` from the store (no latency modelled); returns whether it existed."""
        self.stats.deletes += 1
        return self._data.pop(key, None) is not None

    # ------------------------------------------------------------ inspection
    def peek(self, key: str, default: Any = None) -> Any:
        """Read a value synchronously without latency (for tests and metrics)."""
        stored = self._data.get(key)
        return stored.value if stored else default

    def contains(self, key: str) -> bool:
        """Whether a value is stored under ``key``."""
        return key in self._data

    def version(self, key: str) -> int:
        """Stored version of ``key`` (0 if absent)."""
        stored = self._data.get(key)
        return stored.version if stored else 0

    def keys(self) -> List[str]:
        """All stored keys."""
        return list(self._data.keys())

    def __len__(self) -> int:
        return len(self._data)

    # --------------------------------------------------------------- helpers
    def checkpoint_size_bytes(self, state_size_bytes: int, pending_events: int = 0) -> int:
        """Serialized size of a checkpoint with optional captured events (CCR)."""
        return max(0, state_size_bytes) + max(0, pending_events) * self.EVENT_SIZE_BYTES
