"""Grouped-state re-partitioning for runtime parallelism changes (rescale).

When a task's instance count changes mid-migration, the checkpointed state of
its *old* instances must be redistributed to the *new* instances before the
INIT wave restores them.  The contract mirrors how keyed state works in
production DSPS engines (Storm's ``KeyValueState`` / Flink's keyed state):

* entries under the reserved state key :data:`PARTITIONED_STATE_KEY`
  (``"by_key"``) form a key -> value mapping partitioned by the **same stable
  CRC-32 hash the router uses for FIELDS groupings**
  (:func:`repro.dataflow.grouping.stable_field_index`).  After a rescale, the
  entry for key ``k`` lives on instance ``crc32(k) % new_count`` -- exactly
  where the router will deliver key ``k``'s future events, preserving
  key -> instance affinity;
* every other state entry is treated as a per-instance aggregate: numeric
  values are **summed** across the old instances (a count of events seen stays
  a correct global count) and the merged aggregates are assigned to instance
  0; non-numeric entries are taken from the lowest-indexed old instance that
  has them;
* captured pending events (CCR) are re-routed to the instance that would now
  receive them: by field key for FIELDS-grouped tasks, round-robin otherwise.

The re-partitioner reads the old instances' committed checkpoints from the
state store, writes the new instances' checkpoints, and deletes the stale
keys, so the subsequent INIT wave restores every new instance from exactly
the re-partitioned state.  The total modelled store latency (serial reads +
writes) is reported in :class:`RepartitionStats`; DCR/CCR wait it out before
issuing the rebalance, while DSM lets the state-send overlap its (much
longer) worker-restart window, Storm-style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dataflow.grouping import Grouping, field_key_of, stable_field_index
from repro.reliability.statestore import StateStore, checkpoint_key

#: Reserved state key whose dict value is partitioned by CRC-32 of entry key.
PARTITIONED_STATE_KEY = "by_key"


@dataclass
class RepartitionStats:
    """What one task's re-partitioning moved around."""

    task: str
    old_count: int
    new_count: int
    keyed_entries: int = 0
    aggregate_entries: int = 0
    pending_events: int = 0
    #: New checkpoint values written, old keys deleted.
    writes: int = 0
    deletes: int = 0
    #: Total modelled store latency of the re-partitioning (the coordinator
    #: reads every old checkpoint, then writes every new one, serially).
    store_latency_s: float = 0.0


def merge_states(states: Sequence[Dict[str, Any]]) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Merge old per-instance states into ``(by_key, aggregates)``.

    ``by_key`` is the union of every instance's partitioned dict -- the old
    partitioning guarantees the key sets are disjoint, but a duplicate (e.g.
    state written before FIELDS affinity was enforced) resolves to the
    highest-indexed instance's value, deterministically.  ``aggregates`` sums
    numeric entries and keeps the first-seen value for anything else.
    """
    by_key: Dict[str, Any] = {}
    aggregates: Dict[str, Any] = {}
    for state in states:
        if not state:
            continue
        for key, value in state.items():
            if key == PARTITIONED_STATE_KEY:
                if isinstance(value, dict):
                    by_key.update(value)
                continue
            if isinstance(value, bool):
                # bools are ints in Python; treat them as flags, not counters.
                if key not in aggregates:
                    aggregates[key] = value
            elif isinstance(value, (int, float)):
                aggregates[key] = aggregates.get(key, 0) + value
            elif key not in aggregates:
                aggregates[key] = value
    return by_key, aggregates


def split_state(
    by_key: Dict[str, Any], aggregates: Dict[str, Any], new_count: int
) -> List[Dict[str, Any]]:
    """Distribute merged state over ``new_count`` instances.

    Instance ``i`` receives the ``by_key`` entries whose stable hash maps to
    ``i``; the merged aggregates go to instance 0 (a task-level total has
    exactly one owner, so it is neither lost nor double-counted).
    """
    if new_count < 1:
        raise ValueError("new_count must be >= 1")
    parts: List[Dict[str, Any]] = [{} for _ in range(new_count)]
    if by_key:
        partitions: List[Dict[str, Any]] = [{} for _ in range(new_count)]
        for key, value in by_key.items():
            partitions[stable_field_index(str(key), new_count)][key] = value
        for index in range(new_count):
            if partitions[index]:
                parts[index][PARTITIONED_STATE_KEY] = partitions[index]
    if aggregates:
        parts[0].update(aggregates)
    return parts


def split_pending_events(
    pending: Sequence[Any], new_count: int, keyed: bool
) -> List[List[Any]]:
    """Assign captured pending events (CCR) to their new owner instances.

    FIELDS-grouped tasks route each event by its field key -- the same
    mapping future live deliveries will use -- so replayed state updates land
    on the instance that owns the key.  Non-keyed tasks spread the events
    round-robin, preserving the original capture order within each instance.
    """
    buckets: List[List[Any]] = [[] for _ in range(new_count)]
    for position, event in enumerate(pending):
        if keyed:
            index = stable_field_index(field_key_of(getattr(event, "payload", None)), new_count)
        else:
            index = position % new_count
        buckets[index].append(event)
    return buckets


def repartition_task_state(
    statestore: StateStore,
    dataflow_name: str,
    task: Any,
    old_count: int,
    new_count: int,
    keyed: bool,
) -> RepartitionStats:
    """Re-key one rescaled task's checkpointed state to its new instance set.

    Reads the committed checkpoints of the ``old_count`` instances, merges
    and re-splits them per the module contract, writes one checkpoint per new
    instance (paying the modelled write latency) and deletes stale keys, so
    the INIT wave that follows the rebalance restores the new owners.
    ``keyed`` should be true when the task has a FIELDS-grouped input edge
    (captured pending events then re-route by field key).
    """
    stats = RepartitionStats(task=task.name, old_count=old_count, new_count=new_count)
    old_values: List[Optional[Dict[str, Any]]] = []
    checkpoint_id = 0
    for index in range(old_count):
        key = checkpoint_key(dataflow_name, f"{task.name}#{index}")
        value = statestore.peek(key)
        old_values.append(value)
        if value is not None:
            # Account the read through the store (stats + latency) -- the
            # value itself was taken synchronously via peek above.
            stats.store_latency_s += statestore.get(key)
        if value and value.get("checkpoint_id"):
            checkpoint_id = max(checkpoint_id, value["checkpoint_id"])
    if not any(old_values):
        # Nothing committed yet (e.g. DSM before its first periodic
        # checkpoint): the new instances will initialize fresh.
        return stats

    states = [v.get("state") or {} for v in old_values if v]
    pending: List[Any] = []
    for value in old_values:
        if value:
            pending.extend(value.get("pending") or [])

    by_key, aggregates = merge_states(states)
    stats.keyed_entries = len(by_key)
    stats.aggregate_entries = len(aggregates)
    stats.pending_events = len(pending)

    new_states = split_state(by_key, aggregates, new_count)
    new_pending = split_pending_events(pending, new_count, keyed)

    for index in range(new_count):
        key = checkpoint_key(dataflow_name, f"{task.name}#{index}")
        value = {
            "state": new_states[index],
            "pending": new_pending[index],
            "checkpoint_id": checkpoint_id,
        }
        size = statestore.checkpoint_size_bytes(task.state_size_bytes, len(new_pending[index]))
        stats.store_latency_s += statestore.put(key, value, size)
        stats.writes += 1
    for index in range(new_count, old_count):
        if statestore.delete(checkpoint_key(dataflow_name, f"{task.name}#{index}")):
            stats.deletes += 1
    return stats


def task_is_keyed(dataflow: Any, task_name: str) -> bool:
    """Whether any input edge of ``task_name`` uses FIELDS grouping."""
    return any(edge.grouping is Grouping.FIELDS for edge in dataflow.in_edges(task_name))


def repartition_rescaled_tasks(runtime: Any, record: Any) -> List[RepartitionStats]:
    """Re-partition every task changed by a :class:`RescaleRecord`.

    Convenience wrapper the migration strategies call between
    ``runtime.apply_rescale`` and the rebalance; ``runtime`` supplies the
    statestore and the dataflow, ``record.changes`` the old/new counts.
    The sum of the returned ``store_latency_s`` is the modelled time the
    redistribution takes.
    """
    results: List[RepartitionStats] = []
    for task_name in sorted(record.changes):
        old_count, new_count = record.changes[task_name]
        results.append(
            repartition_task_state(
                runtime.statestore,
                runtime.dataflow.name,
                runtime.dataflow.task(task_name),
                old_count,
                new_count,
                keyed=task_is_keyed(runtime.dataflow, task_name),
            )
        )
    return results
