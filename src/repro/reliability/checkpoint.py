"""Checkpoint coordination: PREPARE / COMMIT / ROLLBACK / INIT waves.

Storm's state management drives a three-phase checkpoint through the dataflow
from a special *checkpoint source task*.  The coordinator here plays that
role: it emits control-event waves (either **sequentially** along the dataflow
edges, or **broadcast** directly to every task instance as CCR's modified
``TopologyBuilder`` wiring does), tracks per-executor acknowledgments, and
invokes completion callbacks that the migration strategies chain into their
protocols.

The coordinator is engine-agnostic: the runtime *binds* two callables into it,
one that actually injects a wave's control events into the dataflow and one
that reports which executors are expected to acknowledge the wave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.dataflow.event import CheckpointAction
from repro.sim import PeriodicTimer, Simulator


class WaveMode(Enum):
    """How a checkpoint wave's control events reach the tasks."""

    #: Events are injected at the entry tasks and forwarded along dataflow
    #: edges, guaranteeing they are the last event behind all in-flight data
    #: (used by DCR for all actions, and by CCR for COMMIT).
    SEQUENTIAL = "sequential"
    #: Events are placed directly at the end of every task instance's input
    #: queue via the hub-and-spoke checkpoint channel (used by CCR for
    #: PREPARE and INIT).
    BROADCAST = "broadcast"


class WaveStatus(Enum):
    """Lifecycle of a checkpoint wave."""

    IN_PROGRESS = "in_progress"
    COMPLETE = "complete"
    ROLLED_BACK = "rolled_back"
    CANCELLED = "cancelled"


#: Emitter signature bound by the runtime: inject a wave into the dataflow.
WaveEmitter = Callable[[CheckpointAction, int, WaveMode], None]
#: Provider of the executor ids expected to acknowledge a wave.
ExpectedProvider = Callable[[], Set[str]]


@dataclass
class CheckpointWave:
    """Tracking state for one wave of one action."""

    checkpoint_id: int
    action: CheckpointAction
    mode: WaveMode
    expected: Set[str]
    started_at: float
    acked: Set[str] = field(default_factory=set)
    status: WaveStatus = WaveStatus.IN_PROGRESS
    completed_at: Optional[float] = None
    emit_count: int = 0
    on_complete: Optional[Callable[["CheckpointWave"], None]] = None
    resend_timer: Optional[PeriodicTimer] = None

    @property
    def complete(self) -> bool:
        """Whether every expected executor has acknowledged the wave."""
        return self.expected.issubset(self.acked)

    @property
    def duration_s(self) -> Optional[float]:
        """Wave duration, if completed."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    @property
    def pending(self) -> Set[str]:
        """Executors that have not acknowledged yet."""
        return self.expected - self.acked


class CheckpointCoordinator:
    """Emits checkpoint waves and tracks their acknowledgment.

    The coordinator supports:

    * one-shot waves with an optional re-send timer (DCR/CCR re-emit INIT every
      second; DSM's INIT is re-sent only after the 30 s ack timeout),
    * a full checkpoint (PREPARE followed by COMMIT) used both periodically by
      DSM and just-in-time by DCR/CCR,
    * periodic checkpointing at a fixed interval (Storm's default 30 s).
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._emitter: Optional[WaveEmitter] = None
        self._expected_provider: Optional[ExpectedProvider] = None
        self._waves: Dict[Tuple[int, CheckpointAction], CheckpointWave] = {}
        self._checkpoint_counter = 0
        self._periodic: Optional[PeriodicTimer] = None
        self._periodic_in_flight = False
        self.history: List[CheckpointWave] = []

    # ----------------------------------------------------------------- wiring
    def bind(self, emitter: WaveEmitter, expected_provider: ExpectedProvider) -> None:
        """Bind the runtime's wave emitter and expected-ack provider."""
        self._emitter = emitter
        self._expected_provider = expected_provider

    @property
    def bound(self) -> bool:
        """Whether the coordinator has been bound to a runtime."""
        return self._emitter is not None and self._expected_provider is not None

    def new_checkpoint_id(self) -> int:
        """Allocate a fresh checkpoint (wave) id."""
        self._checkpoint_counter += 1
        return self._checkpoint_counter

    @property
    def last_checkpoint_id(self) -> int:
        """Most recently allocated checkpoint id (0 if none)."""
        return self._checkpoint_counter

    # ------------------------------------------------------------------ waves
    def start_wave(
        self,
        action: CheckpointAction,
        checkpoint_id: Optional[int] = None,
        mode: WaveMode = WaveMode.SEQUENTIAL,
        on_complete: Optional[Callable[[CheckpointWave], None]] = None,
        resend_interval_s: Optional[float] = None,
        expected: Optional[Set[str]] = None,
    ) -> CheckpointWave:
        """Start a wave of ``action`` control events.

        Parameters
        ----------
        action:
            PREPARE, COMMIT, ROLLBACK or INIT.
        checkpoint_id:
            Wave id; allocated automatically if omitted.
        mode:
            Sequential (along dataflow edges) or broadcast (hub-and-spoke).
        on_complete:
            Called with the wave once all expected executors have acked.
        resend_interval_s:
            If given, the wave's control events are re-emitted at this period
            until the wave completes.  Executors ignore duplicates but still
            acknowledge them, so lost control events are eventually recovered.
        expected:
            Explicit set of executor ids expected to ack; defaults to the
            runtime-provided set of live user-task executors.
        """
        if not self.bound:
            raise RuntimeError("CheckpointCoordinator.start_wave called before bind()")
        if checkpoint_id is None:
            checkpoint_id = self.new_checkpoint_id()
        expected_set = set(expected) if expected is not None else set(self._expected_provider())
        wave = CheckpointWave(
            checkpoint_id=checkpoint_id,
            action=action,
            mode=mode,
            expected=expected_set,
            started_at=self.sim.now,
            on_complete=on_complete,
        )
        self._waves[(checkpoint_id, action)] = wave
        self._emit(wave)
        if resend_interval_s is not None and resend_interval_s > 0:
            wave.resend_timer = self.sim.every(resend_interval_s, self._resend, wave)
        if not expected_set:
            self._finish(wave)
        return wave

    def _emit(self, wave: CheckpointWave) -> None:
        wave.emit_count += 1
        self._emitter(wave.action, wave.checkpoint_id, wave.mode)

    def _resend(self, wave: CheckpointWave) -> None:
        if wave.status is not WaveStatus.IN_PROGRESS:
            return
        self._emit(wave)

    def notify_ack(self, executor_id: str, action: CheckpointAction, checkpoint_id: int) -> None:
        """Record that an executor acknowledged the given wave (idempotent)."""
        wave = self._waves.get((checkpoint_id, action))
        if wave is None or wave.status is not WaveStatus.IN_PROGRESS:
            return
        wave.acked.add(executor_id)
        if wave.complete:
            self._finish(wave)

    def _finish(self, wave: CheckpointWave) -> None:
        if wave.status is not WaveStatus.IN_PROGRESS:
            return
        wave.status = WaveStatus.COMPLETE
        wave.completed_at = self.sim.now
        if wave.resend_timer is not None:
            wave.resend_timer.cancel()
        self.history.append(wave)
        if wave.on_complete is not None:
            wave.on_complete(wave)

    def discard_executors(self, executor_ids: Set[str]) -> None:
        """Remove retired executors from every in-progress wave's expected set.

        A rescale can retire executors while a wave (e.g. a periodic
        checkpoint under DSM) is still collecting acknowledgments; without
        this, the wave would wait forever on an executor that no longer
        exists.  Waves whose remaining expectation is now fully acked are
        completed immediately.
        """
        if not executor_ids:
            return
        for wave in list(self._waves.values()):
            if wave.status is not WaveStatus.IN_PROGRESS:
                continue
            if wave.expected & executor_ids:
                wave.expected -= executor_ids
                if wave.complete:
                    self._finish(wave)

    def cancel_wave(self, wave: CheckpointWave) -> None:
        """Abort a wave without completing it."""
        if wave.status is WaveStatus.IN_PROGRESS:
            wave.status = WaveStatus.CANCELLED
            if wave.resend_timer is not None:
                wave.resend_timer.cancel()
            self.history.append(wave)

    def wave(self, checkpoint_id: int, action: CheckpointAction) -> Optional[CheckpointWave]:
        """Look up a wave by id and action."""
        return self._waves.get((checkpoint_id, action))

    # ------------------------------------------------------- full checkpoints
    def run_checkpoint(
        self,
        prepare_mode: WaveMode = WaveMode.SEQUENTIAL,
        commit_mode: WaveMode = WaveMode.SEQUENTIAL,
        on_complete: Optional[Callable[[int], None]] = None,
        checkpoint_id: Optional[int] = None,
    ) -> int:
        """Run a full checkpoint: PREPARE wave, then COMMIT wave.

        Returns the checkpoint id.  ``on_complete(checkpoint_id)`` fires once
        the COMMIT wave has been acknowledged by every task, i.e. all task
        states (and, for CCR, captured events) are persisted.
        """
        cid = checkpoint_id if checkpoint_id is not None else self.new_checkpoint_id()

        def _after_commit(_wave: CheckpointWave) -> None:
            self._periodic_in_flight = False
            if on_complete is not None:
                on_complete(cid)

        def _after_prepare(_wave: CheckpointWave) -> None:
            self.start_wave(CheckpointAction.COMMIT, cid, commit_mode, on_complete=_after_commit)

        self.start_wave(CheckpointAction.PREPARE, cid, prepare_mode, on_complete=_after_prepare)
        return cid

    # --------------------------------------------------------------- periodic
    def start_periodic(self, interval_s: float = 30.0) -> None:
        """Enable periodic checkpointing (Storm's default behaviour under DSM)."""
        if self._periodic is not None:
            raise RuntimeError("periodic checkpointing is already enabled")
        self._periodic = self.sim.every(interval_s, self._periodic_tick)

    def _periodic_tick(self) -> None:
        if self._periodic_in_flight:
            return
        self._periodic_in_flight = True
        self.run_checkpoint()

    def stop_periodic(self) -> None:
        """Disable periodic checkpointing."""
        if self._periodic is not None:
            self._periodic.cancel()
            self._periodic = None

    @property
    def periodic_enabled(self) -> bool:
        """Whether periodic checkpointing is currently active."""
        return self._periodic is not None

    # -------------------------------------------------------------- inspection
    def completed_waves(self, action: Optional[CheckpointAction] = None) -> List[CheckpointWave]:
        """All completed waves, optionally filtered by action."""
        waves = [w for w in self.history if w.status is WaveStatus.COMPLETE]
        if action is not None:
            waves = [w for w in waves if w.action is action]
        return waves

    def last_committed_checkpoint(self) -> Optional[int]:
        """Id of the most recent checkpoint whose COMMIT wave completed."""
        commits = self.completed_waves(CheckpointAction.COMMIT)
        if not commits:
            return None
        return max(w.checkpoint_id for w in commits)
