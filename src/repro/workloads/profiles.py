"""Input-rate profiles.

The paper's evaluation keeps the source rate fixed at 8 events/second; these
profiles exist so examples (and downstream users) can model the *dynamism*
that motivates migration in the first place -- input-rate changes that make
the current placement sub-optimal and trigger a scale-in or scale-out.

A profile maps simulated time to an instantaneous event rate.  The helper
:meth:`RateProfile.average_rate` integrates it over an interval, which the
examples use to pick a target VM allocation (one instance per 8 ev/s, as in
the paper).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple


class RateProfile(ABC):
    """Time-varying input rate (events/second)."""

    @abstractmethod
    def rate_at(self, time_s: float) -> float:
        """Instantaneous rate at the given simulated time."""

    def average_rate(self, start_s: float, end_s: float, samples: int = 100) -> float:
        """Average rate over ``[start_s, end_s]`` (simple midpoint sampling)."""
        if end_s <= start_s:
            raise ValueError("end_s must be greater than start_s")
        step = (end_s - start_s) / samples
        total = 0.0
        for i in range(samples):
            total += self.rate_at(start_s + (i + 0.5) * step)
        return total / samples


@dataclass
class ConstantRateProfile(RateProfile):
    """Fixed rate, as used in all the paper's experiments (8 ev/s)."""

    rate: float = 8.0

    def rate_at(self, time_s: float) -> float:
        return self.rate


@dataclass
class StepProfile(RateProfile):
    """Rate that jumps between levels at given times.

    ``steps`` is a list of ``(start_time, rate)`` pairs sorted by time; the
    rate before the first step is the first rate.
    """

    steps: List[Tuple[float, float]]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("StepProfile needs at least one step")
        self.steps = sorted(self.steps, key=lambda s: s[0])

    def rate_at(self, time_s: float) -> float:
        rate = self.steps[0][1]
        for start, step_rate in self.steps:
            if time_s >= start:
                rate = step_rate
            else:
                break
        return rate


@dataclass
class RampProfile(RateProfile):
    """Linear ramp from ``start_rate`` to ``end_rate`` over ``[ramp_start, ramp_end]``."""

    start_rate: float
    end_rate: float
    ramp_start_s: float
    ramp_end_s: float

    def rate_at(self, time_s: float) -> float:
        if time_s <= self.ramp_start_s:
            return self.start_rate
        if time_s >= self.ramp_end_s:
            return self.end_rate
        fraction = (time_s - self.ramp_start_s) / (self.ramp_end_s - self.ramp_start_s)
        return self.start_rate + fraction * (self.end_rate - self.start_rate)


@dataclass
class BurstProfile(RateProfile):
    """A base rate with periodic multiplicative bursts.

    Models the "spiky" streams (e.g. social-media or alert storms) that make
    latency-sensitive applications want rapid elasticity.
    """

    base_rate: float = 8.0
    burst_multiplier: float = 4.0
    burst_period_s: float = 300.0
    burst_duration_s: float = 30.0

    def rate_at(self, time_s: float) -> float:
        if self.burst_period_s <= 0:
            return self.base_rate
        phase = time_s % self.burst_period_s
        if phase < self.burst_duration_s:
            return self.base_rate * self.burst_multiplier
        return self.base_rate


@dataclass
class DiurnalProfile(RateProfile):
    """A smooth day/night cycle: sinusoidal between base and peak rate.

    Models the diurnal load pattern of user-facing services (quiet nights,
    busy daytimes) that predictive, seasonality-aware scaling policies are
    built for.  The rate starts at ``base_rate`` (phase 0 = midnight), peaks
    at ``base_rate * peak_multiplier`` half a period later, and returns --
    ``rate(t) = base * (1 + (peak_mult - 1) * (1 - cos(2*pi*t/period)) / 2)``.
    """

    base_rate: float = 8.0
    peak_multiplier: float = 3.0
    period_s: float = 86400.0
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.peak_multiplier < 1.0:
            raise ValueError("peak_multiplier must be at least 1")

    def rate_at(self, time_s: float) -> float:
        swing = (self.peak_multiplier - 1.0) * 0.5
        cycle = 1.0 - math.cos(2.0 * math.pi * (time_s + self.phase_s) / self.period_s)
        return self.base_rate * (1.0 + swing * cycle)


# --------------------------------------------------------------- named presets
#: Factories for the named profiles the CLI and the elastic scenario runner
#: accept.  Each takes ``(base_rate, duration_s)`` and returns a profile whose
#: interesting dynamics fit inside ``[0, duration_s]``.
PROFILE_PRESETS: Dict[str, Callable[[float, float], RateProfile]] = {
    "constant": lambda base, duration: ConstantRateProfile(rate=base),
    # A rush-hour style surge: 1x -> 3x -> back to 1x.  The step times leave
    # room before and after the surge for the controller to observe steady
    # state, scale out, and scale back in.
    "surge": lambda base, duration: StepProfile(
        steps=[(0.0, base), (duration * 0.30, base * 3.0), (duration * 0.60, base)]
    ),
    # A linear climb to 3x that stays high (scale-out only).
    "ramp": lambda base, duration: RampProfile(
        start_rate=base, end_rate=base * 3.0,
        ramp_start_s=duration * 0.25, ramp_end_s=duration * 0.60,
    ),
    # Short periodic spikes, the classic hysteresis stress test.
    "burst": lambda base, duration: BurstProfile(
        base_rate=base, burst_multiplier=4.0,
        burst_period_s=max(duration / 4.0, 1.0),
        burst_duration_s=max(duration / 40.0, 0.5),
    ),
    # Two compressed day/night cycles per run: the seasonal pattern
    # Holt-Winters-style forecasters learn from the first cycle and
    # anticipate on the second.
    "diurnal": lambda base, duration: DiurnalProfile(
        base_rate=base, peak_multiplier=3.0, period_s=max(duration / 2.0, 1.0),
    ),
}


def profile_by_name(name: str, base_rate: float = 8.0, duration_s: float = 900.0) -> RateProfile:
    """Construct one of the named preset profiles, scaled to a run duration."""
    try:
        factory = PROFILE_PRESETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown rate profile {name!r}; choose from {sorted(PROFILE_PRESETS)}"
        ) from None
    return factory(base_rate, duration_s)
