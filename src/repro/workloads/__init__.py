"""Workload generation: synthetic event payloads and input-rate profiles.

The paper's experiments use synthetic events at a fixed 8 events/second; this
package provides the payload factories for the two application domains the
paper's DAGs model (GPS probes for Traffic, smart-meter readings for Grid), a
generic sensor payload, and input-rate profiles (constant, step, ramp, burst)
that examples use to exercise dynamism beyond the paper's fixed-rate setup.
"""

from repro.workloads.generator import (
    PayloadFactory,
    gps_payload_factory,
    sensor_payload_factory,
    smart_meter_payload_factory,
)
from repro.workloads.profiles import (
    PROFILE_PRESETS,
    BurstProfile,
    ConstantRateProfile,
    DiurnalProfile,
    RampProfile,
    RateProfile,
    StepProfile,
    profile_by_name,
)

__all__ = [
    "BurstProfile",
    "ConstantRateProfile",
    "DiurnalProfile",
    "PROFILE_PRESETS",
    "PayloadFactory",
    "RampProfile",
    "RateProfile",
    "StepProfile",
    "profile_by_name",
    "gps_payload_factory",
    "sensor_payload_factory",
    "smart_meter_payload_factory",
]
