"""Synthetic event payload factories.

A payload factory is a callable ``(sequence_number) -> payload`` plugged into a
:class:`~repro.dataflow.task.SourceTask`.  The factories here generate
deterministic pseudo-realistic payloads for the domains the paper's
application DAGs model: GPS probe events (Traffic) and smart-meter readings
(Grid), plus a generic sensor observation.  Payload contents never affect the
migration protocols (the paper uses dummy task logic), but they make the
examples and the fields-grouping path realistic.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict

from repro.sim import RandomSource

#: Type of a source payload factory.
PayloadFactory = Callable[[int], Dict[str, Any]]


def sensor_payload_factory(sensor_count: int = 100, seed: int = 7) -> PayloadFactory:
    """Generic sensor observation: cycling sensor ids with a noisy sinusoidal value."""
    rng = RandomSource(seed)

    def _factory(sequence: int) -> Dict[str, Any]:
        sensor_id = sequence % sensor_count
        base = 50.0 + 25.0 * math.sin(sequence / 40.0)
        noise = rng.gauss("sensor-noise", 0.0, 2.0)
        return {
            "seq": sequence,
            "key": f"sensor-{sensor_id}",
            "value": round(base + noise, 3),
        }

    return _factory


def gps_payload_factory(vehicle_count: int = 500, seed: int = 11) -> PayloadFactory:
    """GPS probe events as used by the Traffic application DAG.

    Vehicles move around a small grid of road segments; each event carries the
    vehicle id (the fields-grouping key), its segment, speed and heading.
    """
    rng = RandomSource(seed)

    def _factory(sequence: int) -> Dict[str, Any]:
        vehicle_id = sequence % vehicle_count
        segment = (sequence // vehicle_count + vehicle_id) % 64
        speed = max(0.0, rng.gauss("gps-speed", 38.0, 12.0))
        return {
            "seq": sequence,
            "key": f"vehicle-{vehicle_id}",
            "segment": f"seg-{segment}",
            "speed_kmph": round(speed, 1),
            "heading_deg": (vehicle_id * 37 + sequence) % 360,
        }

    return _factory


def smart_meter_payload_factory(meter_count: int = 1000, seed: int = 13) -> PayloadFactory:
    """Smart-meter readings as used by the Grid application DAG.

    Each event carries the meter id (the fields-grouping key), the interval
    energy consumption in kWh, and an ambient temperature reading so the
    weather branch has something to work with.
    """
    rng = RandomSource(seed)

    def _factory(sequence: int) -> Dict[str, Any]:
        meter_id = sequence % meter_count
        hour_of_day = (sequence // 3600) % 24
        diurnal = 0.4 + 0.3 * math.sin((hour_of_day - 6) / 24.0 * 2 * math.pi)
        usage = max(0.01, diurnal + rng.gauss("meter-noise", 0.0, 0.05))
        temperature = 24.0 + 8.0 * math.sin(sequence / 500.0) + rng.gauss("temp-noise", 0.0, 0.5)
        return {
            "seq": sequence,
            "key": f"meter-{meter_id}",
            "kwh": round(usage, 4),
            "temperature_c": round(temperature, 2),
        }

    return _factory
