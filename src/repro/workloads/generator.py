"""Synthetic event payload factories.

A payload factory is a callable ``(sequence_number) -> payload`` plugged into a
:class:`~repro.dataflow.task.SourceTask`.  The factories here generate
deterministic pseudo-realistic payloads for the domains the paper's
application DAGs model: GPS probe events (Traffic) and smart-meter readings
(Grid), plus a generic sensor observation.  Payload contents never affect the
migration protocols (the paper uses dummy task logic), but they make the
examples and the fields-grouping path realistic.

Every stochastic payload field is drawn from a *keyed* stream
(:func:`~repro.sim.rng.keyed_value` indexed by the sequence number), not from
a stateful ``random.Random``: ``factory(seq)`` is a pure function of
``(seed, seq)``, independent of how many payloads were generated before it or
in what order.  That is what lets a partition-parallel shard (see
:mod:`repro.sim.shard`) generate the subsequence ``i, i+N, i+2N, ...`` and
obtain byte-identical payloads to the unsharded run — and it keeps per-factory
memory constant instead of growing a stream table.  The ``partition`` argument
builds that remapping in: shard ``index`` of ``count`` sees local sequence
``s`` as global sequence ``s * count + index``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Optional, Tuple

from repro.sim import keyed_seed, keyed_value

#: Type of a source payload factory.
PayloadFactory = Callable[[int], Dict[str, Any]]

#: ``(index, count)`` pair naming one key partition of a sharded run.
Partition = Optional[Tuple[int, int]]


def _global_sequence(sequence: int, partition: Partition) -> int:
    """Map a factory-local sequence onto the global stream's sequence."""
    if partition is None:
        return sequence
    index, count = partition
    if count < 1 or not 0 <= index < count:
        raise ValueError(f"invalid partition {partition!r}")
    return sequence * count + index


def _keyed_gauss(seed: int, sequence: int, mu: float, sigma: float) -> float:
    """The ``sequence``-th Gaussian draw of channel ``seed`` (Box-Muller).

    Consumes the two keyed uniforms ``2*sequence`` and ``2*sequence + 1``, so
    the draw depends only on ``(seed, sequence)``.
    """
    u1 = keyed_value(seed, 2 * sequence)
    u2 = keyed_value(seed, 2 * sequence + 1)
    return mu + sigma * math.sqrt(-2.0 * math.log(1.0 - u1)) * math.cos(2.0 * math.pi * u2)


def sensor_payload_factory(
    sensor_count: int = 100, seed: int = 7, partition: Partition = None
) -> PayloadFactory:
    """Generic sensor observation: cycling sensor ids with a noisy sinusoidal value."""
    noise_seed = keyed_seed(seed, "payload", "sensor-noise")

    def _factory(sequence: int) -> Dict[str, Any]:
        sequence = _global_sequence(sequence, partition)
        sensor_id = sequence % sensor_count
        base = 50.0 + 25.0 * math.sin(sequence / 40.0)
        noise = _keyed_gauss(noise_seed, sequence, 0.0, 2.0)
        return {
            "seq": sequence,
            "key": f"sensor-{sensor_id}",
            "value": round(base + noise, 3),
        }

    return _factory


def gps_payload_factory(
    vehicle_count: int = 500, seed: int = 11, partition: Partition = None
) -> PayloadFactory:
    """GPS probe events as used by the Traffic application DAG.

    Vehicles move around a small grid of road segments; each event carries the
    vehicle id (the fields-grouping key), its segment, speed and heading.
    """
    speed_seed = keyed_seed(seed, "payload", "gps-speed")

    def _factory(sequence: int) -> Dict[str, Any]:
        sequence = _global_sequence(sequence, partition)
        vehicle_id = sequence % vehicle_count
        segment = (sequence // vehicle_count + vehicle_id) % 64
        speed = max(0.0, _keyed_gauss(speed_seed, sequence, 38.0, 12.0))
        return {
            "seq": sequence,
            "key": f"vehicle-{vehicle_id}",
            "segment": f"seg-{segment}",
            "speed_kmph": round(speed, 1),
            "heading_deg": (vehicle_id * 37 + sequence) % 360,
        }

    return _factory


def smart_meter_payload_factory(
    meter_count: int = 1000, seed: int = 13, partition: Partition = None
) -> PayloadFactory:
    """Smart-meter readings as used by the Grid application DAG.

    Each event carries the meter id (the fields-grouping key), the interval
    energy consumption in kWh, and an ambient temperature reading so the
    weather branch has something to work with.
    """
    meter_seed = keyed_seed(seed, "payload", "meter-noise")
    temp_seed = keyed_seed(seed, "payload", "temp-noise")

    def _factory(sequence: int) -> Dict[str, Any]:
        sequence = _global_sequence(sequence, partition)
        meter_id = sequence % meter_count
        hour_of_day = (sequence // 3600) % 24
        diurnal = 0.4 + 0.3 * math.sin((hour_of_day - 6) / 24.0 * 2 * math.pi)
        usage = max(0.01, diurnal + _keyed_gauss(meter_seed, sequence, 0.0, 0.05))
        temperature = (
            24.0
            + 8.0 * math.sin(sequence / 500.0)
            + _keyed_gauss(temp_seed, sequence, 0.0, 0.5)
        )
        return {
            "seq": sequence,
            "key": f"meter-{meter_id}",
            "kwh": round(usage, 4),
            "temperature_c": round(temperature, 2),
        }

    return _factory
