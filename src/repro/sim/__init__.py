"""Deterministic discrete-event simulation kernel.

Every timed behaviour in the reproduction -- event processing latency, queue
draining, checkpoint waves, ack timeouts, VM/worker restart delays -- is driven
by a single :class:`~repro.sim.kernel.Simulator` instance.  Wall-clock time is
never consulted, which makes every experiment bit-for-bit reproducible given a
seed.

Public classes
--------------
``Simulator``
    The event loop: a priority queue of scheduled callbacks and a virtual
    clock.
``Timer``
    Handle returned by :meth:`Simulator.schedule`; can be cancelled.
``PeriodicTimer``
    Convenience wrapper that re-schedules a callback at a fixed period until
    cancelled (used for periodic checkpoints, INIT re-sends, rate generators).
``RandomSource``
    Named, independently seeded ``random.Random`` streams so that adding a new
    consumer of randomness does not perturb existing experiments.
"""

from repro.sim.kernel import PeriodicTimer, SimulationError, Simulator, Timer
from repro.sim.rng import KeyedStream, RandomSource, keyed_seed, keyed_value

__all__ = [
    "KeyedStream",
    "PeriodicTimer",
    "RandomSource",
    "SimulationError",
    "Simulator",
    "Timer",
    "keyed_seed",
    "keyed_value",
]
