"""Discrete-event simulation kernel.

The kernel is intentionally small: a virtual clock, a priority queue of
scheduled callbacks, and helpers for periodic timers.  Components of the
Storm-like engine (executors, ackers, checkpoint coordinators, the cloud
substrate) interact only through :meth:`Simulator.schedule`, which keeps the
whole system deterministic and single-threaded.

Times are expressed in **seconds of simulated time** as floats.  Sub-millisecond
resolution is routinely used (e.g. state-store write latency).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the simulation kernel."""


class Timer:
    """Handle to a scheduled callback.

    A ``Timer`` is returned by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and can be cancelled before it fires.  After
    the callback has run (or the timer has been cancelled) the handle is inert.
    """

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: dict,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """Whether the timer is still pending (not cancelled, not fired)."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Timer(t={self.time:.6f}, {name}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self, start_time: float = 0.0) -> None:
        if not math.isfinite(start_time):
            raise SimulationError("start_time must be finite")
        self._now = float(start_time)
        self._queue: List[Tuple[float, int, Timer]] = []
        self._counter = itertools.count()
        self._running = False
        self._stopped = False
        self._processed = 0

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks that have been executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled (not yet executed, possibly cancelled) events."""
        return len(self._queue)

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Timer:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative and finite.  Returns a :class:`Timer`
        handle that may be cancelled before it fires.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Timer:
        """Schedule ``callback`` at an absolute simulated time."""
        if not math.isfinite(time):
            raise SimulationError("scheduled time must be finite")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, which is before now={self._now:.6f}"
            )
        if not callable(callback):
            raise SimulationError(f"callback must be callable, got {callback!r}")
        timer = Timer(time, next(self._counter), callback, args, kwargs)
        heapq.heappush(self._queue, (timer.time, timer.seq, timer))
        return timer

    def every(
        self,
        period: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
        **kwargs: Any,
    ) -> "PeriodicTimer":
        """Schedule ``callback`` to run every ``period`` seconds until cancelled.

        The first firing happens after ``start_delay`` seconds (default: one
        full period).
        """
        return PeriodicTimer(self, period, callback, args, kwargs, start_delay=start_delay)

    # ---------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue was
        empty (only cancelled timers or nothing at all).
        """
        while self._queue:
            _, _, timer = heapq.heappop(self._queue)
            if timer.cancelled:
                continue
            self._now = timer.time
            timer.fired = True
            self._processed += 1
            timer.callback(*timer.args, **timer.kwargs)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once simulated time would advance beyond this value.  The
            clock is left at ``until`` (if provided) or at the time of the last
            executed event.
        max_events:
            Safety valve: stop after this many callbacks.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue and not self._stopped:
                time_next = self._queue[0][0]
                if until is not None and time_next > until:
                    break
                if not self.step():
                    break
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Request the current :meth:`run` invocation to stop after the current event."""
        self._stopped = True

    def advance(self, delta: float) -> None:
        """Run the simulation for ``delta`` seconds of simulated time from now."""
        if delta < 0:
            raise SimulationError("cannot advance by a negative duration")
        self.run(until=self._now + delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.3f}, pending={len(self._queue)})"


class PeriodicTimer:
    """Repeating timer built on top of :class:`Simulator`.

    Used for the checkpoint coordinator's periodic checkpoint waves, the
    aggressive 1-second INIT re-sends of DCR/CCR, source-task event generation,
    and metric sampling.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        kwargs: Optional[dict] = None,
        start_delay: Optional[float] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._sim = sim
        self.period = period
        self._callback = callback
        self._args = args
        self._kwargs = kwargs or {}
        self._cancelled = False
        self.fire_count = 0
        first = period if start_delay is None else start_delay
        self._timer = sim.schedule(first, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fire_count += 1
        self._callback(*self._args, **self._kwargs)
        if not self._cancelled:
            self._timer = self._sim.schedule(self.period, self._fire)

    def cancel(self) -> None:
        """Stop future firings.  Idempotent."""
        self._cancelled = True
        if self._timer is not None:
            self._timer.cancel()

    @property
    def active(self) -> bool:
        """Whether the periodic timer will continue to fire."""
        return not self._cancelled
