"""Discrete-event simulation kernel.

The kernel is intentionally small: a virtual clock, a priority queue of
scheduled callbacks, and helpers for periodic timers.  Components of the
Storm-like engine (executors, ackers, checkpoint coordinators, the cloud
substrate) interact only through the ``schedule*`` methods, which keeps the
whole system deterministic and single-threaded.

Two scheduling paths exist:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return a
  :class:`Timer` handle that can be cancelled before it fires.  Cancelled
  handles stay in the heap until their time comes up; the kernel counts them
  and compacts the heap when they pile up (long elastic runs re-arm and
  cancel many periodic timers).
* :meth:`Simulator.schedule_fast` / :meth:`Simulator.schedule_at_fast` are the
  **fire-and-forget fast path** used by the engine's hot loops (event
  deliveries, service completions, state-store latencies).  They allocate no
  handle and accept no kwargs, which roughly halves the per-event scheduling
  cost; the trade-off is that such events cannot be cancelled.

Times are expressed in **seconds of simulated time** as floats.  Sub-millisecond
resolution is routinely used (e.g. state-store write latency).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple


#: Compaction trigger: cancelled entries must exceed this count *and* half the
#: heap before the kernel rebuilds the heap without them.
_COMPACT_MIN_CANCELLED = 64


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the simulation kernel."""


class Timer:
    """Handle to a scheduled callback.

    A ``Timer`` is returned by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and can be cancelled before it fires.  After
    the callback has run (or the timer has been cancelled) the handle is inert.
    """

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: dict,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    @property
    def active(self) -> bool:
        """Whether the timer is still pending (not cancelled, not fired)."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Timer(t={self.time:.6f}, {name}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self, start_time: float = 0.0) -> None:
        if not math.isfinite(start_time):
            raise SimulationError("start_time must be finite")
        #: Current simulated time in seconds.  A plain attribute (not a
        #: property): it is read on every scheduling call and inside every
        #: callback, and the descriptor dispatch was measurable.  Treat as
        #: read-only outside the kernel.
        self.now = float(start_time)
        # Heap entries are either ``(time, seq, Timer)`` (cancellable path) or
        # ``(time, seq, callback, args)`` (fire-and-forget fast path).  The
        # seq is unique, so tuple comparison never reaches the third element.
        self._queue: List[tuple] = []
        self._counter = itertools.count()
        self._running = False
        self._stopped = False
        self._processed = 0
        self._cancelled_in_heap = 0
        #: Upper time bound of the in-flight run() / run_batched() call
        #: (``None`` when unbounded or idle).  Read-only; lets a callback
        #: (e.g. the batch-stepping cascade) bound the work it materializes
        #: without being handed the bound explicitly.
        self.run_until: Optional[float] = None
        #: callback -> cohort handler, registered via register_batch_handler().
        self._batch_handlers: dict = {}
        #: Lifetime tallies scraped by the telemetry layer (plain ints: the
        #: kernel never calls into a registry on the hot path).
        self.compactions = 0
        self.batch_cohorts = 0

    # ------------------------------------------------------------------ clock
    @property
    def processed_events(self) -> int:
        """Number of callbacks that have been executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not yet executed, *live* events.

        Cancelled timers still sitting in the heap are not counted (they will
        never fire).
        """
        return len(self._queue) - self._cancelled_in_heap

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Timer:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative and finite.  Returns a :class:`Timer`
        handle that may be cancelled before it fires.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args, **kwargs)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Timer:
        """Schedule ``callback`` at an absolute simulated time."""
        if not math.isfinite(time):
            raise SimulationError("scheduled time must be finite")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, which is before now={self.now:.6f}"
            )
        if not callable(callback):
            raise SimulationError(f"callback must be callable, got {callback!r}")
        timer = Timer(time, next(self._counter), callback, args, kwargs, self)
        heapq.heappush(self._queue, (time, timer.seq, timer))
        return timer

    def schedule_fast(self, delay: float, callback: Callable[..., Any], args: Tuple[Any, ...] = ()) -> None:
        """Fire-and-forget :meth:`schedule`: no Timer handle, no kwargs.

        This is the engine's hot path for events that are never cancelled
        (deliveries, service completions, store latencies).  Positional
        arguments are passed as a tuple.  The callback cannot be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self.now + delay
        if not math.isfinite(time):
            raise SimulationError(f"scheduled time must be finite, got {time}")
        heapq.heappush(self._queue, (time, next(self._counter), callback, args))

    def schedule_at_fast(self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...] = ()) -> None:
        """Fire-and-forget :meth:`schedule_at`: no Timer handle, no kwargs."""
        if not math.isfinite(time):
            raise SimulationError(f"scheduled time must be finite, got {time}")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, which is before now={self.now:.6f}"
            )
        heapq.heappush(self._queue, (time, next(self._counter), callback, args))

    def every(
        self,
        period: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
        **kwargs: Any,
    ) -> "PeriodicTimer":
        """Schedule ``callback`` to run every ``period`` seconds until cancelled.

        The first firing happens after ``start_delay`` seconds (default: one
        full period).
        """
        return PeriodicTimer(self, period, callback, args, kwargs, start_delay=start_delay)

    # ------------------------------------------------------- heap inspection
    def next_timer_time(self) -> Optional[float]:
        """Earliest pending *cancellable* (Timer) entry time, or ``None``.

        Fast-path (fire-and-forget) entries are ignored.  Used by the batch
        cascade to find the horizon below which no control-plane callback can
        preempt it.
        """
        best: Optional[float] = None
        for entry in self._queue:
            if len(entry) == 3 and not entry[2].cancelled:
                if best is None or entry[0] < best:
                    best = entry[0]
        return best

    def has_fast_entries(self) -> bool:
        """Whether any fire-and-forget entry is pending in the heap."""
        for entry in self._queue:
            if len(entry) == 4:
                return True
        return False

    def fast_entries(self) -> List[tuple]:
        """All pending fire-and-forget entries ``(time, seq, callback, args)``.

        Returned in heap (arbitrary) order without removing them; callers that
        need chronological order must sort by ``(time, seq)`` themselves.  Used
        by the batch cascade to inspect in-flight work before ingesting it.
        """
        return [entry for entry in self._queue if len(entry) == 4]

    def remove_fast_entries(self) -> None:
        """Drop every fire-and-forget entry from the heap (timers survive).

        Only meaningful right after :meth:`fast_entries`, when the caller has
        taken ownership of all in-flight fast-path work (the batch cascade
        replays it inside its own sweep).  In place: run() keeps a local
        reference to the heap list.
        """
        live = [entry for entry in self._queue if len(entry) != 4]
        self._queue[:] = live
        heapq.heapify(self._queue)

    # --------------------------------------------------------- batch stepping
    def register_batch_handler(self, callback: Callable[..., Any], handler: Callable[[float, list], Any]) -> None:
        """Register a cohort handler for ``callback`` under :meth:`run_batched`.

        When run_batched() pops a fast-path entry for ``callback`` it collects
        every *consecutive* same-time, same-callback entry and hands the whole
        cohort to ``handler(time, [args, ...])`` in one call instead of one
        callback per event.  Only consecutive entries are coalesced, so the
        relative order of distinct callbacks at one timestamp is preserved
        exactly as the classic loop would execute them.
        """
        self._batch_handlers[callback] = handler

    def run_batched(self, until: Optional[float] = None) -> None:
        """Run the event loop, dispatching same-time/same-callback cohorts.

        Semantically equivalent to :meth:`run`: entries still execute in
        ``(time, seq)`` order.  The only difference is that a consecutive run
        of fast-path entries sharing a timestamp and a callback with a
        registered batch handler is delivered as one cohort call, amortizing
        the per-event dispatch overhead (one ``_maybe_process`` drain per
        executor per tick instead of one per event).
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        queue = self._queue
        heappop = heapq.heappop
        processed = self._processed
        handlers = self._batch_handlers
        self.run_until = until
        try:
            while queue and not self._stopped:
                entry = queue[0]
                if until is not None and entry[0] > until:
                    break
                heappop(queue)
                if len(entry) == 4:
                    time = entry[0]
                    callback = entry[2]
                    handler = handlers.get(callback)
                    if handler is not None:
                        cohort = [entry[3]]
                        while queue:
                            peek = queue[0]
                            if len(peek) != 4 or peek[0] != time or peek[2] != callback:
                                break
                            cohort.append(heappop(queue)[3])
                        self.now = time
                        processed += len(cohort)
                        self.batch_cohorts += 1
                        handler(time, cohort)
                    else:
                        self.now = time
                        processed += 1
                        callback(*entry[3])
                else:
                    timer = entry[2]
                    if timer.cancelled:
                        self._cancelled_in_heap -= 1
                        continue
                    self.now = entry[0]
                    timer.fired = True
                    processed += 1
                    timer.callback(*timer.args, **timer.kwargs)
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._processed = processed
            self._running = False
            self.run_until = None

    # -------------------------------------------------- cancellation plumbing
    def _note_cancelled(self) -> None:
        """A pending Timer was cancelled; compact the heap if they pile up."""
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap > _COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled timers (pop order is unchanged).

        In place: run() keeps a local reference to the heap list, so the list
        object must survive compaction.
        """
        live = [entry for entry in self._queue if len(entry) == 4 or not entry[2].cancelled]
        self._queue[:] = live
        heapq.heapify(self._queue)
        self._cancelled_in_heap = 0
        self.compactions += 1

    # ---------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue was
        empty (only cancelled timers or nothing at all).
        """
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            if len(entry) == 4:
                self.now = entry[0]
                self._processed += 1
                entry[2](*entry[3])
                return True
            timer = entry[2]
            if timer.cancelled:
                self._cancelled_in_heap -= 1
                continue
            self.now = timer.time
            timer.fired = True
            self._processed += 1
            timer.callback(*timer.args, **timer.kwargs)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once simulated time would advance beyond this value.  The
            clock is left at ``until`` (if provided) or at the time of the last
            executed event.
        max_events:
            Safety valve: stop after this many callbacks.

        The loop bodies are the whole-experiment hot path: entries are popped
        inline (no step() call) with the heap and heappop bound to locals, the
        processed counter accumulated locally (flushed on exit -- the
        ``processed_events`` property is a between-runs statistic, not a
        mid-callback one), and the unbounded/bounded variants split so each
        pays only the checks it needs.  Compaction swaps heap contents in
        place, so the local ``queue`` binding stays valid throughout.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        executed = 0
        queue = self._queue
        heappop = heapq.heappop
        processed = self._processed
        self.run_until = until
        try:
            if until is None and max_events is None:
                # Run-to-exhaustion: pop directly, no peek needed.
                while queue and not self._stopped:
                    entry = heappop(queue)
                    if len(entry) == 4:
                        # Fast-path entry: (time, seq, callback, args).
                        self.now = entry[0]
                        processed += 1
                        entry[2](*entry[3])
                    else:
                        timer = entry[2]
                        if timer.cancelled:
                            self._cancelled_in_heap -= 1
                            continue
                        self.now = entry[0]
                        timer.fired = True
                        processed += 1
                        timer.callback(*timer.args, **timer.kwargs)
            elif max_events is None:
                # Bounded by time only: one peek-compare per event.
                while queue and not self._stopped:
                    entry = queue[0]
                    if entry[0] > until:
                        break
                    heappop(queue)
                    if len(entry) == 4:
                        self.now = entry[0]
                        processed += 1
                        entry[2](*entry[3])
                    else:
                        timer = entry[2]
                        if timer.cancelled:
                            self._cancelled_in_heap -= 1
                            continue
                        self.now = entry[0]
                        timer.fired = True
                        processed += 1
                        timer.callback(*timer.args, **timer.kwargs)
            else:
                while queue and not self._stopped:
                    entry = queue[0]
                    if until is not None and entry[0] > until:
                        break
                    heappop(queue)
                    if len(entry) == 4:
                        self.now = entry[0]
                        processed += 1
                        entry[2](*entry[3])
                    else:
                        timer = entry[2]
                        if timer.cancelled:
                            self._cancelled_in_heap -= 1
                            continue
                        self.now = entry[0]
                        timer.fired = True
                        processed += 1
                        timer.callback(*timer.args, **timer.kwargs)
                    executed += 1
                    if executed >= max_events:
                        break
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._processed = processed
            self._running = False
            self.run_until = None

    def stop(self) -> None:
        """Request the current :meth:`run` invocation to stop after the current event."""
        self._stopped = True

    def advance(self, delta: float) -> None:
        """Run the simulation for ``delta`` seconds of simulated time from now."""
        if delta < 0:
            raise SimulationError("cannot advance by a negative duration")
        self.run(until=self.now + delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.3f}, pending={self.pending_events})"


class PeriodicTimer:
    """Repeating timer built on top of :class:`Simulator`.

    Used for the checkpoint coordinator's periodic checkpoint waves, the
    aggressive 1-second INIT re-sends of DCR/CCR, source-task event generation,
    and metric sampling.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        kwargs: Optional[dict] = None,
        start_delay: Optional[float] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._sim = sim
        self.period = period
        self._callback = callback
        self._args = args
        self._kwargs = kwargs or {}
        self._cancelled = False
        self.fire_count = 0
        first = period if start_delay is None else start_delay
        self._timer = sim.schedule(first, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fire_count += 1
        self._callback(*self._args, **self._kwargs)
        if not self._cancelled:
            self._timer = self._sim.schedule(self.period, self._fire)

    def cancel(self) -> None:
        """Stop future firings.  Idempotent."""
        self._cancelled = True
        if self._timer is not None:
            self._timer.cancel()

    @property
    def active(self) -> bool:
        """Whether the periodic timer will continue to fire."""
        return not self._cancelled
