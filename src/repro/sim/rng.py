"""Named, independently seeded random streams.

Every stochastic component of the simulation (worker start-up jitter, network
transfer latency, rebalance duration, event payload generation) draws from its
own named stream.  Streams are derived deterministically from a single master
seed, so:

* the same master seed always produces the same experiment, and
* adding a new consumer of randomness does not shift the values observed by
  existing consumers (which would happen if all components shared one
  ``random.Random``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomSource:
    """Factory for deterministic, named ``random.Random`` streams."""

    def __init__(self, master_seed: int = 2018) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream seed is a stable hash of ``(master_seed, name)``.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.master_seed}:{name}".encode("utf-8")).digest()
            seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(seed)
        return self._streams[name]

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw a uniform sample from the named stream."""
        return self.stream(name).uniform(low, high)

    def gauss(self, name: str, mu: float, sigma: float) -> float:
        """Draw a Gaussian sample from the named stream (sigma may be 0)."""
        if sigma <= 0:
            return mu
        return self.stream(name).gauss(mu, sigma)

    def expovariate(self, name: str, rate: float) -> float:
        """Draw an exponential sample with the given rate from the named stream."""
        return self.stream(name).expovariate(rate)

    def randint(self, name: str, low: int, high: int) -> int:
        """Draw an integer uniformly in ``[low, high]`` from the named stream."""
        return self.stream(name).randint(low, high)

    def fork(self, name: str) -> "RandomSource":
        """Create a child :class:`RandomSource` with a seed derived from ``name``."""
        digest = hashlib.sha256(f"{self.master_seed}:fork:{name}".encode("utf-8")).digest()
        return RandomSource(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(master_seed={self.master_seed}, streams={sorted(self._streams)})"
