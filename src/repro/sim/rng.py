"""Named, independently seeded random streams.

Every stochastic component of the simulation (worker start-up jitter, network
transfer latency, rebalance duration, event payload generation) draws from its
own named stream.  Streams are derived deterministically from a single master
seed, so:

* the same master seed always produces the same experiment, and
* adding a new consumer of randomness does not shift the values observed by
  existing consumers (which would happen if all components shared one
  ``random.Random``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def keyed_seed(master_seed: int, name: str, key: str) -> int:
    """Stable 64-bit seed for the ``(master_seed, name, key)`` channel."""
    digest = hashlib.sha256(f"{master_seed}:{name}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def keyed_value(seed: int, sequence: int) -> float:
    """The ``sequence``-th uniform [0, 1) draw of the keyed channel ``seed``.

    A splitmix64-style integer mix: stateless (value depends only on the two
    arguments), so callers can hold a bare ``(seed, counter)`` pair — or no
    state at all — instead of a ``random.Random`` per channel.  The top 53
    bits become the float, matching ``random.random()``'s resolution.
    """
    z = (seed + (sequence + 1) * _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    z ^= z >> 31
    return (z >> 11) * 2.0 ** -53


#: Lazily built uint64-boxed mix constants for :func:`keyed_value_block`
#: (scalar->uint64 conversion per call was measurable on small blocks).
_NP_CONSTS = None


def keyed_value_block(seed: int, start_sequence: int, count: int, np):
    """Vectorized :func:`keyed_value`: draws ``start_sequence .. +count-1``.

    ``np`` is the caller's numpy module (kept out of this module's imports so
    the RNG layer stays dependency-free).  The integer mix runs on ``uint64``
    arrays, whose wraparound is exactly the ``& _MASK64`` of the scalar path,
    and ``(z >> 11) * 2**-53`` is exact in float64, so every element is
    bit-identical to the corresponding scalar :func:`keyed_value` call.
    """
    global _NP_CONSTS
    consts = _NP_CONSTS
    if consts is None:
        u64 = np.uint64
        consts = _NP_CONSTS = (
            u64(_GOLDEN), u64(_MIX1), u64(_MIX2), u64(30), u64(27), u64(31), u64(11),
        )
    golden, mix1, mix2, s30, s27, s31, s11 = consts
    seqs = np.arange(start_sequence + 1, start_sequence + count + 1, dtype=np.uint64)
    z = np.uint64(seed & _MASK64) + seqs * golden
    z = (z ^ (z >> s30)) * mix1
    z = (z ^ (z >> s27)) * mix2
    z ^= z >> s31
    return (z >> s11) * 2.0 ** -53


class KeyedStream:
    """A per-channel draw sequence over :func:`keyed_value`.

    Unlike :meth:`RandomSource.stream`, nothing is registered anywhere: the
    object is two integers, and an equivalent stream can be reconstructed
    from ``(seed, counter)`` at any point.  Per-event channel names therefore
    cost nothing once the caller drops the object.
    """

    __slots__ = ("seed", "counter")

    def __init__(self, seed: int, counter: int = 0) -> None:
        self.seed = seed
        self.counter = counter

    def random(self) -> float:
        """Next uniform [0, 1) draw."""
        value = keyed_value(self.seed, self.counter)
        self.counter += 1
        return value

    def uniform(self, low: float, high: float) -> float:
        """Next uniform draw scaled to [low, high)."""
        return low + (high - low) * self.random()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyedStream(seed={self.seed}, counter={self.counter})"


class RandomSource:
    """Factory for deterministic, named ``random.Random`` streams."""

    def __init__(self, master_seed: int = 2018) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream seed is a stable hash of ``(master_seed, name)``.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.master_seed}:{name}".encode("utf-8")).digest()
            seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(seed)
        return self._streams[name]

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw a uniform sample from the named stream."""
        return self.stream(name).uniform(low, high)

    def gauss(self, name: str, mu: float, sigma: float) -> float:
        """Draw a Gaussian sample from the named stream (sigma may be 0)."""
        if sigma <= 0:
            return mu
        return self.stream(name).gauss(mu, sigma)

    def expovariate(self, name: str, rate: float) -> float:
        """Draw an exponential sample with the given rate from the named stream."""
        return self.stream(name).expovariate(rate)

    def randint(self, name: str, low: int, high: int) -> int:
        """Draw an integer uniformly in ``[low, high]`` from the named stream."""
        return self.stream(name).randint(low, high)

    def fork(self, name: str) -> "RandomSource":
        """Create a child :class:`RandomSource` with a seed derived from ``name``."""
        digest = hashlib.sha256(f"{self.master_seed}:fork:{name}".encode("utf-8")).digest()
        return RandomSource(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(master_seed={self.master_seed}, streams={sorted(self._streams)})"
