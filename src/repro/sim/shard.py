"""Partition-parallel simulation: shard specs, worker pool, deterministic merge.

A *shard* is one hermetic simulation of an independent keyed partition of the
workload: it owns its own :class:`~repro.sim.kernel.Simulator`, cluster and
runtime, resets the global event-id counter on entry (exactly as
``ExperimentMatrix.prefetch`` does for figure cells) and returns only
picklable record lists.  Because shards never interact, they can run in any
order on any number of worker processes — the merged
:class:`~repro.metrics.log.EventLog` depends only on the shard *specs*, never
on the pool size or completion order.

Merge determinism
-----------------
Each shard numbers its events from 1 (hermetic reset), so ids collide across
shards.  The merge namespaces every id into ``shard_index * SHARD_ID_STRIDE +
local_id`` — a pure function of the spec — and orders the union of the
per-shard record streams by ``(time, namespaced id)``.  Both steps are
deterministic, which is what makes an N-worker merged log byte-identical to
the 1-worker merged log for the same specs (asserted via :func:`log_digest`).

With numpy available the merge is pure array work: per-shard columns (either
shipped directly by a columnar shard log or built once from record lists) are
concatenated, id-offset, and reordered with one stable ``np.lexsort`` on
``(time, namespaced id)``, producing a
:class:`~repro.metrics.log.ColumnarEventLog` without touching a single
per-record Python object.  Shard streams are sorted by ``(time, id)`` within
a shard (ids are assigned in record order and times are monotone), so the
lexsort reproduces exactly the order the per-record heap interleave produced.

This module deliberately knows nothing about dataflows or clusters: the
concrete shard runner lives in :mod:`repro.experiments.sharded`, and is passed
in as a module-level callable so ``multiprocessing`` can pickle it by
reference.
"""

from __future__ import annotations

import hashlib
import heapq
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

from repro.sim.rng import keyed_seed

#: Environment variable naming the default worker-process count for sharded
#: runs (``0``, unset or invalid: one worker per shard, capped at the CPU
#: count; positive values are clamped to the shard and CPU counts).
SHARDS_ENV_VAR = "REPRO_SIM_SHARDS"

#: Id namespace stride: merged ids are ``shard_index * stride + local_id``.
#: 2**40 leaves room for a trillion events per shard while keeping the
#: namespaced ids exact in float-free integer arithmetic.
SHARD_ID_STRIDE = 1 << 40


@dataclass(frozen=True)
class ShardSpec:
    """Parameters of one keyed partition's hermetic simulation.

    ``index``/``shards`` identify the partition (shard ``index`` simulates the
    global source sequences congruent to ``index`` modulo ``shards``); the
    rest describe the run every shard performs on its sub-stream.
    """

    index: int
    shards: int
    dag: str = "grid"
    strategy: str = "dcr"
    duration_s: float = 10.0
    seed: int = 2018
    batch_stepping: bool = True
    #: Rate-profile preset driving the shard's sources (``None``: constant
    #: rate).  Every shard follows the same shape at ``1/shards`` of the
    #: amplitude, so the merged offered rate follows the preset.
    profile: Optional[str] = None
    #: Interval at which a per-shard monitor samples rates/backlogs/latency
    #: (``0``: no sampling).  Sharded elastic runs set this to the central
    #: controller's check interval; all shards then sample at identical
    #: times, which is what lets the merge aggregate samples positionally.
    sample_interval_s: float = 0.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if not 0 <= self.index < self.shards:
            raise ValueError(f"shard index {self.index} outside [0, {self.shards})")

    @property
    def shard_seed(self) -> int:
        """Master seed for this shard's runtime (independent across shards)."""
        return keyed_seed(self.seed, "shard", f"{self.index}/{self.shards}")

    @property
    def id_offset(self) -> int:
        """Offset added to this shard's local event/root ids by the merge."""
        return self.index * SHARD_ID_STRIDE


@dataclass
class ShardResult:
    """Picklable outcome of one shard: its emission/receipt records.

    ``emits`` and ``receipts`` are the shard log's (time-ordered) record
    lists; columnar shard logs ship ``emit_columns``/``receipt_columns``
    (numpy field arrays plus an interned name table) instead and leave the
    record lists empty — the merge consumes either representation.
    ``summary`` is :meth:`~repro.metrics.log.EventLog.summary`; ``samples``
    carries the shard's monitor timeline when the spec asked for sampling.
    """

    index: int
    emits: List = field(default_factory=list)
    receipts: List = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    emit_columns: Optional[Dict[str, Any]] = None
    receipt_columns: Optional[Dict[str, Any]] = None
    samples: List = field(default_factory=list)

    @property
    def emit_count(self) -> int:
        """Number of source emissions, whichever representation was shipped."""
        if self.emit_columns is not None:
            return len(self.emit_columns["time"])
        return len(self.emits)

    @property
    def receipt_count(self) -> int:
        """Number of sink receipts, whichever representation was shipped."""
        if self.receipt_columns is not None:
            return len(self.receipt_columns["time"])
        return len(self.receipts)


def resolve_worker_env(raw: Optional[str], tasks: int) -> int:
    """Shared env-var → worker-count rule for parallel fan-outs.

    A positive integer is honored but clamped to both the number of tasks
    and the machine's CPU count (oversubscribing a process pool only adds
    scheduling noise); ``0``, ``None``, empty, or an unparsable value all
    mean "auto": one worker per task, capped at the CPU count.
    """
    cpus = os.cpu_count() or 1
    if raw is not None and raw.strip():
        try:
            value = int(raw.strip())
        except ValueError:
            value = 0
        if value > 0:
            return max(1, min(value, tasks, cpus))
    return max(1, min(tasks, cpus))


def shard_worker_count(shards: int) -> int:
    """Resolve the worker-process count for a sharded run.

    ``REPRO_SIM_SHARDS`` wins when set to a positive integer (clamped to the
    shard count and the CPU count); ``0``, unset or invalid mean "auto" —
    one worker per shard, capped at the machine's CPU count.
    """
    return resolve_worker_env(os.environ.get(SHARDS_ENV_VAR), shards)


def run_shards(
    specs: Sequence[ShardSpec],
    runner: Callable[[ShardSpec], ShardResult],
    workers: Optional[int] = None,
) -> List[ShardResult]:
    """Run every shard through ``runner``, fanning out across a process pool.

    ``runner`` must be a module-level callable (picklable by reference) that
    performs a hermetic simulation — including the event-id reset.  With one
    worker (or one shard) everything runs inline in this process, which is
    both the sequential baseline for determinism tests and the fallback when
    process pools are unavailable.  Results are returned in shard order
    regardless of completion order.
    """
    if workers is None:
        workers = shard_worker_count(len(specs))
    if workers <= 1 or len(specs) <= 1:
        results = [runner(spec) for spec in specs]
    else:
        with multiprocessing.Pool(processes=min(workers, len(specs))) as pool:
            results = pool.map(runner, list(specs))
    return sorted(results, key=lambda result: result.index)


def merge_shard_results(results: Sequence[ShardResult]):
    """Deterministically merge per-shard records into one event log.

    Ids are namespaced by shard (see :data:`SHARD_ID_STRIDE`) and the
    per-shard streams — already time-ordered — are ordered by
    ``(time, namespaced id)``, so the output is a pure function of the shard
    results, bit-stable across worker counts and repeat runs.

    With numpy the merge is array concatenation plus one stable
    ``np.lexsort`` per stream, landing in a columnar log; without it the
    per-record heap interleave builds a classic :class:`EventLog`.  Both
    paths produce the same :func:`log_digest`.
    """
    if _np is not None:
        return _merge_shard_results_columnar(results)
    return _merge_shard_results_python(results)


def _emit_columns_of(result: ShardResult) -> Optional[Dict[str, Any]]:
    """The shard's emit columns, built from its record list if necessary."""
    if result.emit_columns is not None:
        return result.emit_columns
    emits = result.emits
    if not emits:
        return None
    n = len(emits)
    names: List[str] = []
    codes: Dict[str, int] = {}
    time = _np.empty(n, dtype=_np.float64)
    root = _np.empty(n, dtype=_np.int64)
    source = _np.empty(n, dtype=_np.int32)
    replay = _np.empty(n, dtype=_np.int64)
    backlog = _np.empty(n, dtype=_np.bool_)
    for i, emit in enumerate(emits):
        time[i] = emit.time
        root[i] = emit.root_id
        replay[i] = emit.replay_count
        backlog[i] = emit.from_backlog
        code = codes.get(emit.source)
        if code is None:
            code = len(names)
            codes[emit.source] = code
            names.append(emit.source)
        source[i] = code
    return {"time": time, "root": root, "source": source,
            "replay": replay, "backlog": backlog, "names": names}


def _receipt_columns_of(result: ShardResult) -> Optional[Dict[str, Any]]:
    """The shard's receipt columns, built from its record list if necessary."""
    if result.receipt_columns is not None:
        return result.receipt_columns
    receipts = result.receipts
    if not receipts:
        return None
    n = len(receipts)
    names: List[str] = []
    codes: Dict[str, int] = {}
    time = _np.empty(n, dtype=_np.float64)
    root = _np.empty(n, dtype=_np.int64)
    event = _np.empty(n, dtype=_np.int64)
    sink = _np.empty(n, dtype=_np.int32)
    emitted = _np.empty(n, dtype=_np.float64)
    replay = _np.empty(n, dtype=_np.int64)
    for i, receipt in enumerate(receipts):
        time[i] = receipt.time
        root[i] = receipt.root_id
        event[i] = receipt.event_id
        emitted[i] = receipt.root_emitted_at
        replay[i] = receipt.replay_count
        code = codes.get(receipt.sink)
        if code is None:
            code = len(names)
            codes[receipt.sink] = code
            names.append(receipt.sink)
        sink[i] = code
    return {"time": time, "root": root, "event": event, "sink": sink,
            "emitted": emitted, "replay": replay, "names": names}


def _merge_shard_results_columnar(results: Sequence[ShardResult]):
    """Array merge: concatenate shard columns, lexsort on (time, id)."""
    # Imported here: repro.metrics.log imports repro.sim, so a module-level
    # import would make this module unimportable from repro.metrics.
    from repro.metrics.log import ColumnarEventLog
    from repro.sim.kernel import Simulator

    log = ColumnarEventLog(Simulator())
    ordered = sorted(results, key=lambda result: result.index)

    emit_parts: List[tuple] = []
    receipt_parts: List[tuple] = []
    for result in ordered:
        offset = result.index * SHARD_ID_STRIDE
        cols = _emit_columns_of(result)
        if cols is not None and len(cols["time"]):
            lut = _np.asarray(
                [log._code(name) for name in cols["names"]], dtype=_np.int32
            )
            emit_parts.append((
                _np.asarray(cols["time"], dtype=_np.float64),
                _np.asarray(cols["root"], dtype=_np.int64) + offset,
                lut[_np.asarray(cols["source"])],
                _np.asarray(cols["replay"], dtype=_np.int64),
                _np.asarray(cols["backlog"], dtype=_np.bool_),
            ))
        cols = _receipt_columns_of(result)
        if cols is not None and len(cols["time"]):
            lut = _np.asarray(
                [log._code(name) for name in cols["names"]], dtype=_np.int32
            )
            receipt_parts.append((
                _np.asarray(cols["time"], dtype=_np.float64),
                _np.asarray(cols["root"], dtype=_np.int64) + offset,
                _np.asarray(cols["event"], dtype=_np.int64) + offset,
                lut[_np.asarray(cols["sink"])],
                _np.asarray(cols["emitted"], dtype=_np.float64),
                _np.asarray(cols["replay"], dtype=_np.int64),
            ))

    if emit_parts:
        time, root, source, replay, backlog = (
            _np.concatenate([part[i] for part in emit_parts]) for i in range(5)
        )
        # lexsort's last key is primary: order by time, then namespaced root.
        order = _np.lexsort((root, time))
        log._emit_time.extend(time[order])
        log._emit_root.extend(root[order])
        log._emit_source.extend(source[order])
        log._emit_replay.extend(replay[order])
        log._emit_backlog.extend(backlog[order])
        log.replay_emits += int((replay > 0).sum())
    if receipt_parts:
        time, root, event, sink, emitted, replay = (
            _np.concatenate([part[i] for part in receipt_parts]) for i in range(6)
        )
        # Receipts order by (time, namespaced event id), as the heap merge did.
        order = _np.lexsort((event, time))
        log._receipt_time.extend(time[order])
        log._receipt_root.extend(root[order])
        log._receipt_event.extend(event[order])
        log._receipt_sink.extend(sink[order])
        log._receipt_emitted.extend(emitted[order])
        log._receipt_replay.extend(replay[order])
    return log


def _emit_records_of(result: ShardResult) -> List:
    """The shard's emit records, materialized from its columns if necessary."""
    if result.emits or result.emit_columns is None:
        return result.emits
    from repro.metrics.log import SourceEmit, _as_list

    cols = result.emit_columns
    names = cols["names"]
    return [
        SourceEmit(time=time, root_id=root, source=names[source],
                   replay_count=replay, from_backlog=bool(backlog))
        for time, root, source, replay, backlog in zip(
            _as_list(cols["time"]), _as_list(cols["root"]), _as_list(cols["source"]),
            _as_list(cols["replay"]), _as_list(cols["backlog"]),
        )
    ]


def _receipt_records_of(result: ShardResult) -> List:
    """The shard's receipt records, materialized from its columns if necessary."""
    if result.receipts or result.receipt_columns is None:
        return result.receipts
    from repro.metrics.log import SinkReceipt, _as_list

    cols = result.receipt_columns
    names = cols["names"]
    return [
        SinkReceipt(time=time, root_id=root, event_id=event, sink=names[sink],
                    root_emitted_at=emitted, replay_count=replay)
        for time, root, event, sink, emitted, replay in zip(
            _as_list(cols["time"]), _as_list(cols["root"]), _as_list(cols["event"]),
            _as_list(cols["sink"]), _as_list(cols["emitted"]), _as_list(cols["replay"]),
        )
    ]


def _merge_shard_results_python(results: Sequence[ShardResult]):
    """Per-record heap interleave (fallback when numpy is unavailable).

    Shard results recorded columnar-side (``emit_columns``/``receipt_columns``)
    are materialized back into record objects first, so this path accepts the
    same inputs as the array merge.
    """
    from repro.metrics.log import EventLog
    from repro.sim.kernel import Simulator

    log = EventLog(Simulator())
    ordered = sorted(results, key=lambda result: result.index)

    def _emits(result: ShardResult, offset: int):
        return ((emit.time, emit.root_id + offset, emit)
                for emit in _emit_records_of(result))

    def _receipts(result: ShardResult, offset: int):
        return (
            (receipt.time, receipt.event_id + offset, receipt.root_id + offset, receipt)
            for receipt in _receipt_records_of(result)
        )

    emit_streams = [_emits(r, r.index * SHARD_ID_STRIDE) for r in ordered]
    receipt_streams = [_receipts(r, r.index * SHARD_ID_STRIDE) for r in ordered]

    for time, root_id, emit in heapq.merge(*emit_streams, key=lambda item: item[:2]):
        log.record_source_emit(
            root_id=root_id,
            source=emit.source,
            replay_count=emit.replay_count,
            from_backlog=emit.from_backlog,
            at_time=time,
        )
    for time, event_id, root_id, receipt in heapq.merge(
        *receipt_streams, key=lambda item: item[:2]
    ):
        log.record_sink_receipt(
            root_id=root_id,
            event_id=event_id,
            sink=receipt.sink,
            root_emitted_at=receipt.root_emitted_at,
            replay_count=receipt.replay_count,
            at_time=time,
        )
    return log


def merge_monitor_samples(sample_lists: Sequence[Sequence]) -> List:
    """Aggregate per-shard monitor timelines into one cluster-wide timeline.

    Sharded elastic runs sample every shard on the same schedule (see
    :attr:`ShardSpec.sample_interval_s`), so samples group cleanly by
    timestamp.  Within a group: rates and backlogs sum across shards;
    ``avg_latency_s`` is the receipt-weighted mean of the shard means
    (``output_rate`` is receipts-per-interval with a common interval, hence
    proportional to each shard's receipt count); sources count as paused
    only when paused on *every* shard.  Groups are combined in shard order,
    so the result is a pure function of the shard results — worker-count
    invariant like the log merge.
    """
    from repro.elastic.monitor import MonitorSample

    buckets: Dict[float, List] = {}
    for samples in sample_lists:
        for sample in samples:
            buckets.setdefault(sample.time, []).append(sample)
    merged: List[MonitorSample] = []
    for time in sorted(buckets):
        group = buckets[time]
        latency_weight = sum(
            s.output_rate for s in group if s.avg_latency_s is not None
        )
        if latency_weight > 0:
            avg_latency: Optional[float] = (
                sum(
                    s.output_rate * s.avg_latency_s
                    for s in group
                    if s.avg_latency_s is not None
                )
                / latency_weight
            )
        else:
            avg_latency = None
        merged.append(MonitorSample(
            time=time,
            input_rate=sum(s.input_rate for s in group),
            offered_rate=sum(s.offered_rate for s in group),
            output_rate=sum(s.output_rate for s in group),
            avg_latency_s=avg_latency,
            queue_backlog=sum(s.queue_backlog for s in group),
            source_backlog=sum(s.source_backlog for s in group),
            sources_paused=all(s.sources_paused for s in group),
        ))
    return merged


def log_digest(log) -> str:
    """Stable content hash of a log's emission/receipt records.

    Floats are rendered with ``repr`` (shortest round-trip form), so two logs
    share a digest iff every record field is bit-identical — the check behind
    the "N workers == 1 worker" acceptance criterion.  Columnar logs are
    hashed straight from their columns (``tolist`` yields the same native
    floats/ints the records would carry), skipping row materialization.
    """
    hasher = hashlib.sha256()
    emit_columns = getattr(log, "emit_columns", None)
    if callable(emit_columns):
        cols = emit_columns()
        names = cols["names"]
        for time, root, code, replay, backlog in zip(
            cols["time"].tolist(), cols["root"].tolist(), cols["source"].tolist(),
            cols["replay"].tolist(), cols["backlog"].tolist(),
        ):
            hasher.update(
                f"E {time!r} {root} {names[code]} {replay} {int(backlog)}\n".encode("utf-8")
            )
        cols = log.receipt_columns()
        names = cols["names"]
        for time, root, event, code, emitted, replay in zip(
            cols["time"].tolist(), cols["root"].tolist(), cols["event"].tolist(),
            cols["sink"].tolist(), cols["emitted"].tolist(), cols["replay"].tolist(),
        ):
            hasher.update(
                f"R {time!r} {root} {event} {names[code]} "
                f"{emitted!r} {replay}\n".encode("utf-8")
            )
        return hasher.hexdigest()
    for emit in log.source_emits:
        hasher.update(
            f"E {emit.time!r} {emit.root_id} {emit.source} "
            f"{emit.replay_count} {int(emit.from_backlog)}\n".encode("utf-8")
        )
    for receipt in log.sink_receipts:
        hasher.update(
            f"R {receipt.time!r} {receipt.root_id} {receipt.event_id} {receipt.sink} "
            f"{receipt.root_emitted_at!r} {receipt.replay_count}\n".encode("utf-8")
        )
    return hasher.hexdigest()
