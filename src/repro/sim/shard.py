"""Partition-parallel simulation: shard specs, worker pool, deterministic merge.

A *shard* is one hermetic simulation of an independent keyed partition of the
workload: it owns its own :class:`~repro.sim.kernel.Simulator`, cluster and
runtime, resets the global event-id counter on entry (exactly as
``ExperimentMatrix.prefetch`` does for figure cells) and returns only
picklable record lists.  Because shards never interact, they can run in any
order on any number of worker processes — the merged
:class:`~repro.metrics.log.EventLog` depends only on the shard *specs*, never
on the pool size or completion order.

Merge determinism
-----------------
Each shard numbers its events from 1 (hermetic reset), so ids collide across
shards.  The merge namespaces every id into ``shard_index * SHARD_ID_STRIDE +
local_id`` — a pure function of the spec — and interleaves the per-shard
record streams ordered by ``(time, namespaced id)``.  Both steps are
deterministic, which is what makes an N-worker merged log byte-identical to
the 1-worker merged log for the same specs (asserted via :func:`log_digest`).

This module deliberately knows nothing about dataflows or clusters: the
concrete shard runner lives in :mod:`repro.experiments.sharded`, and is passed
in as a module-level callable so ``multiprocessing`` can pickle it by
reference.
"""

from __future__ import annotations

import hashlib
import heapq
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.rng import keyed_seed

#: Environment variable naming the default worker-process count for sharded
#: runs (``0`` or unset: one worker per shard, capped at the CPU count).
SHARDS_ENV_VAR = "REPRO_SIM_SHARDS"

#: Id namespace stride: merged ids are ``shard_index * stride + local_id``.
#: 2**40 leaves room for a trillion events per shard while keeping the
#: namespaced ids exact in float-free integer arithmetic.
SHARD_ID_STRIDE = 1 << 40


@dataclass(frozen=True)
class ShardSpec:
    """Parameters of one keyed partition's hermetic simulation.

    ``index``/``shards`` identify the partition (shard ``index`` simulates the
    global source sequences congruent to ``index`` modulo ``shards``); the
    rest describe the run every shard performs on its sub-stream.
    """

    index: int
    shards: int
    dag: str = "grid"
    strategy: str = "dcr"
    duration_s: float = 10.0
    seed: int = 2018
    batch_stepping: bool = True

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if not 0 <= self.index < self.shards:
            raise ValueError(f"shard index {self.index} outside [0, {self.shards})")

    @property
    def shard_seed(self) -> int:
        """Master seed for this shard's runtime (independent across shards)."""
        return keyed_seed(self.seed, "shard", f"{self.index}/{self.shards}")

    @property
    def id_offset(self) -> int:
        """Offset added to this shard's local event/root ids by the merge."""
        return self.index * SHARD_ID_STRIDE


@dataclass
class ShardResult:
    """Picklable outcome of one shard: its emission/receipt records.

    ``emits`` and ``receipts`` are the shard log's (time-ordered) record
    lists; ``summary`` is :meth:`~repro.metrics.log.EventLog.summary`.
    """

    index: int
    emits: List = field(default_factory=list)
    receipts: List = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)


def shard_worker_count(shards: int) -> int:
    """Resolve the worker-process count for a sharded run.

    ``REPRO_SIM_SHARDS`` wins when set to a positive integer; otherwise one
    worker per shard, capped at the machine's CPU count.
    """
    raw = os.environ.get(SHARDS_ENV_VAR, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            value = 0
        if value > 0:
            return min(value, shards)
    return max(1, min(shards, os.cpu_count() or 1))


def run_shards(
    specs: Sequence[ShardSpec],
    runner: Callable[[ShardSpec], ShardResult],
    workers: Optional[int] = None,
) -> List[ShardResult]:
    """Run every shard through ``runner``, fanning out across a process pool.

    ``runner`` must be a module-level callable (picklable by reference) that
    performs a hermetic simulation — including the event-id reset.  With one
    worker (or one shard) everything runs inline in this process, which is
    both the sequential baseline for determinism tests and the fallback when
    process pools are unavailable.  Results are returned in shard order
    regardless of completion order.
    """
    if workers is None:
        workers = shard_worker_count(len(specs))
    if workers <= 1 or len(specs) <= 1:
        results = [runner(spec) for spec in specs]
    else:
        with multiprocessing.Pool(processes=min(workers, len(specs))) as pool:
            results = pool.map(runner, list(specs))
    return sorted(results, key=lambda result: result.index)


def merge_shard_results(results: Sequence[ShardResult]):
    """Deterministically merge per-shard records into one :class:`EventLog`.

    Ids are namespaced by shard (see :data:`SHARD_ID_STRIDE`) and the
    per-shard streams — already time-ordered — are interleaved by
    ``(time, namespaced id)``, so the output is a pure function of the shard
    results, bit-stable across worker counts and repeat runs.
    """
    # Imported here: repro.metrics.log imports repro.sim, so a module-level
    # import would make this module unimportable from repro.metrics.
    from repro.metrics.log import EventLog
    from repro.sim.kernel import Simulator

    log = EventLog(Simulator())
    ordered = sorted(results, key=lambda result: result.index)

    def _emits(result: ShardResult, offset: int):
        return ((emit.time, emit.root_id + offset, emit) for emit in result.emits)

    def _receipts(result: ShardResult, offset: int):
        return (
            (receipt.time, receipt.event_id + offset, receipt.root_id + offset, receipt)
            for receipt in result.receipts
        )

    emit_streams = [_emits(r, r.index * SHARD_ID_STRIDE) for r in ordered]
    receipt_streams = [_receipts(r, r.index * SHARD_ID_STRIDE) for r in ordered]

    for time, root_id, emit in heapq.merge(*emit_streams, key=lambda item: item[:2]):
        log.record_source_emit(
            root_id=root_id,
            source=emit.source,
            replay_count=emit.replay_count,
            from_backlog=emit.from_backlog,
            at_time=time,
        )
    for time, event_id, root_id, receipt in heapq.merge(
        *receipt_streams, key=lambda item: item[:2]
    ):
        log.record_sink_receipt(
            root_id=root_id,
            event_id=event_id,
            sink=receipt.sink,
            root_emitted_at=receipt.root_emitted_at,
            replay_count=receipt.replay_count,
            at_time=time,
        )
    return log


def log_digest(log) -> str:
    """Stable content hash of a log's emission/receipt records.

    Floats are rendered with ``repr`` (shortest round-trip form), so two logs
    share a digest iff every record field is bit-identical — the check behind
    the "N workers == 1 worker" acceptance criterion.
    """
    hasher = hashlib.sha256()
    for emit in log.source_emits:
        hasher.update(
            f"E {emit.time!r} {emit.root_id} {emit.source} "
            f"{emit.replay_count} {int(emit.from_backlog)}\n".encode("utf-8")
        )
    for receipt in log.sink_receipts:
        hasher.update(
            f"R {receipt.time!r} {receipt.root_id} {receipt.event_id} {receipt.sink} "
            f"{receipt.root_emitted_at!r} {receipt.replay_count}\n".encode("utf-8")
        )
    return hasher.hexdigest()
