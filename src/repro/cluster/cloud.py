"""Cloud provider, cluster and network model.

The :class:`CloudProvider` provisions and releases VMs against the simulated
clock and keeps per-minute billing records (the paper motivates rapid
migration with per-minute / per-second cloud billing).  The :class:`Cluster`
is the set of VMs currently backing a Storm-like deployment, and the
:class:`NetworkModel` supplies event-transfer latencies that distinguish
intra-VM from inter-VM hops (the locality benefit of scale-in mentioned in
the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim import KeyedStream, RandomSource, Simulator, keyed_seed
from repro.cluster.vm import Slot, VirtualMachine, VMType

#: Market names used in billing records and ``vm.tags["market"]``.
ON_DEMAND = "on-demand"
SPOT = "spot"


@dataclass
class BillingRecord:
    """Billing entry for one provisioned VM."""

    vm_id: str
    vm_type: str
    provisioned_at: float
    deprovisioned_at: Optional[float]
    hourly_cost: float
    market: str = ON_DEMAND

    def cost(self, now: float, billing_granularity_s: float = 60.0) -> float:
        """Accrued cost, rounded *up* to the billing granularity (per-minute default)."""
        end = self.deprovisioned_at if self.deprovisioned_at is not None else now
        duration = max(0.0, end - self.provisioned_at)
        billed = math.ceil(duration / billing_granularity_s) * billing_granularity_s
        return self.hourly_cost * billed / 3600.0


@dataclass(frozen=True)
class SpotMarket:
    """Spot/preemptible market terms: discounted VMs the cloud may reclaim.

    Spot VMs bill at ``discount`` times the on-demand rate but are exposed to
    an eviction process (mean ``eviction_rate_per_hour`` per VM-hour); the
    provider sends an eviction *notice* ``notice_s`` seconds before reclaiming
    the VM — the window a notice-aware controller has to drain and migrate.
    """

    discount: float = 0.35
    eviction_rate_per_hour: float = 0.0
    notice_s: float = 120.0

    def spot_hourly_cost(self, vm_type: VMType) -> float:
        """Hourly spot price for the flavour."""
        return vm_type.hourly_cost * self.discount

    def eviction_probability(self, horizon_s: float) -> float:
        """P(a spot VM is evicted at least once within the horizon)."""
        if self.eviction_rate_per_hour <= 0 or horizon_s <= 0:
            return 0.0
        return 1.0 - math.exp(-self.eviction_rate_per_hour * horizon_s / 3600.0)


@dataclass(frozen=True)
class ProvisioningModel:
    """Latency distribution for VM provisioning, with straggler/failure tails.

    A provisioning attempt takes ``base_latency_s`` plus uniform jitter; with
    probability ``straggler_prob`` the attempt is a straggler and takes
    ``straggler_multiplier`` times longer, and with probability
    ``failure_prob`` it fails outright (the request is retried, the failed
    attempt's latency is still paid, and nothing is billed for it).
    All draws are keyed by VM id, so they are schedule-independent.
    """

    base_latency_s: float = 30.0
    jitter_fraction: float = 0.2
    straggler_prob: float = 0.0
    straggler_multiplier: float = 4.0
    failure_prob: float = 0.0


@dataclass
class ProvisionTicket:
    """One VM provisioned asynchronously: ready ``delay_s`` from request time.

    ``failures`` counts failed attempts retried (and paid for in latency)
    before this VM came up.
    """

    vm: VirtualMachine
    delay_s: float
    failures: int


class NetworkModel:
    """Latency model for event transfers between executors.

    Latencies are tiny compared to the 100 ms task latency used in the paper,
    but inter-VM hops are an order of magnitude slower than intra-VM ones,
    which is what gives scale-in its locality benefit.
    """

    def __init__(
        self,
        intra_vm_latency_s: float = 0.0002,
        inter_vm_latency_s: float = 0.0015,
        jitter_fraction: float = 0.1,
        rng: Optional[RandomSource] = None,
    ) -> None:
        self.intra_vm_latency_s = intra_vm_latency_s
        self.inter_vm_latency_s = inter_vm_latency_s
        self.jitter_fraction = jitter_fraction
        self._rng = rng or RandomSource()

    def base_latency(self, src_vm: Optional[str], dst_vm: Optional[str]) -> float:
        """Un-jittered transfer latency between the given VMs.

        ``None`` for either endpoint (e.g. an executor not yet placed) is
        treated as an inter-VM hop.  The router caches this per channel and
        applies jitter itself on the hot path.
        """
        if src_vm is not None and src_vm == dst_vm:
            return self.intra_vm_latency_s
        return self.inter_vm_latency_s

    def jitter_sampler(self):
        """Bound ``uniform(a, b)`` sampler of the shared jitter stream.

        Returns the stream's method directly so hot paths skip the per-call
        stream-registry lookup.  Binding it eagerly does not perturb the
        draw sequence: streams are seeded by name, not by creation order.
        """
        return self._rng.stream("network-jitter").uniform

    def keyed_jitter_stream(self, sender: str, receiver: str) -> KeyedStream:
        """Per-channel jitter stream for keyed-jitter mode.

        Seeded from ``(master_seed, "network-jitter", sender->receiver)``, so
        a channel's draw sequence depends only on its own delivery count —
        never on how other channels interleave.  Stateless with respect to
        this model: nothing is registered, the caller owns the counter.
        """
        return KeyedStream(keyed_seed(self._rng.master_seed, "network-jitter", f"{sender}->{receiver}"))

    def transfer_latency(self, src_vm: Optional[str], dst_vm: Optional[str]) -> float:
        """Latency for one event transfer between the given VMs.

        Reference implementation for tests and ad-hoc callers.  The router's
        hot path draws from the *same* ``network-jitter`` stream through its
        bound sampler, so calling this during a live run interleaves with
        (and shifts) the router's jitter sequence — fine for standalone use,
        but do not mix it into an in-flight experiment.
        """
        base = self.base_latency(src_vm, dst_vm)
        if self.jitter_fraction <= 0:
            return base
        jitter = self._rng.uniform("network-jitter", -self.jitter_fraction, self.jitter_fraction)
        return max(0.0, base * (1.0 + jitter))


class Cluster:
    """The set of VMs currently available to the DSPS deployment."""

    def __init__(self, vms: Optional[Iterable[VirtualMachine]] = None, network: Optional[NetworkModel] = None) -> None:
        self._vms: Dict[str, VirtualMachine] = {}
        self.network = network or NetworkModel()
        for vm in vms or []:
            self.add_vm(vm)

    # ------------------------------------------------------------ membership
    def add_vm(self, vm: VirtualMachine) -> None:
        """Add a VM to the cluster."""
        if vm.vm_id in self._vms:
            raise ValueError(f"VM {vm.vm_id} is already part of the cluster")
        self._vms[vm.vm_id] = vm

    def remove_vm(self, vm_id: str) -> VirtualMachine:
        """Remove a VM from the cluster and return it.

        Fails loudly if the VM still hosts executors: silently removing an
        occupied VM would strand router routes pointing at a vanished VM.
        Callers tearing down a failed VM must kill its executors and release
        their slots first (see ``TopologyRuntime.fail_vm``).
        """
        if vm_id not in self._vms:
            raise KeyError(f"VM {vm_id} is not part of the cluster")
        occupied = [slot.executor_id for slot in self._vms[vm_id].occupied_slots]
        if occupied:
            raise ValueError(
                f"cannot remove VM {vm_id}: slots still occupied by {occupied}"
            )
        return self._vms.pop(vm_id)

    @property
    def vms(self) -> List[VirtualMachine]:
        """All VMs, in insertion order."""
        return list(self._vms.values())

    def vm(self, vm_id: str) -> VirtualMachine:
        """Return the VM with the given id."""
        return self._vms[vm_id]

    def __contains__(self, vm_id: str) -> bool:
        return vm_id in self._vms

    def __len__(self) -> int:
        return len(self._vms)

    # ----------------------------------------------------------------- slots
    @property
    def slots(self) -> List[Slot]:
        """All slots across all VMs."""
        return [slot for vm in self._vms.values() for slot in vm.slots]

    @property
    def free_slots(self) -> List[Slot]:
        """Slots not currently hosting an executor."""
        return [slot for slot in self.slots if not slot.occupied]

    @property
    def total_slots(self) -> int:
        """Total number of slots in the cluster."""
        return len(self.slots)

    def find_slot(self, slot_id: str) -> Slot:
        """Return the slot with the given id anywhere in the cluster."""
        vm_id = slot_id.split(":", 1)[0]
        vm = self._vms.get(vm_id)
        if vm is not None:
            slot = vm.find_slot(slot_id)
            if slot is not None:
                return slot
        for vm in self._vms.values():
            slot = vm.find_slot(slot_id)
            if slot is not None:
                return slot
        raise KeyError(f"slot {slot_id} not found in cluster")

    def slot_vm(self, slot_id: str) -> str:
        """Return the VM id hosting the given slot."""
        return self.find_slot(slot_id).vm_id

    @property
    def utilization(self) -> float:
        """Overall fraction of occupied slots."""
        total = self.total_slots
        if total == 0:
            return 0.0
        return sum(len(vm.occupied_slots) for vm in self._vms.values()) / total

    def describe(self) -> Dict[str, int]:
        """Count of VMs per flavour, e.g. ``{"D2": 4}``."""
        counts: Dict[str, int] = {}
        for vm in self._vms.values():
            counts[vm.vm_type.name] = counts.get(vm.vm_type.name, 0) + 1
        return counts


class CloudProvider:
    """Provisions VMs against the simulated clock and tracks billing.

    Provisioning latency exists (cloud VMs do not appear instantly) but is not
    on the migration critical path in the paper: both the scale-in and
    scale-out experiments provision the target VMs before the migration request
    is issued, as real deployments do when the new schedule is planned ahead of
    enactment.
    """

    def __init__(
        self,
        sim: Simulator,
        provisioning_latency_s: float = 30.0,
        billing_granularity_s: float = 60.0,
        rng: Optional[RandomSource] = None,
        spot_market: Optional[SpotMarket] = None,
        provisioning: Optional[ProvisioningModel] = None,
    ) -> None:
        self.sim = sim
        self.provisioning_latency_s = provisioning_latency_s
        self.billing_granularity_s = billing_granularity_s
        self.spot_market = spot_market
        self.provisioning = provisioning
        self.provisioning_failures = 0
        self._rng = rng or RandomSource()
        self._counter = 0
        self._billing: Dict[str, BillingRecord] = {}
        self._subscribers: List[Callable[[VirtualMachine], None]] = []

    def subscribe(self, callback: Callable[[VirtualMachine], None]) -> None:
        """Register a callback invoked for every VM this provider creates.

        The chaos layer uses this to arm eviction processes on spot VMs as
        they appear, including replacements provisioned mid-run.
        """
        self._subscribers.append(callback)

    def _create(self, vm_id: str, vm_type: VMType, market: str, ready_at: float) -> VirtualMachine:
        hourly = vm_type.hourly_cost
        if market == SPOT:
            if self.spot_market is None:
                raise ValueError("provider has no spot market configured")
            hourly = self.spot_market.spot_hourly_cost(vm_type)
        elif market != ON_DEMAND:
            raise ValueError(f"unknown market {market!r}")
        vm = VirtualMachine(vm_id=vm_id, vm_type=vm_type)
        vm.provisioned_at = ready_at
        vm.tags["market"] = market
        self._billing[vm.vm_id] = BillingRecord(
            vm_id=vm.vm_id,
            vm_type=vm_type.name,
            provisioned_at=ready_at,
            deprovisioned_at=None,
            hourly_cost=hourly,
            market=market,
        )
        for callback in self._subscribers:
            callback(vm)
        return vm

    def provision(
        self,
        vm_type: VMType,
        count: int = 1,
        name_prefix: Optional[str] = None,
        market: str = ON_DEMAND,
    ) -> List[VirtualMachine]:
        """Provision ``count`` VMs of the given flavour immediately.

        The VMs are marked provisioned at the current simulated time; billing
        starts now (at the spot rate when ``market="spot"``).  Returns the
        new VMs.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        vms = []
        for _ in range(count):
            self._counter += 1
            prefix = name_prefix or vm_type.name.lower()
            vms.append(self._create(f"{prefix}-{self._counter:03d}", vm_type, market, self.sim.now))
        return vms

    def draw_provisioning(self, vm_id: str) -> Tuple[float, bool]:
        """Keyed ``(latency_s, succeeded)`` draw for one provisioning attempt.

        With no :class:`ProvisioningModel` configured, attempts always succeed
        after the flat ``provisioning_latency_s``.  Draws are keyed by
        ``(master_seed, "provisioning", vm_id)`` so they do not depend on
        what else the simulation interleaves.
        """
        model = self.provisioning
        if model is None:
            return self.provisioning_latency_s, True
        stream = KeyedStream(keyed_seed(self._rng.master_seed, "provisioning", vm_id))
        latency = model.base_latency_s
        if model.jitter_fraction > 0:
            latency *= 1.0 + stream.uniform(-model.jitter_fraction, model.jitter_fraction)
        if model.straggler_prob > 0 and stream.random() < model.straggler_prob:
            latency *= model.straggler_multiplier
        ok = not (model.failure_prob > 0 and stream.random() < model.failure_prob)
        return max(0.0, latency), ok

    def provision_with_latency(
        self,
        vm_type: VMType,
        count: int = 1,
        name_prefix: Optional[str] = None,
        market: str = ON_DEMAND,
    ) -> List[ProvisionTicket]:
        """Provision ``count`` VMs asynchronously, drawing per-VM latencies.

        Each returned ticket carries the VM and the delay until it is ready;
        the caller schedules its own readiness callback and adds the VM to a
        cluster when the delay elapses.  Failed attempts (per the
        :class:`ProvisioningModel` failure tail) are retried: their latency
        adds to the delay, they bill nothing, and they are counted in
        ``provisioning_failures`` and on the ticket.  Billing for the
        successful VM starts at its *ready* time, not at request time.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        prefix = name_prefix or vm_type.name.lower()
        tickets = []
        for _ in range(count):
            delay = 0.0
            failures = 0
            while True:
                self._counter += 1
                vm_id = f"{prefix}-{self._counter:03d}"
                latency, ok = self.draw_provisioning(vm_id)
                delay += latency
                if ok:
                    break
                failures += 1
                self.provisioning_failures += 1
            vm = self._create(vm_id, vm_type, market, self.sim.now + delay)
            tickets.append(ProvisionTicket(vm=vm, delay_s=delay, failures=failures))
        return tickets

    def mark_failed(self, vm: VirtualMachine) -> None:
        """Finalize billing for a VM lost to a crash or spot eviction.

        Unlike :meth:`deprovision` this does not require the VM's slots to be
        free — the cloud took the machine, occupied or not.  Executor
        teardown is the runtime's problem (``TopologyRuntime.fail_vm``).
        """
        if vm.deprovisioned_at is not None:
            raise ValueError(f"VM {vm.vm_id} is already deprovisioned")
        vm.deprovisioned_at = self.sim.now
        record = self._billing.get(vm.vm_id)
        if record is not None:
            record.deprovisioned_at = self.sim.now

    def deprovision(self, vm: VirtualMachine) -> None:
        """Release a VM; billing is finalized at the current simulated time.

        Raises if the VM still hosts executors or was already deprovisioned
        (double releases would silently corrupt the billing records).
        """
        if vm.occupied_slots:
            raise ValueError(
                f"cannot deprovision VM {vm.vm_id}: slots still occupied by "
                f"{[s.executor_id for s in vm.occupied_slots]}"
            )
        if vm.deprovisioned_at is not None:
            raise ValueError(f"VM {vm.vm_id} is already deprovisioned")
        vm.deprovisioned_at = self.sim.now
        record = self._billing.get(vm.vm_id)
        if record is not None:
            record.deprovisioned_at = self.sim.now

    def release_from(self, cluster: Cluster, vm_id: str) -> VirtualMachine:
        """Deprovision a VM *and* remove it from the cluster (scale-in path).

        This is the one-call variant elastic controllers use: the VM stops
        accruing cost and is no longer eligible for future placements.
        """
        vm = cluster.vm(vm_id)
        self.deprovision(vm)
        cluster.remove_vm(vm_id)
        return vm

    @property
    def billing_records(self) -> List[BillingRecord]:
        """All billing records, one per provisioned VM."""
        return list(self._billing.values())

    def total_cost(self) -> float:
        """Total accrued cost across all VMs at the current simulated time."""
        return sum(r.cost(self.sim.now, self.billing_granularity_s) for r in self._billing.values())

    def cost_breakdown(self) -> Dict[str, float]:
        """Accrued cost per market, e.g. ``{"on-demand": 1.2, "spot": 0.4}``."""
        breakdown: Dict[str, float] = {}
        for record in self._billing.values():
            cost = record.cost(self.sim.now, self.billing_granularity_s)
            breakdown[record.market] = breakdown.get(record.market, 0.0) + cost
        return breakdown
