"""Cloud provider, cluster and network model.

The :class:`CloudProvider` provisions and releases VMs against the simulated
clock and keeps per-minute billing records (the paper motivates rapid
migration with per-minute / per-second cloud billing).  The :class:`Cluster`
is the set of VMs currently backing a Storm-like deployment, and the
:class:`NetworkModel` supplies event-transfer latencies that distinguish
intra-VM from inter-VM hops (the locality benefit of scale-in mentioned in
the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.sim import KeyedStream, RandomSource, Simulator, keyed_seed
from repro.cluster.vm import Slot, VirtualMachine, VMType


@dataclass
class BillingRecord:
    """Billing entry for one provisioned VM."""

    vm_id: str
    vm_type: str
    provisioned_at: float
    deprovisioned_at: Optional[float]
    hourly_cost: float

    def cost(self, now: float, billing_granularity_s: float = 60.0) -> float:
        """Accrued cost, rounded *up* to the billing granularity (per-minute default)."""
        end = self.deprovisioned_at if self.deprovisioned_at is not None else now
        duration = max(0.0, end - self.provisioned_at)
        billed = math.ceil(duration / billing_granularity_s) * billing_granularity_s
        return self.hourly_cost * billed / 3600.0


class NetworkModel:
    """Latency model for event transfers between executors.

    Latencies are tiny compared to the 100 ms task latency used in the paper,
    but inter-VM hops are an order of magnitude slower than intra-VM ones,
    which is what gives scale-in its locality benefit.
    """

    def __init__(
        self,
        intra_vm_latency_s: float = 0.0002,
        inter_vm_latency_s: float = 0.0015,
        jitter_fraction: float = 0.1,
        rng: Optional[RandomSource] = None,
    ) -> None:
        self.intra_vm_latency_s = intra_vm_latency_s
        self.inter_vm_latency_s = inter_vm_latency_s
        self.jitter_fraction = jitter_fraction
        self._rng = rng or RandomSource()

    def base_latency(self, src_vm: Optional[str], dst_vm: Optional[str]) -> float:
        """Un-jittered transfer latency between the given VMs.

        ``None`` for either endpoint (e.g. an executor not yet placed) is
        treated as an inter-VM hop.  The router caches this per channel and
        applies jitter itself on the hot path.
        """
        if src_vm is not None and src_vm == dst_vm:
            return self.intra_vm_latency_s
        return self.inter_vm_latency_s

    def jitter_sampler(self):
        """Bound ``uniform(a, b)`` sampler of the shared jitter stream.

        Returns the stream's method directly so hot paths skip the per-call
        stream-registry lookup.  Binding it eagerly does not perturb the
        draw sequence: streams are seeded by name, not by creation order.
        """
        return self._rng.stream("network-jitter").uniform

    def keyed_jitter_stream(self, sender: str, receiver: str) -> KeyedStream:
        """Per-channel jitter stream for keyed-jitter mode.

        Seeded from ``(master_seed, "network-jitter", sender->receiver)``, so
        a channel's draw sequence depends only on its own delivery count —
        never on how other channels interleave.  Stateless with respect to
        this model: nothing is registered, the caller owns the counter.
        """
        return KeyedStream(keyed_seed(self._rng.master_seed, "network-jitter", f"{sender}->{receiver}"))

    def transfer_latency(self, src_vm: Optional[str], dst_vm: Optional[str]) -> float:
        """Latency for one event transfer between the given VMs.

        Reference implementation for tests and ad-hoc callers.  The router's
        hot path draws from the *same* ``network-jitter`` stream through its
        bound sampler, so calling this during a live run interleaves with
        (and shifts) the router's jitter sequence — fine for standalone use,
        but do not mix it into an in-flight experiment.
        """
        base = self.base_latency(src_vm, dst_vm)
        if self.jitter_fraction <= 0:
            return base
        jitter = self._rng.uniform("network-jitter", -self.jitter_fraction, self.jitter_fraction)
        return max(0.0, base * (1.0 + jitter))


class Cluster:
    """The set of VMs currently available to the DSPS deployment."""

    def __init__(self, vms: Optional[Iterable[VirtualMachine]] = None, network: Optional[NetworkModel] = None) -> None:
        self._vms: Dict[str, VirtualMachine] = {}
        self.network = network or NetworkModel()
        for vm in vms or []:
            self.add_vm(vm)

    # ------------------------------------------------------------ membership
    def add_vm(self, vm: VirtualMachine) -> None:
        """Add a VM to the cluster."""
        if vm.vm_id in self._vms:
            raise ValueError(f"VM {vm.vm_id} is already part of the cluster")
        self._vms[vm.vm_id] = vm

    def remove_vm(self, vm_id: str) -> VirtualMachine:
        """Remove a VM from the cluster and return it."""
        if vm_id not in self._vms:
            raise KeyError(f"VM {vm_id} is not part of the cluster")
        return self._vms.pop(vm_id)

    @property
    def vms(self) -> List[VirtualMachine]:
        """All VMs, in insertion order."""
        return list(self._vms.values())

    def vm(self, vm_id: str) -> VirtualMachine:
        """Return the VM with the given id."""
        return self._vms[vm_id]

    def __contains__(self, vm_id: str) -> bool:
        return vm_id in self._vms

    def __len__(self) -> int:
        return len(self._vms)

    # ----------------------------------------------------------------- slots
    @property
    def slots(self) -> List[Slot]:
        """All slots across all VMs."""
        return [slot for vm in self._vms.values() for slot in vm.slots]

    @property
    def free_slots(self) -> List[Slot]:
        """Slots not currently hosting an executor."""
        return [slot for slot in self.slots if not slot.occupied]

    @property
    def total_slots(self) -> int:
        """Total number of slots in the cluster."""
        return len(self.slots)

    def find_slot(self, slot_id: str) -> Slot:
        """Return the slot with the given id anywhere in the cluster."""
        vm_id = slot_id.split(":", 1)[0]
        vm = self._vms.get(vm_id)
        if vm is not None:
            slot = vm.find_slot(slot_id)
            if slot is not None:
                return slot
        for vm in self._vms.values():
            slot = vm.find_slot(slot_id)
            if slot is not None:
                return slot
        raise KeyError(f"slot {slot_id} not found in cluster")

    def slot_vm(self, slot_id: str) -> str:
        """Return the VM id hosting the given slot."""
        return self.find_slot(slot_id).vm_id

    @property
    def utilization(self) -> float:
        """Overall fraction of occupied slots."""
        total = self.total_slots
        if total == 0:
            return 0.0
        return sum(len(vm.occupied_slots) for vm in self._vms.values()) / total

    def describe(self) -> Dict[str, int]:
        """Count of VMs per flavour, e.g. ``{"D2": 4}``."""
        counts: Dict[str, int] = {}
        for vm in self._vms.values():
            counts[vm.vm_type.name] = counts.get(vm.vm_type.name, 0) + 1
        return counts


class CloudProvider:
    """Provisions VMs against the simulated clock and tracks billing.

    Provisioning latency exists (cloud VMs do not appear instantly) but is not
    on the migration critical path in the paper: both the scale-in and
    scale-out experiments provision the target VMs before the migration request
    is issued, as real deployments do when the new schedule is planned ahead of
    enactment.
    """

    def __init__(
        self,
        sim: Simulator,
        provisioning_latency_s: float = 30.0,
        billing_granularity_s: float = 60.0,
        rng: Optional[RandomSource] = None,
    ) -> None:
        self.sim = sim
        self.provisioning_latency_s = provisioning_latency_s
        self.billing_granularity_s = billing_granularity_s
        self._rng = rng or RandomSource()
        self._counter = 0
        self._billing: Dict[str, BillingRecord] = {}

    def provision(self, vm_type: VMType, count: int = 1, name_prefix: Optional[str] = None) -> List[VirtualMachine]:
        """Provision ``count`` VMs of the given flavour immediately.

        The VMs are marked provisioned at the current simulated time; billing
        starts now.  Returns the new VMs.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        vms = []
        for _ in range(count):
            self._counter += 1
            prefix = name_prefix or vm_type.name.lower()
            vm = VirtualMachine(vm_id=f"{prefix}-{self._counter:03d}", vm_type=vm_type)
            vm.provisioned_at = self.sim.now
            self._billing[vm.vm_id] = BillingRecord(
                vm_id=vm.vm_id,
                vm_type=vm_type.name,
                provisioned_at=self.sim.now,
                deprovisioned_at=None,
                hourly_cost=vm_type.hourly_cost,
            )
            vms.append(vm)
        return vms

    def deprovision(self, vm: VirtualMachine) -> None:
        """Release a VM; billing is finalized at the current simulated time.

        Raises if the VM still hosts executors or was already deprovisioned
        (double releases would silently corrupt the billing records).
        """
        if vm.occupied_slots:
            raise ValueError(
                f"cannot deprovision VM {vm.vm_id}: slots still occupied by "
                f"{[s.executor_id for s in vm.occupied_slots]}"
            )
        if vm.deprovisioned_at is not None:
            raise ValueError(f"VM {vm.vm_id} is already deprovisioned")
        vm.deprovisioned_at = self.sim.now
        record = self._billing.get(vm.vm_id)
        if record is not None:
            record.deprovisioned_at = self.sim.now

    def release_from(self, cluster: Cluster, vm_id: str) -> VirtualMachine:
        """Deprovision a VM *and* remove it from the cluster (scale-in path).

        This is the one-call variant elastic controllers use: the VM stops
        accruing cost and is no longer eligible for future placements.
        """
        vm = cluster.vm(vm_id)
        self.deprovision(vm)
        cluster.remove_vm(vm_id)
        return vm

    @property
    def billing_records(self) -> List[BillingRecord]:
        """All billing records, one per provisioned VM."""
        return list(self._billing.values())

    def total_cost(self) -> float:
        """Total accrued cost across all VMs at the current simulated time."""
        return sum(r.cost(self.sim.now, self.billing_granularity_s) for r in self._billing.values())
