"""Cloud and cluster substrate.

Models the IaaS layer the paper runs on: Azure D-series virtual machines that
are divided into single-core resource slots, a cloud provider that provisions
and bills them, and schedulers that place dataflow task instances onto slots.

The paper's experiments use three VM sizes (Table 1 and §5 "System Setup"):

* **D1** -- 1 core, 1 slot (scale-out target),
* **D2** -- 2 cores, 2 slots (default deployment),
* **D3** -- 4 cores, 4 slots (scale-in target; also hosts Redis and the
  source/sink tasks).

Each slot runs exactly one task instance (executor) and is assigned one
1-core Intel Xeon E5 v3 CPU with 3.5 GB RAM in the paper; we retain the
one-executor-per-slot invariant.
"""

from repro.cluster.vm import Slot, VirtualMachine, VMType, D1, D2, D3, VM_TYPES
from repro.cluster.cloud import (
    ON_DEMAND,
    SPOT,
    BillingRecord,
    CloudProvider,
    Cluster,
    NetworkModel,
    ProvisioningModel,
    ProvisionTicket,
    SpotMarket,
)
from repro.cluster.chaos import (
    ChaosSchedule,
    FaultEvent,
    FaultInjector,
    FaultRecord,
)
from repro.cluster.placement import PlacementPlan, placement_diff
from repro.cluster.scheduler import (
    ResourceAwareScheduler,
    RoundRobinScheduler,
    Scheduler,
    SchedulingError,
)

__all__ = [
    "BillingRecord",
    "ChaosSchedule",
    "CloudProvider",
    "Cluster",
    "D1",
    "D2",
    "D3",
    "FaultEvent",
    "FaultInjector",
    "FaultRecord",
    "NetworkModel",
    "ON_DEMAND",
    "PlacementPlan",
    "ProvisioningModel",
    "ProvisionTicket",
    "SPOT",
    "SpotMarket",
    "ResourceAwareScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "SchedulingError",
    "Slot",
    "VirtualMachine",
    "VMType",
    "VM_TYPES",
    "placement_diff",
]
