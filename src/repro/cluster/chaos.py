"""Deterministic fault injection: eviction storms, VM kills, slow clouds.

The chaos layer makes the failure modes that motivate fast migration —
spot-market evictions, zero-notice VM loss, provisioning stragglers — into
first-class simulated events.  A :class:`ChaosSchedule` is a declarative list
of :class:`FaultEvent`\\ s; the :class:`FaultInjector` arms them on the kernel
as cancellable timers (so the batch stepper's cascade horizon sees them and
disengages around each fault) and resolves targets at fire time.

Every stochastic choice — storm jitter, target selection, the spot market's
continuous eviction process — is a keyed draw from
``(seed, channel, key)``, never from shared mutable RNG state, so a chaos run
is bit-reproducible for a given seed regardless of how the rest of the
simulation interleaves.

Fault kinds:

* ``"evict"`` — spot-style eviction: the injector fires a *notice* (delivered
  to ``on_notice``, e.g. ``ElasticityController.handle_eviction_notice``),
  then reclaims the VM ``notice_s`` later **if it is still in the cluster**.
  A controller that drains and releases the VM inside the window evades the
  kill entirely (outcome ``"evaded"``).
* ``"kill"`` — zero-notice VM loss: the VM is reclaimed immediately via
  ``on_kill`` (e.g. ``ElasticityController.handle_vm_failure``).
* ``"provision-delay"`` — a cloud brown-out: provisioning latency is scaled
  by ``multiplier`` for ``duration_s`` seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from repro.sim import KeyedStream, Simulator, keyed_seed
from repro.cluster.cloud import SPOT, CloudProvider, Cluster
from repro.cluster.vm import VirtualMachine

EVICT = "evict"
KILL = "kill"
PROVISION_DELAY = "provision-delay"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``vm_id`` pins an explicit target; when ``None`` the injector picks a
    keyed-random eligible VM at fire time (so schedules compose with fleets
    whose membership is not known up front).
    """

    at_s: float
    kind: str
    vm_id: Optional[str] = None
    notice_s: float = 120.0
    duration_s: float = 0.0
    multiplier: float = 1.0


@dataclass
class FaultRecord:
    """Outcome of one armed fault event."""

    index: int
    event: FaultEvent
    vm_id: Optional[str] = None
    fired_at: Optional[float] = None
    deadline: Optional[float] = None
    killed_at: Optional[float] = None
    #: "pending" -> "killed" | "evaded" | "no-target" | "applied"
    outcome: str = "pending"


class ChaosSchedule:
    """An ordered, declarative list of fault events."""

    def __init__(self, events: Sequence[FaultEvent]) -> None:
        self.events: List[FaultEvent] = sorted(events, key=lambda e: e.at_s)

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def eviction_storm(
        cls,
        count: int,
        start_s: float,
        spacing_s: float = 60.0,
        notice_s: float = 120.0,
        jitter_s: float = 0.0,
        seed: int = 0,
        kind: str = EVICT,
    ) -> "ChaosSchedule":
        """A burst of ``count`` evictions starting at ``start_s``.

        Events are ``spacing_s`` apart plus a keyed uniform jitter of up to
        ``jitter_s``; pass ``kind="kill"`` for a zero-notice storm.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        events = []
        for i in range(count):
            at = start_s + i * spacing_s
            if jitter_s > 0:
                at += KeyedStream(keyed_seed(seed, "chaos-storm", i)).uniform(0.0, jitter_s)
            events.append(FaultEvent(at_s=at, kind=kind, notice_s=notice_s))
        return cls(events)


class FaultInjector:
    """Arms fault events on the kernel and tears down their targets.

    ``on_notice(vm_id, deadline_s)`` is called when an eviction notice fires;
    ``on_kill(vm_id, kind)`` when a VM is actually reclaimed (zero-notice
    kill, or an eviction whose deadline passed with the VM still present).
    ``on_kill`` owns the teardown — typically
    ``ElasticityController.handle_vm_failure``, which fails the runtime's
    executors, finalizes billing, and starts recovery.  Without a handler the
    injector only tears down *empty* VMs and fails loudly otherwise.

    Targets are drawn from cluster VMs whose ``tags["market"]`` is in
    ``target_markets`` and whose ``tags["role"]`` is not in ``exclude_roles``
    (the util VM hosting sources/sinks/Redis is off-limits by default, as in
    the paper's setup where D3 infrastructure VMs are on-demand).
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        provider: CloudProvider,
        seed: int = 0,
        on_notice: Optional[Callable[[str, float], None]] = None,
        on_kill: Optional[Callable[[str, str], None]] = None,
        target_markets: Sequence[str] = (SPOT,),
        exclude_roles: Sequence[str] = ("util",),
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.provider = provider
        self.seed = seed
        self.on_notice = on_notice
        self.on_kill = on_kill
        self.target_markets = tuple(target_markets)
        self.exclude_roles = tuple(exclude_roles)
        self.records: List[FaultRecord] = []
        self._doomed: set = set()

    # ---------------------------------------------------------------- arming
    def arm(self, schedule: ChaosSchedule) -> List[FaultRecord]:
        """Schedule every event in the given schedule; returns their records."""
        return [self._arm_event(event) for event in schedule.events]

    def _arm_event(self, event: FaultEvent) -> FaultRecord:
        record = FaultRecord(index=len(self.records), event=event)
        self.records.append(record)
        delay = max(0.0, event.at_s - self.sim.now)
        # Cancellable timers (not schedule_fast): they must be visible to
        # Simulator.next_timer_time() so batched cascades stop at each fault.
        self.sim.schedule(delay, self._fire, record)
        return record

    def arm_spot_evictions(self, horizon_s: Optional[float] = None) -> None:
        """Arm the market's continuous eviction process.

        Every spot VM — current fleet and any VM the provider creates later —
        draws a keyed exponential eviction time at the market's
        ``eviction_rate_per_hour``.  Draws beyond ``horizon_s`` (measured from
        the VM's ready time) are dropped: the VM survives the run.
        """
        market = self.provider.spot_market
        if market is None or market.eviction_rate_per_hour <= 0:
            return
        for vm in self.cluster.vms:
            self._arm_spot_vm(vm, horizon_s)
        self.provider.subscribe(lambda vm: self._arm_spot_vm(vm, horizon_s))

    def _arm_spot_vm(self, vm: VirtualMachine, horizon_s: Optional[float]) -> None:
        market = self.provider.spot_market
        if vm.tags.get("market") != SPOT or market is None:
            return
        u = KeyedStream(keyed_seed(self.seed, "spot-evict", vm.vm_id)).random()
        wait = -math.log(1.0 - u) / market.eviction_rate_per_hour * 3600.0
        if horizon_s is not None and wait > horizon_s:
            return
        ready = vm.provisioned_at if vm.provisioned_at is not None else self.sim.now
        at = max(self.sim.now, ready) + wait
        self._arm_event(FaultEvent(at_s=at, kind=EVICT, vm_id=vm.vm_id, notice_s=market.notice_s))

    # ---------------------------------------------------------------- firing
    def _eligible_vms(self) -> List[VirtualMachine]:
        vms = []
        for vm in sorted(self.cluster.vms, key=lambda v: v.vm_id):
            if vm.vm_id in self._doomed:
                continue
            if vm.tags.get("role") in self.exclude_roles:
                continue
            if self.target_markets and vm.tags.get("market") not in self.target_markets:
                continue
            vms.append(vm)
        return vms

    def _resolve_target(self, record: FaultRecord) -> Optional[str]:
        event = record.event
        if event.vm_id is not None:
            if event.vm_id in self.cluster and event.vm_id not in self._doomed:
                return event.vm_id
            return None
        eligible = self._eligible_vms()
        if not eligible:
            return None
        u = KeyedStream(keyed_seed(self.seed, "chaos-target", record.index)).random()
        return eligible[min(len(eligible) - 1, int(u * len(eligible)))].vm_id

    def _fire(self, record: FaultRecord) -> None:
        event = record.event
        record.fired_at = self.sim.now
        if event.kind == PROVISION_DELAY:
            self._apply_provision_delay(record)
            return
        vm_id = self._resolve_target(record)
        if vm_id is None:
            record.outcome = "no-target"
            return
        record.vm_id = vm_id
        if event.kind == KILL:
            self._kill(record)
        elif event.kind == EVICT:
            self._doomed.add(vm_id)
            record.deadline = self.sim.now + event.notice_s
            if self.on_notice is not None:
                self.on_notice(vm_id, record.deadline)
            self.sim.schedule(event.notice_s, self._deadline, record)
        else:
            raise ValueError(f"unknown fault kind {event.kind!r}")

    def _deadline(self, record: FaultRecord) -> None:
        self._doomed.discard(record.vm_id)
        if record.vm_id not in self.cluster:
            # The controller drained and released the VM inside the window.
            record.outcome = "evaded"
            return
        self._kill(record)

    def _kill(self, record: FaultRecord) -> None:
        vm_id = record.vm_id
        self._doomed.discard(vm_id)
        if vm_id not in self.cluster:
            record.outcome = "evaded"
            return
        record.outcome = "killed"
        record.killed_at = self.sim.now
        if self.on_kill is not None:
            self.on_kill(vm_id, record.event.kind)
            return
        vm = self.cluster.vm(vm_id)
        if vm.occupied_slots:
            raise RuntimeError(
                f"fault injector has no on_kill handler but VM {vm_id} hosts "
                f"executors; wire on_kill to the controller's handle_vm_failure"
            )
        self.provider.mark_failed(vm)
        self.cluster.remove_vm(vm_id)

    def _apply_provision_delay(self, record: FaultRecord) -> None:
        event = record.event
        record.outcome = "applied"
        model = self.provider.provisioning
        if model is not None:
            self.provider.provisioning = replace(
                model, base_latency_s=model.base_latency_s * event.multiplier
            )
            restore = lambda: setattr(self.provider, "provisioning", model)
        else:
            base = self.provider.provisioning_latency_s
            self.provider.provisioning_latency_s = base * event.multiplier
            restore = lambda: setattr(self.provider, "provisioning_latency_s", base)
        self.sim.schedule(event.duration_s, restore)

    # ------------------------------------------------------------- reporting
    @property
    def killed(self) -> List[FaultRecord]:
        """Records whose VM was actually reclaimed."""
        return [r for r in self.records if r.outcome == "killed"]

    @property
    def evaded(self) -> List[FaultRecord]:
        """Eviction records whose VM was drained and released in time."""
        return [r for r in self.records if r.outcome == "evaded"]
