"""Placement plans: the mapping from executors to slots.

A :class:`PlacementPlan` is the output of a scheduler and the input to both
initial deployment and rebalance.  Migration strategies do not compute plans
themselves (the paper explicitly scopes resource allocation out); they enact a
plan that has already been decided.

This module also owns **shared-fleet bin-packing**
(:func:`bin_pack_plan`): on a multi-tenant cluster several dataflows share
one VM fleet, so a new tenant's executors co-locate on partially filled VMs
instead of each tenant getting fresh machines.  Slots already occupied by
another tenant's executors are never reassigned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cloud imports vm only)
    from repro.cluster.cloud import Cluster


@dataclass
class PlacementPlan:
    """Mapping from executor id to slot id.

    The plan also remembers which VM each slot belongs to, so that the engine
    can derive locality without consulting the cluster again.
    """

    assignments: Dict[str, str] = field(default_factory=dict)
    slot_to_vm: Dict[str, str] = field(default_factory=dict)

    def assign(self, executor_id: str, slot_id: str, vm_id: str) -> None:
        """Add one executor-to-slot assignment."""
        if executor_id in self.assignments:
            raise ValueError(f"executor {executor_id} is already assigned to {self.assignments[executor_id]}")
        if slot_id in self.slot_to_vm and slot_id in set(self.assignments.values()):
            raise ValueError(f"slot {slot_id} is already used in this plan")
        self.assignments[executor_id] = slot_id
        self.slot_to_vm[slot_id] = vm_id

    def slot_of(self, executor_id: str) -> str:
        """Return the slot assigned to the executor."""
        return self.assignments[executor_id]

    def vm_of(self, executor_id: str) -> str:
        """Return the VM hosting the executor's assigned slot."""
        return self.slot_to_vm[self.assignments[executor_id]]

    @property
    def executors(self) -> List[str]:
        """All executor ids covered by the plan."""
        return list(self.assignments.keys())

    @property
    def vms_used(self) -> Set[str]:
        """Distinct VMs used by the plan."""
        return {self.slot_to_vm[s] for s in self.assignments.values()}

    def executors_on_vm(self, vm_id: str) -> List[str]:
        """All executors placed on the given VM."""
        return [e for e, s in self.assignments.items() if self.slot_to_vm.get(s) == vm_id]

    def __len__(self) -> int:
        return len(self.assignments)

    def __contains__(self, executor_id: str) -> bool:
        return executor_id in self.assignments

    def copy(self) -> "PlacementPlan":
        """Deep-enough copy of the plan."""
        return PlacementPlan(assignments=dict(self.assignments), slot_to_vm=dict(self.slot_to_vm))


class PackingError(ValueError):
    """Raised when a bin-packing request cannot be satisfied."""


def place_pinned(
    plan: PlacementPlan,
    pinned: Mapping[str, str],
    cluster: "Cluster",
    used_slots: Set[str],
) -> None:
    """Place pinned executors on free slots of their designated VMs.

    The one shared implementation behind every scheduler *and* the
    bin-packer: occupancy-aware (a slot another executor holds is never
    reused) and plan-aware (slots taken earlier in this plan are skipped).
    Raises :class:`PackingError`; scheduler callers re-wrap it.
    """
    for executor_id, vm_id in pinned.items():
        if vm_id not in cluster:
            raise PackingError(f"pinned VM {vm_id} for executor {executor_id} is not in the cluster")
        vm = cluster.vm(vm_id)
        slot = next(
            (s for s in vm.slots if not s.occupied and s.slot_id not in used_slots), None
        )
        if slot is None:
            raise PackingError(f"no free slot on pinned VM {vm_id} for executor {executor_id}")
        plan.assign(executor_id, slot.slot_id, vm_id)
        used_slots.add(slot.slot_id)


def bin_pack_plan(
    executor_ids: Sequence[str],
    cluster: "Cluster",
    pinned: Optional[Mapping[str, str]] = None,
    exclude_vms: Optional[Iterable[str]] = None,
) -> PlacementPlan:
    """Pack executors onto a shared fleet, preferring partially filled VMs.

    The multi-tenant placement rule: eligible VMs are visited *partially
    filled first* (a VM that already hosts someone else's executors but still
    has free slots), then empty ones, each filled completely before moving
    on — so co-located tenants consolidate onto as few machines as possible
    instead of each spreading over a fresh fleet.  Within each class the
    cluster's insertion order is kept, so the packing is deterministic.

    Only genuinely free slots are used: a slot occupied by *any* executor
    (this tenant's or another's) is never reassigned.  ``pinned`` forces
    specific executors onto free slots of specific VMs (source/sink util
    hosts); ``exclude_vms`` bars VMs from receiving unpinned executors
    (util VMs, VMs another tenant is about to deprovision).

    Raises :class:`PackingError` when the fleet cannot host the request.
    """
    plan = PlacementPlan()
    used_slots: Set[str] = set()
    pinned = dict(pinned or {})
    excluded = set(exclude_vms or [])

    place_pinned(plan, pinned, cluster, used_slots)

    eligible = [vm for vm in cluster.vms if vm.vm_id not in excluded]
    # Partially filled VMs first (stable within each class), empty VMs last.
    eligible.sort(key=lambda vm: 0 if vm.occupied_slots else 1)

    unpinned = [e for e in executor_ids if e not in pinned]
    free = [
        (vm, slot)
        for vm in eligible
        for slot in vm.slots
        if not slot.occupied and slot.slot_id not in used_slots
    ]
    if len(unpinned) > len(free):
        raise PackingError(
            f"shared fleet cannot host {len(unpinned)} executors: only {len(free)} free slots"
        )
    for executor_id, (vm, slot) in zip(unpinned, free):
        plan.assign(executor_id, slot.slot_id, vm.vm_id)
        used_slots.add(slot.slot_id)
    return plan


def incremental_plan(
    executor_ids: Sequence[str],
    cluster: "Cluster",
    old_plan: PlacementPlan,
    target_vm_ids: Sequence[str],
    preplaced: Optional[PlacementPlan] = None,
) -> PlacementPlan:
    """Rescale-aware placement: keep unchanged assignments, place only the delta.

    Every executor whose current assignment (per ``old_plan``) already lives
    on one of the ``target_vm_ids`` **keeps its slot** -- the rebalance then
    classifies it as *staying*, so it is neither killed nor restarted.  Only
    executors that are new (spawned by a rescale) or stranded on a
    non-target VM are placed, onto free slots of the target VMs in the order
    given (retained fleet first, then the freshly provisioned delta), each VM
    filled in slot order.

    A slot counts as free when it is unoccupied *or* occupied by one of the
    executors this plan is relocating (the rebalance releases those slots
    before applying the new assignments); slots held by anyone else -- a
    co-located tenant on a shared fleet -- are never touched.

    ``preplaced`` carries assignments decided outside this packing (pinned
    sources/sinks on the util VM); they are copied into the result verbatim.

    Raises :class:`PackingError` when the target VMs cannot host the delta.
    """
    plan = preplaced.copy() if preplaced is not None else PlacementPlan()
    used_slots: Set[str] = set(plan.assignments.values())
    targets = set(target_vm_ids)

    moving: List[str] = []
    for executor_id in executor_ids:
        old_slot = old_plan.assignments.get(executor_id)
        if (
            old_slot is not None
            and old_slot not in used_slots
            and old_plan.slot_to_vm.get(old_slot) in targets
        ):
            plan.assign(executor_id, old_slot, old_plan.slot_to_vm[old_slot])
            used_slots.add(old_slot)
        else:
            moving.append(executor_id)

    moving_set = set(moving)
    free: List[Tuple[str, str]] = []
    for vm_id in target_vm_ids:
        if vm_id not in cluster:
            raise PackingError(f"target VM {vm_id} is not in the cluster")
        for slot in cluster.vm(vm_id).slots:
            if slot.slot_id in used_slots:
                continue
            if slot.occupied and slot.executor_id not in moving_set:
                continue
            free.append((vm_id, slot.slot_id))
    if len(moving) > len(free):
        raise PackingError(
            f"target VMs cannot host the {len(moving)} relocating executors: "
            f"only {len(free)} free slots"
        )
    for executor_id, (vm_id, slot_id) in zip(moving, free):
        plan.assign(executor_id, slot_id, vm_id)
        used_slots.add(slot_id)
    return plan


def placement_diff(old: PlacementPlan, new: PlacementPlan) -> Tuple[Set[str], Set[str], Set[str]]:
    """Compare two plans and classify executors.

    Returns ``(migrating, staying, new_executors)`` where

    * ``migrating`` -- executors present in both plans whose slot changed (these
      are killed and restarted by a rebalance),
    * ``staying`` -- executors whose slot is unchanged (they keep running and
      buffer messages during the rebalance),
    * ``new_executors`` -- executors only present in the new plan.
    """
    migrating: Set[str] = set()
    staying: Set[str] = set()
    new_executors: Set[str] = set()
    for executor_id, slot_id in new.assignments.items():
        if executor_id not in old.assignments:
            new_executors.add(executor_id)
        elif old.assignments[executor_id] != slot_id:
            migrating.add(executor_id)
        else:
            staying.add(executor_id)
    return migrating, staying, new_executors
