"""Placement plans: the mapping from executors to slots.

A :class:`PlacementPlan` is the output of a scheduler and the input to both
initial deployment and rebalance.  Migration strategies do not compute plans
themselves (the paper explicitly scopes resource allocation out); they enact a
plan that has already been decided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Set, Tuple


@dataclass
class PlacementPlan:
    """Mapping from executor id to slot id.

    The plan also remembers which VM each slot belongs to, so that the engine
    can derive locality without consulting the cluster again.
    """

    assignments: Dict[str, str] = field(default_factory=dict)
    slot_to_vm: Dict[str, str] = field(default_factory=dict)

    def assign(self, executor_id: str, slot_id: str, vm_id: str) -> None:
        """Add one executor-to-slot assignment."""
        if executor_id in self.assignments:
            raise ValueError(f"executor {executor_id} is already assigned to {self.assignments[executor_id]}")
        if slot_id in self.slot_to_vm and slot_id in set(self.assignments.values()):
            raise ValueError(f"slot {slot_id} is already used in this plan")
        self.assignments[executor_id] = slot_id
        self.slot_to_vm[slot_id] = vm_id

    def slot_of(self, executor_id: str) -> str:
        """Return the slot assigned to the executor."""
        return self.assignments[executor_id]

    def vm_of(self, executor_id: str) -> str:
        """Return the VM hosting the executor's assigned slot."""
        return self.slot_to_vm[self.assignments[executor_id]]

    @property
    def executors(self) -> List[str]:
        """All executor ids covered by the plan."""
        return list(self.assignments.keys())

    @property
    def vms_used(self) -> Set[str]:
        """Distinct VMs used by the plan."""
        return {self.slot_to_vm[s] for s in self.assignments.values()}

    def executors_on_vm(self, vm_id: str) -> List[str]:
        """All executors placed on the given VM."""
        return [e for e, s in self.assignments.items() if self.slot_to_vm.get(s) == vm_id]

    def __len__(self) -> int:
        return len(self.assignments)

    def __contains__(self, executor_id: str) -> bool:
        return executor_id in self.assignments

    def copy(self) -> "PlacementPlan":
        """Deep-enough copy of the plan."""
        return PlacementPlan(assignments=dict(self.assignments), slot_to_vm=dict(self.slot_to_vm))


def placement_diff(old: PlacementPlan, new: PlacementPlan) -> Tuple[Set[str], Set[str], Set[str]]:
    """Compare two plans and classify executors.

    Returns ``(migrating, staying, new_executors)`` where

    * ``migrating`` -- executors present in both plans whose slot changed (these
      are killed and restarted by a rebalance),
    * ``staying`` -- executors whose slot is unchanged (they keep running and
      buffer messages during the rebalance),
    * ``new_executors`` -- executors only present in the new plan.
    """
    migrating: Set[str] = set()
    staying: Set[str] = set()
    new_executors: Set[str] = set()
    for executor_id, slot_id in new.assignments.items():
        if executor_id not in old.assignments:
            new_executors.add(executor_id)
        elif old.assignments[executor_id] != slot_id:
            migrating.add(executor_id)
        else:
            staying.add(executor_id)
    return migrating, staying, new_executors
