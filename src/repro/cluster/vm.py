"""Virtual machines, VM types and resource slots.

The unit of placement in Storm (and in this reproduction) is the *slot*: a
1-core share of a VM that hosts exactly one executor (task instance).  The
paper's clusters are built from Azure D-series VMs whose core count equals the
number of slots they expose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class VMType:
    """An IaaS virtual machine flavour.

    Attributes
    ----------
    name:
        Flavour name (e.g. ``"D2"``).
    cores:
        Number of CPU cores; in this reproduction one core backs one slot.
    memory_gb:
        Total memory; the paper allocates 3.5 GB per core.
    slots:
        Number of Storm worker slots exposed by the VM.
    hourly_cost:
        Nominal pay-as-you-go price used by the billing model (relative units;
        only ratios between flavours matter for the consolidation argument).
    """

    name: str
    cores: int
    memory_gb: float
    slots: int
    hourly_cost: float

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.slots <= 0:
            raise ValueError(f"VMType {self.name!r} must have positive cores and slots")
        if self.slots > self.cores:
            raise ValueError(
                f"VMType {self.name!r}: slots ({self.slots}) cannot exceed cores ({self.cores})"
            )


#: Azure D1: 1 core / 1 slot.  Scale-out target in the paper.
D1 = VMType(name="D1", cores=1, memory_gb=3.5, slots=1, hourly_cost=0.077)
#: Azure D2: 2 cores / 2 slots.  Default deployment in the paper.
D2 = VMType(name="D2", cores=2, memory_gb=7.0, slots=2, hourly_cost=0.154)
#: Azure D3: 4 cores / 4 slots.  Scale-in target; also hosts Redis and source/sink.
D3 = VMType(name="D3", cores=4, memory_gb=14.0, slots=4, hourly_cost=0.308)

#: Registry of the flavours used across the paper's experiments.
VM_TYPES: Dict[str, VMType] = {"D1": D1, "D2": D2, "D3": D3}


@dataclass
class Slot:
    """A single-core resource slot on a VM.

    A slot hosts at most one executor at a time.  ``executor_id`` is managed by
    the :class:`~repro.engine.runtime.TopologyRuntime` during deployment and
    rebalance.
    """

    slot_id: str
    vm_id: str
    index: int
    executor_id: Optional[str] = None

    @property
    def occupied(self) -> bool:
        """Whether an executor is currently assigned to this slot."""
        return self.executor_id is not None

    def assign(self, executor_id: str) -> None:
        """Assign an executor to this slot; raises if already occupied."""
        if self.executor_id is not None and self.executor_id != executor_id:
            raise ValueError(
                f"slot {self.slot_id} already hosts executor {self.executor_id}; "
                f"cannot assign {executor_id}"
            )
        self.executor_id = executor_id

    def release(self) -> Optional[str]:
        """Release the slot and return the executor that occupied it (if any)."""
        executor_id, self.executor_id = self.executor_id, None
        return executor_id


class VirtualMachine:
    """A provisioned VM with its resource slots.

    VMs are created by :class:`~repro.cluster.cloud.CloudProvider`.  A VM is a
    passive container of slots; execution timing is handled by the engine.
    """

    def __init__(self, vm_id: str, vm_type: VMType, tags: Optional[Dict[str, str]] = None) -> None:
        self.vm_id = vm_id
        self.vm_type = vm_type
        self.tags: Dict[str, str] = dict(tags or {})
        self.slots: List[Slot] = [
            Slot(slot_id=f"{vm_id}:slot{i}", vm_id=vm_id, index=i) for i in range(vm_type.slots)
        ]
        self.provisioned_at: Optional[float] = None
        self.deprovisioned_at: Optional[float] = None

    # ----------------------------------------------------------------- state
    @property
    def active(self) -> bool:
        """Whether the VM is provisioned and not yet released."""
        return self.provisioned_at is not None and self.deprovisioned_at is None

    @property
    def free_slots(self) -> List[Slot]:
        """Slots that currently host no executor."""
        return [s for s in self.slots if not s.occupied]

    @property
    def occupied_slots(self) -> List[Slot]:
        """Slots that currently host an executor."""
        return [s for s in self.slots if s.occupied]

    @property
    def utilization(self) -> float:
        """Fraction of slots occupied (0.0 - 1.0)."""
        if not self.slots:
            return 0.0
        return len(self.occupied_slots) / len(self.slots)

    def slot(self, index: int) -> Slot:
        """Return the slot with the given index."""
        return self.slots[index]

    def find_slot(self, slot_id: str) -> Optional[Slot]:
        """Return the slot with the given id, or ``None``."""
        for slot in self.slots:
            if slot.slot_id == slot_id:
                return slot
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualMachine({self.vm_id}, type={self.vm_type.name}, "
            f"slots={len(self.occupied_slots)}/{len(self.slots)} occupied)"
        )
