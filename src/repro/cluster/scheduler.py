"""Task-instance schedulers.

Schedulers compute a :class:`~repro.cluster.placement.PlacementPlan` mapping
executors (task instances) to slots on cluster VMs.  The paper uses Storm's
default round-robin scheduler "during initial deployment and on rebalance";
we also provide a resource-aware packing scheduler (in the spirit of R-Storm,
the paper's reference [3]) as an alternative baseline for ablations.

Executors may be *pinned* to a specific VM: the paper pins the source and sink
tasks to a dedicated 4-slot VM that never migrates, so end-to-end statistics
can be logged without clock skew.

All schedulers are **occupancy-aware**: a slot that already hosts an executor
is never handed out.  On a single-tenant cluster this is a no-op (deploys
start empty, migrations target freshly provisioned VMs); on a multi-tenant
shared fleet it is what keeps one dataflow's placement from trampling
another's.  :class:`SharedFleetScheduler` additionally bin-packs onto
partially filled VMs and consults a dynamic exclusion set (util VMs of other
tenants, VMs another tenant's in-flight migration is about to deprovision).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.cluster.cloud import Cluster
from repro.cluster.placement import PackingError, PlacementPlan, bin_pack_plan, place_pinned
from repro.cluster.vm import VirtualMachine


class SchedulingError(RuntimeError):
    """Raised when a placement cannot be produced (e.g. not enough free slots)."""


class Scheduler(ABC):
    """Base class for placement schedulers."""

    @abstractmethod
    def schedule(
        self,
        executor_ids: Sequence[str],
        cluster: Cluster,
        pinned: Optional[Mapping[str, str]] = None,
        exclude_vms: Optional[Iterable[str]] = None,
    ) -> PlacementPlan:
        """Compute a placement for the given executors.

        Parameters
        ----------
        executor_ids:
            Executors to place, in deterministic order.
        cluster:
            The cluster providing VMs and slots.
        pinned:
            Optional mapping ``executor_id -> vm_id`` forcing specific
            executors onto specific VMs (used for source/sink tasks).
        exclude_vms:
            VMs that must not receive *unpinned* executors (e.g. the dedicated
            source/sink VM).
        """

    # ------------------------------------------------------------- utilities
    @staticmethod
    def _slot_free(slot, used_slots: Set[str]) -> bool:
        """Whether a slot may be handed out: unused by this plan and unoccupied."""
        return slot.slot_id not in used_slots and not slot.occupied

    @staticmethod
    def _place_pinned(
        plan: PlacementPlan,
        pinned: Mapping[str, str],
        cluster: Cluster,
        used_slots: Set[str],
    ) -> None:
        """Place pinned executors on free slots of their designated VMs."""
        try:
            place_pinned(plan, pinned, cluster, used_slots)
        except PackingError as exc:
            raise SchedulingError(str(exc)) from exc


class RoundRobinScheduler(Scheduler):
    """Storm's default even scheduler: distribute executors round-robin over VMs.

    Executors are assigned one at a time, cycling through the eligible VMs in
    insertion order and taking the next free slot of each VM.  This spreads
    instances evenly and, as the paper notes, does not try to exploit locality.
    """

    def schedule(
        self,
        executor_ids: Sequence[str],
        cluster: Cluster,
        pinned: Optional[Mapping[str, str]] = None,
        exclude_vms: Optional[Iterable[str]] = None,
    ) -> PlacementPlan:
        plan = PlacementPlan()
        used_slots: Set[str] = set()
        pinned = dict(pinned or {})
        excluded = set(exclude_vms or [])

        self._place_pinned(plan, pinned, cluster, used_slots)

        eligible_vms: List[VirtualMachine] = [
            vm for vm in cluster.vms if vm.vm_id not in excluded
        ]
        if not eligible_vms:
            remaining = [e for e in executor_ids if e not in pinned]
            if remaining:
                raise SchedulingError("no eligible VMs available for unpinned executors")
            return plan

        unpinned = [e for e in executor_ids if e not in pinned]
        total_free = sum(
            1 for vm in eligible_vms for s in vm.slots if self._slot_free(s, used_slots)
        )
        if len(unpinned) > total_free:
            raise SchedulingError(
                f"not enough free slots: need {len(unpinned)}, have {total_free}"
            )

        vm_index = 0
        for executor_id in unpinned:
            placed = False
            attempts = 0
            while not placed and attempts < len(eligible_vms):
                vm = eligible_vms[vm_index % len(eligible_vms)]
                vm_index += 1
                attempts += 1
                slot = next((s for s in vm.slots if self._slot_free(s, used_slots)), None)
                if slot is not None:
                    plan.assign(executor_id, slot.slot_id, vm.vm_id)
                    used_slots.add(slot.slot_id)
                    placed = True
            if not placed:
                raise SchedulingError(f"could not place executor {executor_id}")
        return plan


class ResourceAwareScheduler(Scheduler):
    """Packing scheduler in the spirit of R-Storm.

    Fills each VM's slots completely before moving to the next one, which
    maximises locality (fewer network hops) and minimises the number of VMs
    used -- the consolidation scenario motivating scale-in in the paper's
    Figure 1.
    """

    def schedule(
        self,
        executor_ids: Sequence[str],
        cluster: Cluster,
        pinned: Optional[Mapping[str, str]] = None,
        exclude_vms: Optional[Iterable[str]] = None,
    ) -> PlacementPlan:
        plan = PlacementPlan()
        used_slots: Set[str] = set()
        pinned = dict(pinned or {})
        excluded = set(exclude_vms or [])

        self._place_pinned(plan, pinned, cluster, used_slots)

        eligible_vms = [vm for vm in cluster.vms if vm.vm_id not in excluded]
        unpinned = [e for e in executor_ids if e not in pinned]
        total_free = sum(
            1 for vm in eligible_vms for s in vm.slots if self._slot_free(s, used_slots)
        )
        if len(unpinned) > total_free:
            raise SchedulingError(
                f"not enough free slots: need {len(unpinned)}, have {total_free}"
            )

        slot_iter = (
            (vm, slot)
            for vm in eligible_vms
            for slot in vm.slots
            if self._slot_free(slot, used_slots)
        )
        for executor_id, (vm, slot) in zip(unpinned, slot_iter):
            plan.assign(executor_id, slot.slot_id, vm.vm_id)
            used_slots.add(slot.slot_id)
        if len(plan) < len(unpinned) + len(pinned):
            raise SchedulingError("could not place all executors")
        return plan


class SharedFleetScheduler(Scheduler):
    """Multi-tenant scheduler: bin-pack onto the shared fleet.

    Delegates to :func:`repro.cluster.placement.bin_pack_plan` (partially
    filled VMs first, occupied slots never reassigned) and merges a dynamic
    exclusion set into every request — the
    :class:`~repro.multi.manager.ClusterManager` supplies a callable
    returning the VM ids that must not receive this tenant's executors right
    now: every tenant's util VM plus any VM an in-flight migration is about
    to deprovision (rebalancing onto a dying VM would strand the executor).
    """

    def __init__(self, excluded_vms_fn: Optional[Callable[[], Set[str]]] = None) -> None:
        self._excluded_vms_fn = excluded_vms_fn

    def schedule(
        self,
        executor_ids: Sequence[str],
        cluster: Cluster,
        pinned: Optional[Mapping[str, str]] = None,
        exclude_vms: Optional[Iterable[str]] = None,
    ) -> PlacementPlan:
        excluded = set(exclude_vms or [])
        if self._excluded_vms_fn is not None:
            excluded |= self._excluded_vms_fn()
        pinned = dict(pinned or {})
        # Pinned VMs (this tenant's own util host) always stay reachable for
        # their pinned executors even when the dynamic set lists them.
        try:
            return bin_pack_plan(executor_ids, cluster, pinned=pinned, exclude_vms=excluded)
        except PackingError as exc:
            raise SchedulingError(str(exc)) from exc
