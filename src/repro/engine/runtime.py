"""The topology runtime: deployment, execution and rebalance of a dataflow.

This is the reproduction's stand-in for the Storm nimbus + supervisors +
workers: it places executors on cluster slots, wires the router, the acker
service, the state store and the checkpoint coordinator together, drives
event flow against the simulated clock, and implements the ``rebalance``
command (kill migrating executors, reassign slots, restart workers with a
modelled start-up delay).

Migration strategies (:mod:`repro.core`) orchestrate the runtime; they never
touch executors directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.cluster.cloud import Cluster
from repro.cluster.placement import PlacementPlan, placement_diff
from repro.cluster.scheduler import RoundRobinScheduler, Scheduler
from repro.dataflow.event import CheckpointAction, Event
from repro.dataflow.graph import Dataflow, RescalePlan
from repro.dataflow.task import TaskKind
from repro.engine.config import RuntimeConfig
from repro.engine.executor import (
    CHECKPOINT_SOURCE_ID,
    Executor,
    ExecutorStatus,
    SinkExecutor,
    SourceExecutor,
)
from repro.engine.batch import BatchStepper
from repro.engine.router import Router
from repro.metrics.log import HAVE_COLUMNAR, ColumnarEventLog, EventLog
from repro.reliability.acker import AckerService
from repro.reliability.checkpoint import CheckpointCoordinator, WaveMode
from repro.reliability.statestore import StateStore
from repro.sim import RandomSource, Simulator


class RuntimeError_(RuntimeError):
    """Raised for invalid runtime operations (e.g. rebalance before deploy)."""


@dataclass
class RebalanceRecord:
    """Bookkeeping for one invocation of the rebalance command."""

    started_at: float
    command_duration_s: float
    migrating: Set[str]
    staying: Set[str]
    loaded: bool
    command_completed_at: Optional[float] = None
    executor_ready_at: Dict[str, float] = field(default_factory=dict)

    @property
    def all_ready_at(self) -> Optional[float]:
        """Time at which the last migrated executor became ready, if known."""
        if not self.executor_ready_at:
            return self.command_completed_at
        return max(self.executor_ready_at.values())


@dataclass
class RescaleRecord:
    """Bookkeeping for one enacted parallelism change."""

    applied_at: float
    #: task name -> (old parallelism, new parallelism), only tasks that changed.
    changes: Dict[str, Tuple[int, int]]
    #: Executor ids created by the rescale (they restore state via INIT).
    spawned: List[str] = field(default_factory=list)
    #: Executor ids retired by the rescale (killed, slots released).
    retired: List[str] = field(default_factory=list)
    #: Surviving instances of rescaled tasks: they must restart too, because
    #: their in-memory keyed state belongs to the *old* FIELDS partitioning.
    restarting: Set[str] = field(default_factory=set)

    @property
    def affected_tasks(self) -> List[str]:
        """Names of the rescaled tasks, sorted."""
        return sorted(self.changes)


@dataclass
class VMFailureRecord:
    """Bookkeeping for one VM lost to a crash or spot eviction."""

    vm_id: str
    failed_at: float
    #: Executor ids that were hosted on the VM when it died.
    lost: List[str]
    #: Data events dropped with the executors (their queued/pending backlog).
    events_lost: int
    #: Tuple trees failed fast through the acker (acking runs only).
    trees_failed: int


class TopologyRuntime:
    """Deploys and runs one dataflow on a cluster under the simulated clock."""

    def __init__(
        self,
        dataflow: Dataflow,
        cluster: Cluster,
        sim: Optional[Simulator] = None,
        config: Optional[RuntimeConfig] = None,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        self.dataflow = dataflow
        self.cluster = cluster
        self.sim = sim if sim is not None else Simulator()
        self.config = config if config is not None else RuntimeConfig()
        self.timing = self.config.timing
        self.reliability = self.config.reliability
        self.scheduler = scheduler if scheduler is not None else RoundRobinScheduler()
        self.rng = RandomSource(self.config.seed)

        if self.config.columnar_log and HAVE_COLUMNAR:
            self.log: EventLog = ColumnarEventLog(self.sim)
        else:
            self.log = EventLog(self.sim)
        self.statestore = StateStore(
            self.sim,
            base_latency_s=self.timing.statestore_base_latency_s,
            per_byte_latency_s=self.timing.statestore_per_byte_latency_s,
        )
        self.acker = AckerService(
            self.sim,
            timeout_s=self.reliability.ack_timeout_s,
            on_complete=self._tree_completed,
            on_fail=self._tree_failed,
        )
        self.checkpoints = CheckpointCoordinator(self.sim)
        self.checkpoints.bind(self._emit_checkpoint_wave, self.user_executor_id_set)
        self.router = Router(self)
        #: Batch-stepping cascade (perf mode): materializes quiescent
        #: steady-state stretches inline instead of per-event kernel
        #: callbacks.  Engaged under data acking too: the stepper replays the
        #: acker XOR stream in bulk (per-tree folds, back-dated timers, exact
        #: spout-pending accounting) and disengages around the windows where
        #: per-event ack timing is observable — loss, replay, migrations.
        self.batch_stepper = None
        if self.config.batch_stepping:
            self.batch_stepper = BatchStepper(self)
        # Cohort handler for Simulator.run_batched(): same-time deliveries
        # are dispatched with one executor lookup per consecutive target.
        self.sim.register_batch_handler(self.deliver, self._deliver_cohort)

        self.executors: Dict[str, Executor] = {}
        self._user_executors_cache: Optional[List[Executor]] = None
        self.placement: Optional[PlacementPlan] = None
        self.deployed = False
        self.rebalances: List[RebalanceRecord] = []
        self.rescales: List[RescaleRecord] = []
        # Survivors of a rescaled task that the next rebalance must restart
        # even if their slot does not change (their in-memory state is keyed
        # by the old instance count).
        self._forced_restarts: Set[str] = set()
        self._util_vm_id: Optional[str] = None
        # Data events addressed to an executor that is currently restarting are
        # held here by the (reconnecting) transport and delivered once the
        # executor is ready, mirroring Storm's buffering messaging clients.
        self._deferred_deliveries: Dict[str, List[Tuple[Event, str]]] = {}
        # Restricted target sets for recovery INIT waves: checkpoint_id ->
        # executor ids.  A broadcast wave for a listed checkpoint is emitted
        # only to these executors, so restoring the victims of a dead VM does
        # not roll survivors back to the last checkpoint.
        self._wave_targets: Dict[int, Set[str]] = {}
        #: Records of VM failures handled by :meth:`fail_vm`.
        self.vm_failures: List[VMFailureRecord] = []
        #: Telemetry facade (metrics registry + span tracer), or ``None`` when
        #: ``config.telemetry`` is off -- instrumentation sites guard on this.
        self.telemetry = None
        if self.config.telemetry:
            from ..obs import Telemetry

            self.telemetry = Telemetry()

    # ------------------------------------------------------------ properties
    @property
    def ack_data_events(self) -> bool:
        """Whether data events are tracked by the acker service."""
        return self.reliability.ack_all_events

    @property
    def source_executors(self) -> List[SourceExecutor]:
        """All source executors."""
        return [e for e in self.executors.values() if isinstance(e, SourceExecutor)]

    @property
    def sink_executors(self) -> List[SinkExecutor]:
        """All sink executors."""
        return [e for e in self.executors.values() if isinstance(e, SinkExecutor)]

    @property
    def user_executors(self) -> List[Executor]:
        """Executors of processing (user) tasks, in topological task order.

        The list is cached (checkpoint waves and control-barrier queries ask
        for it on hot paths) and invalidated whenever the executor set can
        change (deploy, rebalance).
        """
        if self._user_executors_cache is None:
            result = []
            for name in self.dataflow.topological_order:
                task = self.dataflow.task(name)
                if task.kind is not TaskKind.PROCESS:
                    continue
                for executor_id in task.instance_ids():
                    executor = self.executors.get(executor_id)
                    if executor is not None:
                        result.append(executor)
            self._user_executors_cache = result
        return list(self._user_executors_cache)

    def _invalidate_executor_cache(self) -> None:
        """Drop the cached user-executor list (executor set may have changed)."""
        self._user_executors_cache = None

    def user_executor_id_set(self) -> Set[str]:
        """Ids of all user-task executors (the expected acking set for checkpoint waves)."""
        return {e.executor_id for e in self.user_executors}

    @property
    def sources_paused(self) -> bool:
        """Whether every source executor is currently paused."""
        sources = self.source_executors
        return bool(sources) and all(s.paused for s in sources)

    def executor_vm(self, executor_id: str) -> Optional[str]:
        """VM currently hosting the given executor (None for virtual senders)."""
        executor = self.executors.get(executor_id)
        return executor.vm_id if executor is not None else None

    @property
    def util_vm_id(self) -> Optional[str]:
        """Id of the dedicated source/sink VM, if one exists."""
        return self._util_vm_id

    # ------------------------------------------------------------ deployment
    def _create_executors(self) -> None:
        for task in self.dataflow.tasks:
            for index, executor_id in enumerate(task.instance_ids()):
                if task.kind is TaskKind.SOURCE:
                    executor: Executor = SourceExecutor(executor_id, task, index, self)
                elif task.kind is TaskKind.SINK:
                    executor = SinkExecutor(executor_id, task, index, self)
                else:
                    executor = Executor(executor_id, task, index, self)
                self.executors[executor_id] = executor
        self._invalidate_executor_cache()

    def _find_util_vm(self) -> Optional[str]:
        for vm in self.cluster.vms:
            if vm.tags.get("role") == self.config.util_vm_role:
                return vm.vm_id
        return None

    def deploy(self) -> PlacementPlan:
        """Create executors and place them on the cluster (initial schedule)."""
        if self.deployed:
            raise RuntimeError_("dataflow is already deployed")
        self._create_executors()
        self._util_vm_id = self._find_util_vm()

        ordered_ids: List[str] = []
        pinned: Dict[str, str] = {}
        for name in self.dataflow.topological_order:
            task = self.dataflow.task(name)
            for executor_id in task.instance_ids():
                ordered_ids.append(executor_id)
                if task.kind in (TaskKind.SOURCE, TaskKind.SINK) and self._util_vm_id is not None:
                    pinned[executor_id] = self._util_vm_id

        exclude = [self._util_vm_id] if self._util_vm_id is not None else []
        plan = self.scheduler.schedule(ordered_ids, self.cluster, pinned=pinned, exclude_vms=exclude)
        self._apply_placement(plan, plan.executors)
        self.placement = plan
        self.deployed = True

        if self.reliability.periodic_checkpoint_interval_s:
            self.checkpoints.start_periodic(self.reliability.periodic_checkpoint_interval_s)
        return plan

    def _apply_placement(self, plan: PlacementPlan, executor_ids: List[str]) -> None:
        for executor_id in executor_ids:
            slot_id = plan.slot_of(executor_id)
            slot = self.cluster.find_slot(slot_id)
            slot.assign(executor_id)
            self.executors[executor_id].place(slot_id, plan.vm_of(executor_id))
        # Executors moved: the router's channel-latency/route-plan caches are stale.
        self.router.invalidate_caches()

    def start(self) -> None:
        """Start all executors (sources begin emitting)."""
        if not self.deployed:
            raise RuntimeError_("deploy() must be called before start()")
        for executor in self.executors.values():
            executor.start()

    def run(self, until: float) -> None:
        """Advance the simulation until the given simulated time."""
        self.sim.run(until=until)

    def run_batched(self, until: float) -> None:
        """Advance the simulation with cohort dispatch (see Simulator.run_batched).

        Semantically equivalent to :meth:`run`; same-time delivery cohorts
        are dispatched in one call each.  The deeper batch-stepping cascade
        additionally activates under either run variant when
        ``RuntimeConfig.batch_stepping`` is set.
        """
        self.sim.run_batched(until=until)

    def stop_sources(self) -> None:
        """Stop all source generators (end of experiment)."""
        for source in self.source_executors:
            source.stop()

    # --------------------------------------------------------------- pausing
    def pause_sources(self) -> None:
        """Pause every source (no new events are emitted; a backlog accumulates)."""
        for source in self.source_executors:
            source.pause()

    def unpause_sources(self) -> None:
        """Resume every source; backlogs drain at the configured burst rate."""
        for source in self.source_executors:
            source.unpause()

    # ------------------------------------------------------------ event flow
    def route(self, executor: Executor, events: List[Event]) -> None:
        """Route events produced by an executor along its task's outgoing edges."""
        self.router.route(executor.executor_id, executor.task.name, events)

    def ack_processed(self, event: Event) -> None:
        """Acknowledge a fully processed data event to the acker service."""
        # Cheapest check first: `anchored` is a plain attribute and False for
        # every event when acking is off (the common configuration).
        if event.anchored and self.ack_data_events and event.is_data:
            self.acker.ack(event.root_id, event.event_id)

    def deliver(self, executor_id: str, event: Event, sender_id: str) -> None:
        """Deliver an event to an executor.

        Data events addressed to an executor that is restarting (killed by a
        rebalance but part of the current placement) are held by the transport
        and re-delivered once the executor is ready, as Storm's reconnecting
        messaging clients do.  Checkpoint control events are *not* held: their
        loss is recovered by the coordinator's re-send logic, which is what
        produces the INIT re-send waves the paper observes.
        """
        executor = self.executors.get(executor_id)
        if executor is not None and executor.deliver(event, sender_id):
            return
        self._undeliverable(executor_id, executor, event, sender_id)

    def _undeliverable(
        self, executor_id: str, executor: Optional[Executor], event: Event, sender_id: str
    ) -> None:
        """Drop/defer bookkeeping for a delivery the executor refused."""
        if executor is None:
            self.log.record_drop(executor_id, event.kind.value, "unknown-executor", event.root_id)
            return
        if event.is_data and self.placement is not None and executor_id in self.placement:
            self._deferred_deliveries.setdefault(executor_id, []).append((event, sender_id))
            self.log.record_deferred(executor_id, event.root_id)
        else:
            self.log.record_drop(executor_id, event.kind.value, executor.status.value, event.root_id)

    def _deliver_cohort(self, time: float, cohort: List[Tuple[str, Event, str]]) -> None:
        """Deliver a same-time cohort popped by :meth:`Simulator.run_batched`.

        Entries are handled strictly in their original (seq) order --
        batching only amortizes the executor lookup across consecutive
        deliveries to the same target.
        """
        executors = self.executors
        last_id: Optional[str] = None
        last_executor: Optional[Executor] = None
        for executor_id, event, sender_id in cohort:
            if executor_id != last_id:
                last_id = executor_id
                last_executor = executors.get(executor_id)
            if last_executor is not None and last_executor.deliver(event, sender_id):
                continue
            self._undeliverable(executor_id, last_executor, event, sender_id)

    # --------------------------------------------------------- acker callbacks
    def _tree_completed(self, root_id: int) -> None:
        for source in self.source_executors:
            source.tree_completed(root_id)

    def _tree_failed(self, root_id: int) -> None:
        for source in self.source_executors:
            source.replay(root_id)

    # ---------------------------------------------------- checkpoint plumbing
    def _emit_checkpoint_wave(self, action: CheckpointAction, checkpoint_id: int, mode: WaveMode) -> None:
        meta = {
            "forward": mode is WaveMode.SEQUENTIAL,
            "capture": action is CheckpointAction.PREPARE and self.reliability.capture_on_prepare,
        }
        restricted = self._wave_targets.get(checkpoint_id)
        if restricted is not None:
            targets = sorted(restricted)
        elif mode is WaveMode.SEQUENTIAL:
            targets = [
                executor_id
                for task in self.dataflow.entry_tasks
                for executor_id in task.instance_ids()
            ]
        else:
            targets = [e.executor_id for e in self.user_executors]
        for target in targets:
            event = Event.checkpoint(action, checkpoint_id, CHECKPOINT_SOURCE_ID, created_at=self.sim.now)
            event.payload = dict(meta)
            self.router.send_direct(CHECKPOINT_SOURCE_ID, target, event)

    def forward_control(self, executor: Executor, event: Event) -> None:
        """Forward a control event to every instance of downstream user tasks."""
        for successor in self.dataflow.successors(executor.task.name):
            successor_task = self.dataflow.task(successor)
            if successor_task.kind is not TaskKind.PROCESS:
                continue
            for target in successor_task.instance_ids():
                self.router.send_direct(executor.executor_id, target, event.copy_for_edge())

    def control_ack(self, executor: Executor, event: Event) -> None:
        """Report an executor's acknowledgment of a control event to the coordinator."""
        self.checkpoints.notify_ack(executor.executor_id, event.checkpoint_action, event.checkpoint_id)

    def expected_control_senders(self, executor: Executor) -> Set[str]:
        """Senders a task must hear a sequential control event from before acting.

        Entry tasks expect the checkpoint source; other tasks expect a copy
        from every instance of every upstream user task (barrier alignment).
        """
        senders: Set[str] = set()
        for predecessor in self.dataflow.predecessors(executor.task.name):
            predecessor_task = self.dataflow.task(predecessor)
            if predecessor_task.kind is TaskKind.PROCESS:
                senders.update(predecessor_task.instance_ids())
            elif predecessor_task.kind is TaskKind.SOURCE:
                senders.add(CHECKPOINT_SOURCE_ID)
        if not senders:
            senders.add(CHECKPOINT_SOURCE_ID)
        return senders

    # ---------------------------------------------------------------- rescale
    def apply_rescale(self, plan: RescalePlan) -> RescaleRecord:
        """Change task parallelism at runtime: spawn/retire executor instances.

        For every task whose instance count changes, the runtime

        * **retires** trailing instances on a shrink: they are killed, their
          slots released and their ids removed from the current placement;
        * **spawns** fresh instances on a grow (status STARTING); the next
          rebalance places them and they initialize through the INIT wave;
        * marks the surviving instances for a **forced restart** at the next
          rebalance: their in-memory state was partitioned for the old
          instance count, so they must restore from the re-partitioned
          checkpoint like everyone else;
        * invalidates the router's route plans, so FIELDS groupings re-key to
          the new instance count, and drops retired executors from any
          in-flight checkpoint waves (they can no longer acknowledge).

        Migration strategies decide *when* this is safe to call (DCR/CCR:
        after the COMMIT wave, with the dataflow drained/captured; DSM:
        immediately, accepting the event loss its acker recovers).  The
        statestore re-partitioning itself is a separate step
        (:func:`repro.reliability.repartition.repartition_task_state`).
        """
        if not self.deployed or self.placement is None:
            raise RuntimeError_("cannot rescale before deploy()")
        plan.validate(self.dataflow)
        changes = plan.changes(self.dataflow)
        record = RescaleRecord(applied_at=self.sim.now, changes=changes)
        for task_name in sorted(changes):
            old_count, new_count = changes[task_name]
            task = self.dataflow.task(task_name)
            if new_count < old_count:
                for index in range(new_count, old_count):
                    executor_id = f"{task_name}#{index}"
                    executor = self.executors.pop(executor_id, None)
                    if executor is not None and executor.status is not ExecutorStatus.KILLED:
                        executor.kill()
                    for event, _sender in self._deferred_deliveries.pop(executor_id, []):
                        self.log.record_drop(executor_id, event.kind.value, "retired", event.root_id)
                    old_slot_id = self.placement.assignments.pop(executor_id, None)
                    if old_slot_id is not None:
                        try:
                            self.cluster.find_slot(old_slot_id).release()
                        except KeyError:
                            pass
                    self.log.record_lifecycle(executor_id, "retired")
                    record.retired.append(executor_id)
            else:
                for index in range(old_count, new_count):
                    executor_id = f"{task_name}#{index}"
                    self.executors[executor_id] = Executor(executor_id, task, index, self)
                    self.log.record_lifecycle(executor_id, "spawned")
                    record.spawned.append(executor_id)
            survivors = {f"{task_name}#{i}" for i in range(min(old_count, new_count))}
            record.restarting |= survivors
            self.dataflow.set_parallelism(task_name, new_count)
        self._forced_restarts |= record.restarting
        self.checkpoints.discard_executors(set(record.retired))
        self._invalidate_executor_cache()
        self.router.invalidate_caches()
        self.rescales.append(record)
        return record

    @property
    def last_rescale(self) -> Optional[RescaleRecord]:
        """The most recent rescale record, if any."""
        return self.rescales[-1] if self.rescales else None

    # --------------------------------------------------------------- rebalance
    def rebalance(
        self,
        new_plan: PlacementPlan,
        on_command_complete: Optional[Callable[[RebalanceRecord], None]] = None,
    ) -> RebalanceRecord:
        """Enact Storm's ``rebalance`` command with a zero timeout.

        Migrating executors are killed immediately (their queued events are
        lost), slots are reassigned per ``new_plan``, and each migrated
        executor becomes ready again after a modelled worker start-up delay.
        ``on_command_complete`` fires when the rebalance command itself
        returns, which is when the migration strategies send their INIT waves.
        """
        if not self.deployed or self.placement is None:
            raise RuntimeError_("cannot rebalance before deploy()")
        # Every live executor must be covered: an executor missing from the
        # new plan would silently lose its placement and drop all deliveries
        # forever -- the classic mistake being a plan computed *before* a
        # rescale grew the executor set (pass a plan factory instead).
        uncovered = sorted(set(self.executors) - set(new_plan.assignments))
        if uncovered:
            raise RuntimeError_(
                f"rebalance plan does not place live executors {uncovered}; "
                "plans must cover the current (post-rescale) executor set"
            )

        migrating, staying, new_executors = placement_diff(self.placement, new_plan)
        migrating = set(migrating) | set(new_executors)
        staying = set(staying)
        # Survivors of a rescale restart even when their slot is unchanged:
        # their in-memory state belongs to the old instance partitioning.
        forced = self._forced_restarts & set(new_plan.assignments)
        self._forced_restarts = set()
        migrating |= forced
        staying -= forced
        loaded = not self.sources_paused and self.ack_data_events
        record = RebalanceRecord(
            started_at=self.sim.now,
            command_duration_s=max(
                2.0,
                self.rng.gauss(
                    "rebalance-duration",
                    self.timing.rebalance_command_mean_s,
                    self.timing.rebalance_command_stddev_s,
                ),
            ),
            migrating=set(migrating),
            staying=set(staying),
            loaded=loaded,
        )
        self.rebalances.append(record)

        # Kill migrating executors and release their slots immediately.  The
        # iteration is sorted so kill/lifecycle records (and everything
        # downstream of them) are reproducible across processes: ``migrating``
        # is a set of strings, whose order varies with PYTHONHASHSEED.
        for executor_id in sorted(migrating):
            executor = self.executors.get(executor_id)
            if executor is None:
                continue
            # STARTING executors were never live; KILLED ones already died
            # (e.g. with a failed VM) — killing again would double-count
            # losses in the log.
            if executor.status not in (ExecutorStatus.STARTING, ExecutorStatus.KILLED):
                executor.kill()
            old_slot_id = self.placement.assignments.get(executor_id)
            if old_slot_id is not None:
                try:
                    self.cluster.find_slot(old_slot_id).release()
                except KeyError:
                    pass

        # Apply the new placement for migrating executors (sorted: see above).
        for executor_id in sorted(migrating):
            if executor_id not in new_plan.assignments:
                continue
            slot_id = new_plan.slot_of(executor_id)
            slot = self.cluster.find_slot(slot_id)
            if slot.executor_id != executor_id:
                slot.assign(executor_id)
            self.executors[executor_id].place(slot_id, new_plan.vm_of(executor_id))

        self.placement = new_plan
        self._invalidate_executor_cache()
        self.router.invalidate_caches()
        self.sim.schedule(record.command_duration_s, self._complete_rebalance, record, on_command_complete)
        return record

    def _complete_rebalance(
        self, record: RebalanceRecord, on_command_complete: Optional[Callable[[RebalanceRecord], None]]
    ) -> None:
        record.command_completed_at = self.sim.now
        self._schedule_worker_starts(record)
        if on_command_complete is not None:
            on_command_complete(record)

    def _schedule_worker_starts(self, record: RebalanceRecord) -> None:
        """Schedule the readiness of every migrated executor.

        Workers restart in parallel once the rebalance command completes: each
        executor becomes ready after a base delay plus a uniformly distributed
        extra delay whose spread grows with the number of migrating executors
        (code distribution and coordination contention).  If the rebalance
        happened while the dataflow was live (DSM does not pause the sources),
        restart is further slowed by a load multiplier plus a
        per-migrating-executor penalty.
        """
        timing = self.timing
        total_migrating = len(record.migrating)
        spread = (
            timing.worker_start_spread_base_s
            + timing.worker_start_spread_per_executor_s * total_migrating
        )
        for executor_id in sorted(record.migrating):
            delay = timing.worker_start_base_s + self.rng.uniform(
                f"worker-start:{executor_id}", 0.0, spread
            )
            if record.loaded:
                delay = delay * timing.loaded_start_multiplier + (
                    timing.loaded_start_per_executor_s * total_migrating
                )
            ready_at = self.sim.now + delay
            record.executor_ready_at[executor_id] = ready_at
            self.sim.schedule(delay, self._make_ready, executor_id)

    def _make_ready(self, executor_id: str) -> None:
        executor = self.executors.get(executor_id)
        if executor is None:
            return
        executor.become_ready()
        for event, sender_id in self._deferred_deliveries.pop(executor_id, []):
            executor.deliver(event, sender_id)

    # -------------------------------------------------------------- vm failure
    def fail_vm(self, vm_id: str) -> VMFailureRecord:
        """Tear down a VM the cloud reclaimed: kill its executors, fail their trees.

        Models *unplanned* loss (crash or spot eviction) as opposed to the
        planned kills of a rebalance: every executor of this dataflow hosted
        on the VM is killed in place — queued and in-memory events are gone —
        its slot is released, and the VM is removed from the cluster (unless
        another dataflow still occupies it on a shared fleet).  Under data
        acking, the tuple trees of the dropped events are failed *fast*
        through the acker, so sources replay them without waiting out the ack
        timeout; trees whose events were on the wire when the VM died still
        recover via the timeout.  In-flight checkpoint waves stop expecting
        the dead executors, so a concurrent migration cannot wedge on them.

        The victims stay in ``self.executors`` with status KILLED and keep
        their (now slotless) placement entries; recovery re-places them via
        :meth:`rebalance` and restores their keyed state via
        :meth:`restore_executors`.
        """
        if not self.deployed or self.placement is None:
            raise RuntimeError_("cannot fail a VM before deploy()")
        vm = self.cluster.vm(vm_id)
        lost = sorted(
            slot.executor_id
            for slot in vm.occupied_slots
            if slot.executor_id in self.executors
        )
        record = VMFailureRecord(
            vm_id=vm_id, failed_at=self.sim.now, lost=lost, events_lost=0, trees_failed=0
        )
        roots: Set[int] = set()
        for executor_id in lost:
            executor = self.executors[executor_id]
            if self.ack_data_events:
                for event, _sender in list(executor.input_queue) + list(executor.pre_init_buffer):
                    if event.is_data and event.anchored:
                        roots.add(event.root_id)
                for event in executor.pending_events:
                    if event.anchored:
                        roots.add(event.root_id)
            # The transport's buffered deliveries die with the connection.
            for event, _sender in self._deferred_deliveries.pop(executor_id, []):
                if self.ack_data_events and event.is_data and event.anchored:
                    roots.add(event.root_id)
            if executor.status is not ExecutorStatus.KILLED:
                queued, pending = executor.kill()
                record.events_lost += queued + pending
            self.log.record_lifecycle(executor_id, "vm-lost")
            slot_id = self.placement.assignments.get(executor_id)
            if slot_id is not None:
                try:
                    self.cluster.find_slot(slot_id).release()
                except KeyError:
                    pass
        self.checkpoints.discard_executors(set(lost))
        if not vm.occupied_slots:
            self.cluster.remove_vm(vm_id)
        self._invalidate_executor_cache()
        self.router.invalidate_caches()
        # Fail-fast last: replays routed to the dead executors are deferred by
        # the transport and re-delivered once recovery re-places them.
        for root_id in sorted(roots):
            if self.acker.is_pending(root_id):
                self.acker.fail(root_id)
                record.trees_failed += 1
        self.vm_failures.append(record)
        return record

    def restore_executors(
        self,
        executor_ids: List[str],
        on_complete: Optional[Callable[[], None]] = None,
        resend_interval_s: float = 1.0,
    ) -> int:
        """Restore re-placed executors' keyed state with a targeted INIT wave.

        The wave uses a *fresh* checkpoint id: executors ignore duplicates of
        ids they already acted on (the coordinator's resend semantics), so
        re-initializing a recovered executor must never reuse the id of the
        wave that initialized it before the crash.  The INIT is emitted only
        to the given executors — survivors keep their in-memory state; the
        targets load their last stored snapshot from the state store.  The
        wave resends until every target (even one still restarting) has
        acted.  Returns the wave's checkpoint id.
        """
        targets = {eid for eid in executor_ids if eid in self.executors}
        if not targets:
            if on_complete is not None:
                on_complete()
            return 0
        checkpoint_id = self.checkpoints.new_checkpoint_id()
        self._wave_targets[checkpoint_id] = set(targets)

        def _done(_wave) -> None:
            self._wave_targets.pop(checkpoint_id, None)
            if on_complete is not None:
                on_complete()

        self.checkpoints.start_wave(
            CheckpointAction.INIT,
            checkpoint_id=checkpoint_id,
            mode=WaveMode.BROADCAST,
            on_complete=_done,
            resend_interval_s=resend_interval_s,
            expected=set(targets),
        )
        return checkpoint_id

    # -------------------------------------------------------------- inspection
    @property
    def last_rebalance(self) -> Optional[RebalanceRecord]:
        """The most recent rebalance record, if any."""
        return self.rebalances[-1] if self.rebalances else None

    def executor(self, executor_id: str) -> Executor:
        """Return the executor with the given id."""
        return self.executors[executor_id]

    def queue_backlog(self) -> int:
        """Total number of events queued across all executors (diagnostic)."""
        return sum(len(e.input_queue) for e in self.executors.values())
