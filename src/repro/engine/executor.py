"""Executors: the runtime instances of dataflow tasks.

One executor corresponds to one Storm executor (task instance) running in one
resource slot.  Its behaviour mirrors the paper's description of the modified
``StatefulBoltExecutor``:

* a **single-threaded input queue** -- events (data and checkpoint control
  events alike) are processed strictly in arrival order;
* **platform logic** wraps the user logic and handles checkpoint control
  events: PREPARE snapshots the user state (and, for CCR, enables *capture
  mode*), COMMIT persists the snapshot (plus the captured pending events) to
  the state store, INIT restores it, ROLLBACK discards it;
* **capture mode** (CCR): once the broadcast PREPARE has been processed, data
  events are appended to a pending-event list instead of being processed, and
  nothing is emitted downstream;
* **barrier alignment** for sequential control waves: a task with multiple
  upstream tasks acts on a control event only once it has received a copy from
  every upstream executor instance, which is what guarantees the drain
  semantics of DCR (the PREPARE is the rearguard behind all in-flight data on
  every input channel);
* after a restart (migration), the executor is *uninitialized*: data events
  are buffered until the INIT event restores its state (and, for CCR, replays
  the captured pending events).

Sources and sinks are specializations: the source generates the input stream
at a fixed rate, can be paused/unpaused (buffering a backlog while paused),
caches emitted roots for replay when acking is enabled; the sink records every
received event in the run's event log.
"""

from __future__ import annotations

import copy
from collections import deque
from enum import Enum
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.dataflow.event import CheckpointAction, Event, EventKind, next_event_id, recycle_event
from repro.dataflow.task import SinkTask, SourceTask, Task
from repro.reliability.statestore import checkpoint_key


#: Virtual sender id used for control events injected by the checkpoint source.
CHECKPOINT_SOURCE_ID = "$checkpoint-source"
#: Virtual sender id used for events restored from a checkpoint (CCR replay).
RESTORED_SENDER_ID = "$restored"

#: Enum members bound as module constants: the hot paths below read them once
#: per event, and a module-global load is cheaper than global + attribute.
_DATA = EventKind.DATA
_CHECKPOINT = EventKind.CHECKPOINT


class ExecutorStatus(Enum):
    """Lifecycle status of an executor."""

    #: Created but not yet running (worker still starting); deliveries are dropped.
    STARTING = "starting"
    #: Running and accepting events.
    RUNNING = "running"
    #: Killed by a rebalance; deliveries are dropped until restarted.
    KILLED = "killed"


_RUNNING = ExecutorStatus.RUNNING


class Executor:
    """Runtime instance of one task (one slot's worth of work).

    Slotted: executor fields are read several times per simulated event, so
    slot storage (instead of an instance dict) is a measurable win across a
    full experiment matrix.
    """

    __slots__ = (
        "executor_id",
        "task",
        "instance_index",
        "runtime",
        "sim",
        "slot_id",
        "vm_id",
        "status",
        "initialized",
        "input_queue",
        "pre_init_buffer",
        "state",
        "capture_mode",
        "pending_events",
        "_prepared",
        "_busy",
        "_control_seen",
        "_control_acted",
        "processed_count",
        "captured_count",
        "restored_count",
        "busy_time_s",
        "_service_time",
    )

    def __init__(self, executor_id: str, task: Task, instance_index: int, runtime: "TopologyRuntimeLike") -> None:
        self.executor_id = executor_id
        self.task = task
        self.instance_index = instance_index
        self.runtime = runtime
        self.sim = runtime.sim

        self.slot_id: Optional[str] = None
        self.vm_id: Optional[str] = None

        self.status = ExecutorStatus.STARTING
        #: Whether the task has been initialized (true at first deployment;
        #: false after a restart until an INIT event restores it).
        self.initialized = True

        self.input_queue: Deque[Tuple[Event, str]] = deque()
        self.pre_init_buffer: Deque[Tuple[Event, str]] = deque()
        self.state: Dict[str, Any] = dict(task.initial_state())

        self.capture_mode = False
        self.pending_events: List[Event] = []
        self._prepared: Dict[int, Dict[str, Any]] = {}

        self._busy = False
        self._control_seen: Dict[Tuple[int, str], Set[str]] = {}
        self._control_acted: Set[Tuple[int, str]] = set()

        self.processed_count = 0
        self.captured_count = 0
        self.restored_count = 0
        #: Cumulative seconds spent servicing data events.  Together with
        #: ``processed_count`` this yields the task's *measured* service rate
        #: (ev/s per busy instance), which the elastic monitor feeds back into
        #: capacity planning.
        self.busy_time_s = 0.0
        # Per-event service time, fixed for the executor's lifetime (the
        # timing model and task latency are set before deployment).
        self._service_time = task.latency_s + runtime.timing.data_event_overhead_s

    # ------------------------------------------------------------ placement
    def place(self, slot_id: str, vm_id: str) -> None:
        """Record the slot/VM this executor currently occupies."""
        self.slot_id = slot_id
        self.vm_id = vm_id

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Transition to RUNNING (initial deployment)."""
        self.status = ExecutorStatus.RUNNING
        self.runtime.log.record_lifecycle(self.executor_id, "running")
        self._maybe_process()

    def kill(self) -> Tuple[int, int]:
        """Kill the executor, dropping queued and captured events.

        Returns ``(queued_lost, pending_lost)``.  Anything in the input queue,
        the pre-init buffer, or the in-memory pending list is lost (that is
        precisely the in-flight message loss DSM suffers); state persisted to
        the state store survives.
        """
        queued_lost = sum(1 for event, _ in self.input_queue if event.is_data)
        queued_lost += sum(1 for event, _ in self.pre_init_buffer if event.is_data)
        pending_lost = len(self.pending_events)
        self.input_queue.clear()
        self.pre_init_buffer.clear()
        self.pending_events = []
        self.capture_mode = False
        self._prepared.clear()
        self._busy = False
        self.status = ExecutorStatus.KILLED
        self.initialized = False
        self.runtime.log.record_kill(self.executor_id, queued_lost, pending_lost)
        self.runtime.log.record_lifecycle(self.executor_id, "killed")
        return queued_lost, pending_lost

    def become_ready(self) -> None:
        """Worker restart finished: start accepting events again (uninitialized)."""
        if self.status is ExecutorStatus.RUNNING:
            return
        self.state = dict(self.task.initial_state())
        self.input_queue.clear()
        self.pre_init_buffer.clear()
        self.pending_events = []
        self.capture_mode = False
        self._busy = False
        self.status = ExecutorStatus.RUNNING
        self.initialized = False
        self.runtime.log.record_lifecycle(self.executor_id, "ready")

    @property
    def is_running(self) -> bool:
        """Whether the executor accepts deliveries."""
        return self.status is ExecutorStatus.RUNNING

    @property
    def queue_length(self) -> int:
        """Number of events waiting in the input queue."""
        return len(self.input_queue)

    # -------------------------------------------------------------- delivery
    def deliver(self, event: Event, sender_id: str) -> bool:
        """Accept an event from the router; returns False if it must be dropped."""
        if self.status is not _RUNNING:
            return False
        if not self.initialized and event.kind is _DATA:
            # Stateful-bolt semantics: data received before initialization is
            # buffered and handled once the INIT event restores the task.
            self.pre_init_buffer.append((event, sender_id))
            return True
        if self._busy or self.input_queue:
            self.input_queue.append((event, sender_id))
            return True
        # Idle fast path: the event would be appended and immediately popped
        # by _maybe_process in the same tick (unobservably), so start service
        # directly and skip the queue round-trip.
        self._busy = True
        if event.kind is _CHECKPOINT:
            self.sim.schedule_fast(
                self.runtime.timing.checkpoint_handling_s, self._handle_control, (event, sender_id)
            )
        elif self.capture_mode:
            self.pending_events.append(event)
            self.captured_count += 1
            self._busy = False
            # Scheduled (not elided) to keep kernel event counts identical to
            # the queued path: tie-breaking order is part of reproducibility.
            self.sim.schedule_fast(0.0, self._maybe_process)
        else:
            self.sim.schedule_fast(self._service_time, self._complete_data, (event,))
        return True

    # ------------------------------------------------------------ processing
    def _maybe_process(self) -> None:
        # Service completions and control handling are never cancelled, so they
        # ride the kernel's fire-and-forget fast path (no Timer allocation).
        if self._busy or self.status is not ExecutorStatus.RUNNING or not self.input_queue:
            return
        event, sender_id = self.input_queue.popleft()
        self._busy = True
        if event.kind is _CHECKPOINT:
            self.sim.schedule_fast(
                self.runtime.timing.checkpoint_handling_s, self._handle_control, (event, sender_id)
            )
        elif self.capture_mode:
            # Capture without processing: the event joins the pending list that
            # will be persisted with the next COMMIT (CCR).
            self.pending_events.append(event)
            self.captured_count += 1
            self._busy = False
            self.sim.schedule_fast(0.0, self._maybe_process)
        else:
            self.sim.schedule_fast(self._service_time, self._complete_data, (event,))

    def _complete_data(self, event: Event) -> None:
        if self.status is not _RUNNING:
            self._busy = False
            return
        runtime = self.runtime
        task = self.task
        outputs = task.logic(event.payload, self.state)
        # Capture the ack identity up front: the router owns routed events and
        # re-stamps the reused object with a fresh id (see Router.route).
        acked = event.anchored and event.kind is _DATA and runtime.ack_data_events
        if acked:
            ack_root_id = event.root_id
            ack_event_id = event.event_id
        if outputs:
            now = self.sim.now
            if len(outputs) == 1:
                # 1:1 selectivity (the dominant case): mutate the processed
                # event into its own child instead of allocating one.  The id
                # is drawn at the same counter position derive() would use,
                # so event ids are bit-identical to the allocating path.
                payload = outputs[0]
                event.event_id = next_event_id()
                event.source_task = task.name
                if payload is not None:
                    event.payload = payload
                event.created_at = now
                children = (event,)
            else:
                children = [event.derive(task.name, payload, now) for payload in outputs]
            if self.capture_mode:
                # The event that was being executed when PREPARE arrived: its
                # outputs are captured rather than emitted downstream (CCR).
                self.pending_events.extend(children)
                self.captured_count += len(children)
            else:
                runtime.router.route(self.executor_id, task.name, children)
        if acked:
            runtime.acker.ack(ack_root_id, ack_event_id)
        self.processed_count += 1
        self.busy_time_s += self._service_time
        self._busy = False
        if self.input_queue:
            self._maybe_process()

    # --------------------------------------------------------- control events
    def _handle_control(self, event: Event, sender_id: str) -> None:
        action = event.checkpoint_action
        checkpoint_id = event.checkpoint_id
        meta = event.payload or {}
        forward = bool(meta.get("forward", True))
        key = (checkpoint_id, action.value)

        seen = self._control_seen.setdefault(key, set())
        seen.add(sender_id)
        acted = key in self._control_acted

        if acted:
            # Duplicate (e.g. re-sent INIT): still forward and re-ack so lost
            # downstream copies are eventually recovered, but do not act again.
            if forward:
                self.runtime.forward_control(self, event)
            self.runtime.control_ack(self, event)
            self._finish_control()
            return

        if forward:
            expected = self.runtime.expected_control_senders(self)
            barrier_met = expected.issubset(seen)
        else:
            barrier_met = True

        if not barrier_met:
            # Wait for copies from the remaining upstream instances before acting.
            self._finish_control()
            return

        self._control_acted.add(key)
        if action is CheckpointAction.PREPARE:
            self._do_prepare(event, meta, forward)
        elif action is CheckpointAction.COMMIT:
            self._do_commit(event, meta, forward)
        elif action is CheckpointAction.INIT:
            self._do_init(event, meta, forward)
        elif action is CheckpointAction.ROLLBACK:
            self._do_rollback(event, meta, forward)
        else:  # pragma: no cover - defensive
            self._finish_control()

    def _do_prepare(self, event: Event, meta: Dict[str, Any], forward: bool) -> None:
        snapshot = copy.deepcopy(self.state) if self.task.stateful else {}
        self._prepared[event.checkpoint_id] = snapshot
        if meta.get("capture", False):
            self.capture_mode = True
        if forward:
            self.runtime.forward_control(self, event)
        self.runtime.control_ack(self, event)
        self._finish_control()

    def _do_commit(self, event: Event, meta: Dict[str, Any], forward: bool) -> None:
        checkpoint_id = event.checkpoint_id
        snapshot = self._prepared.pop(checkpoint_id, None)
        if snapshot is None:
            snapshot = copy.deepcopy(self.state) if self.task.stateful else {}
        pending = list(self.pending_events) if self.capture_mode else []
        value = {"state": snapshot, "pending": pending, "checkpoint_id": checkpoint_id}
        size = self.runtime.statestore.checkpoint_size_bytes(self.task.state_size_bytes, len(pending))

        def _persisted() -> None:
            if forward:
                self.runtime.forward_control(self, event)
            self.runtime.control_ack(self, event)
            self._finish_control()

        self.runtime.statestore.put(self._checkpoint_key(), value, size, on_complete=_persisted)

    def _do_init(self, event: Event, meta: Dict[str, Any], forward: bool) -> None:
        def _restored(value: Optional[Dict[str, Any]]) -> None:
            restored_pending: List[Event] = []
            if value:
                if self.task.stateful and value.get("state") is not None:
                    self.state = copy.deepcopy(value["state"])
                restored_pending = list(value.get("pending") or [])
            self.capture_mode = False
            self.pending_events = []
            buffered = list(self.pre_init_buffer)
            self.pre_init_buffer.clear()
            self.initialized = True
            self.restored_count += 1
            for restored_event in restored_pending:
                self.input_queue.append((restored_event, RESTORED_SENDER_ID))
            for buffered_event, buffered_sender in buffered:
                self.input_queue.append((buffered_event, buffered_sender))
            self.runtime.log.record_lifecycle(self.executor_id, "initialized")
            if forward:
                self.runtime.forward_control(self, event)
            self.runtime.control_ack(self, event)
            self._finish_control()

        self.runtime.statestore.get(self._checkpoint_key(), on_complete=_restored)

    def _do_rollback(self, event: Event, meta: Dict[str, Any], forward: bool) -> None:
        self._prepared.pop(event.checkpoint_id, None)
        self.capture_mode = False
        if forward:
            self.runtime.forward_control(self, event)
        self.runtime.control_ack(self, event)
        self._finish_control()

    def _finish_control(self) -> None:
        self._busy = False
        if self.input_queue:
            self._maybe_process()

    def _checkpoint_key(self) -> str:
        return checkpoint_key(self.runtime.dataflow.name, self.executor_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Executor({self.executor_id}, {self.status.value}, "
            f"queue={len(self.input_queue)}, init={self.initialized})"
        )


class SourceExecutor(Executor):
    """Source task instance: generates the input stream at a (possibly dynamic) rate.

    The emission rate is either fixed (``task.rate``, the paper's 8 ev/s) or
    follows a :class:`~repro.workloads.profiles.RateProfile` over simulated
    time: the emit timer is re-armed after every tick (and on explicit
    :meth:`set_rate` / :meth:`set_profile` calls) using the profile's current
    rate, so step changes, ramps and bursts take effect within one
    inter-event gap.

    While paused, generated events accumulate in a backlog that is drained at
    the configured burst rate once the source is unpaused (this is the input
    rate peak visible in the paper's Fig. 7 for DCR and CCR).  When acking is
    enabled the source caches emitted payloads and replays roots whose causal
    trees fail (DSM's recovery path); replays are also rate-limited by the
    burst rate.
    """

    __slots__ = (
        "profile",
        "rate",
        "paused",
        "_sequence",
        "_backlog",
        "_replay_queue",
        "_cache",
        "_replay_counts",
        "_emit_timer",
        "_drain_timer",
        "_stopped",
        "emitted_count",
        "replayed_count",
        "skipped_ticks",
    )

    def __init__(self, executor_id: str, task: SourceTask, instance_index: int, runtime: "TopologyRuntimeLike") -> None:
        super().__init__(executor_id, task, instance_index, runtime)
        self.profile = getattr(task, "profile", None)
        self.rate = float(task.rate)
        self.paused = False
        self._sequence = 0
        self._backlog: Deque[Any] = deque()
        self._replay_queue: Deque[int] = deque()
        self._cache: Dict[int, Any] = {}
        self._replay_counts: Dict[int, int] = {}
        self._emit_timer = None
        self._drain_timer = None
        self._stopped = False
        self.emitted_count = 0
        self.replayed_count = 0
        self.skipped_ticks = 0

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        super().start()
        if self._emit_timer is None:
            self._arm_emit_timer()

    def stop(self) -> None:
        """Stop generating events entirely (end of experiment).

        Cancels the emit timer *and* any live drain timer: a drain timer left
        running would keep emitting backlog and replays after the experiment
        ends.
        """
        self._stopped = True
        if self._emit_timer is not None:
            self._emit_timer.cancel()
            self._emit_timer = None
        self._stop_drain_timer()

    # ------------------------------------------------------------ rate control
    @property
    def current_rate(self) -> float:
        """Instantaneous generation rate (profile-driven or fixed)."""
        if self.profile is not None:
            return float(self.profile.rate_at(self.sim.now))
        return self.rate

    def set_rate(self, rate: float) -> None:
        """Switch to a fixed emission rate, re-arming the emit timer now."""
        if rate <= 0:
            raise ValueError(f"source rate must be positive, got {rate}")
        self.profile = None
        self.rate = float(rate)
        self._arm_emit_timer()

    def set_profile(self, profile: Any) -> None:
        """Follow a new rate profile from now on, re-arming the emit timer."""
        self.profile = profile
        self._arm_emit_timer()

    def _arm_emit_timer(self) -> None:
        """(Re)schedule the next generation tick from the current rate.

        A non-positive profile rate idles the generator; it re-checks the
        profile every ``timing.source_idle_recheck_s`` so a later non-zero
        rate resumes emission.
        """
        if self._emit_timer is not None:
            self._emit_timer.cancel()
            self._emit_timer = None
        if self._stopped:
            return
        rate = self.current_rate
        if rate <= 0:
            self._emit_timer = self.sim.schedule(
                self.runtime.timing.source_idle_recheck_s, self._arm_emit_timer
            )
            return
        self.rate = rate
        self._emit_timer = self.sim.schedule(1.0 / rate, self._emit_tick)

    def _emit_tick(self) -> None:
        self._emit_timer = None
        stepper = getattr(self.runtime, "batch_stepper", None)
        if stepper is not None and stepper.try_cascade(self):
            # The cascade emitted this tick (and possibly many more) inline
            # and re-armed the emit timer itself.
            return
        self._tick()
        self._arm_emit_timer()

    # ---------------------------------------------------------------- pausing
    def pause(self) -> None:
        """Stop emitting; generated events accumulate in the backlog."""
        self.paused = True
        self.runtime.log.record_lifecycle(self.executor_id, "paused")

    def unpause(self) -> None:
        """Resume emitting and start draining the backlog at the burst rate."""
        if not self.paused:
            return
        self.paused = False
        self.runtime.log.record_lifecycle(self.executor_id, "unpaused")
        self._ensure_drain_timer()

    @property
    def backlog_size(self) -> int:
        """Number of generated-but-unemitted events waiting in the backlog."""
        return len(self._backlog)

    # -------------------------------------------------------------- emission
    def _payload(self, sequence: int) -> Any:
        factory = getattr(self.task, "payload_factory", None)
        if factory is not None:
            return factory(sequence)
        return {"seq": sequence, "source": self.task.name}

    def _throttled(self) -> bool:
        """Storm's max.spout.pending: stop emitting while too many roots are unacked."""
        if not self.runtime.ack_data_events:
            return False
        limit = self.runtime.reliability.max_spout_pending
        if not limit:
            return False
        return self.runtime.acker.pending_count >= limit

    def pending_headroom(self) -> Optional[int]:
        """How many roots the spout-pending throttle still admits (None = unlimited).

        The batch cascade uses this as a pessimistic per-stretch cap: the
        classic path re-checks the throttle before every emit, and pending can
        only *shrink* as trees complete, so a stretch that emits at most the
        current headroom provably never hits a tick the classic path would
        have throttled.
        """
        if not self.runtime.ack_data_events:
            return None
        limit = self.runtime.reliability.max_spout_pending
        if not limit:
            return None
        return max(0, limit - self.runtime.acker.pending_count)

    def cache_block(self, root_ids: Sequence[int], payloads: Sequence[Any]) -> None:
        """Cache many root payloads for replay in one call (batched spout accounting).

        Mirrors the per-emit ``self._cache[root_id] = payload`` bookkeeping in
        :meth:`_emit_new` for roots the batch cascade registered in bulk."""
        cache = self._cache
        for root_id, payload in zip(root_ids, payloads):
            cache[int(root_id)] = payload

    def _tick(self) -> None:
        self._sequence += 1
        payload = self._payload(self._sequence)
        if self.paused or self.status is not ExecutorStatus.RUNNING:
            self._backlog.append(payload)
            return
        if self._throttled():
            # Storm's max.spout.pending: nextTuple is simply not called, so the
            # synthetic generator produces nothing for this tick (unless
            # configured to defer the tick into the backlog instead).
            if self.runtime.reliability.throttled_ticks_generate_backlog:
                self._backlog.append(payload)
            else:
                self.skipped_ticks += 1
            self._ensure_drain_timer()
            return
        if self._backlog or self._replay_queue:
            # Preserve ordering: new events queue behind any pending backlog.
            self._backlog.append(payload)
            self._ensure_drain_timer()
            return
        self._emit_new(payload)

    def _emit_new(self, payload: Any, from_backlog: bool = False) -> None:
        event = Event.data(
            source_task=self.task.name,
            payload=payload,
            created_at=self.sim.now,
            anchored=self.runtime.ack_data_events,
        )
        if self.runtime.ack_data_events:
            self.runtime.acker.register(event.root_id)
            self._cache[event.root_id] = payload
        self.emitted_count += 1
        self.runtime.log.record_source_emit(event.root_id, self.task.name, replay_count=0, from_backlog=from_backlog)
        self.runtime.route(self, [event])

    def _emit_replay(self, root_id: int) -> None:
        payload = self._cache.get(root_id)
        if payload is None:
            return
        replay_count = self._replay_counts.get(root_id, 0) + 1
        self._replay_counts[root_id] = replay_count
        event = Event.data(
            source_task=self.task.name,
            payload=payload,
            created_at=self.sim.now,
            root_id=root_id,
            root_emitted_at=self.sim.now,
            replay_count=replay_count,
            anchored=self.runtime.ack_data_events,
        )
        if self.runtime.ack_data_events:
            self.runtime.acker.register(root_id)
        self.replayed_count += 1
        self.runtime.log.record_source_emit(root_id, self.task.name, replay_count=replay_count, from_backlog=False)
        self.runtime.route(self, [event])

    # --------------------------------------------------------------- replays
    def replay(self, root_id: int) -> None:
        """Queue a failed root for re-emission (rate-limited by the burst rate)."""
        if root_id not in self._cache:
            return
        if self.paused or self.status is not ExecutorStatus.RUNNING:
            self._replay_queue.append(root_id)
            return
        self._replay_queue.append(root_id)
        self._ensure_drain_timer()

    def tree_completed(self, root_id: int) -> None:
        """Drop the cached payload of a successfully processed root."""
        self._cache.pop(root_id, None)
        self._replay_counts.pop(root_id, None)

    # ------------------------------------------------------------- drain loop
    def _ensure_drain_timer(self) -> None:
        if self._drain_timer is not None and self._drain_timer.active:
            return
        period = 1.0 / max(self.rate, self.runtime.timing.source_max_burst_rate)
        self._drain_timer = self.sim.every(period, self._drain_tick, start_delay=period)

    def _drain_tick(self) -> None:
        if self.paused or self.status is not ExecutorStatus.RUNNING:
            self._stop_drain_timer()
            return
        if self._throttled():
            # Keep the timer alive; emission resumes once pending acks drain.
            return
        if self._replay_queue:
            self._emit_replay(self._replay_queue.popleft())
            return
        if self._backlog:
            self._emit_new(self._backlog.popleft(), from_backlog=True)
            return
        self._stop_drain_timer()

    def _stop_drain_timer(self) -> None:
        if self._drain_timer is not None:
            self._drain_timer.cancel()
            self._drain_timer = None


class SinkExecutor(Executor):
    """Sink task instance: records every received event in the event log.

    **Batch service**: a sink draining a deep input queue coalesces up to
    ``RuntimeConfig.sink_batch_max`` consecutive data events into *one*
    kernel callback, mirroring how the router batches same-channel
    deliveries.  Each receipt is stamped with its exact per-event completion
    time, so the *logged record stream* is identical to serial service.
    Sinks are the one executor kind where this is safe: they emit nothing
    downstream, so no routing (and no draw from the shared network-jitter
    stream) is reordered.  Batching disables itself when data acking is on
    (per-event ack timing is observable by the acker and the spout throttle)
    or when the dataflow has several sink executors (interleaved receipts
    must stay time-ordered in the indexed log).

    One caveat for *mid-run* observers that slice the log by index (the
    elasticity monitor): batched receipts are appended when the batch
    callback fires, up to one batch-service window after their stamped
    times.  With the repository's sink service time of zero the callback
    fires at the same simulated instant the batch forms -- before any
    later-timed sample can run -- so the skew is unobservable; it can only
    appear when ``data_event_overhead_s`` is configured non-zero.
    """

    __slots__ = ("received_count", "_batch", "_batch_started_at", "_batch_enabled")

    def __init__(self, executor_id: str, task: SinkTask, instance_index: int, runtime: "TopologyRuntimeLike") -> None:
        super().__init__(executor_id, task, instance_index, runtime)
        self.received_count = 0
        self._batch: Optional[List[Tuple[Event, str]]] = None
        self._batch_started_at = 0.0
        self._batch_enabled = False

    def start(self) -> None:
        # Evaluated at start (the full executor set exists by then): batching
        # requires no data acking and a single sink executor (see class doc).
        self._batch_enabled = (
            getattr(self.runtime.config, "sink_batch_max", 0) > 1
            and not self.runtime.ack_data_events
            and len(self.runtime.sink_executors) == 1
        )
        super().start()

    def _record_receipt(self, event: Event, at_time: Optional[float] = None) -> None:
        self.received_count += 1
        self.runtime.log.record_sink_receipt(
            root_id=event.root_id,
            event_id=event.event_id,
            sink=self.task.name,
            root_emitted_at=event.root_emitted_at,
            replay_count=event.replay_count,
            at_time=at_time,
        )
        self.processed_count += 1

    def _maybe_process(self) -> None:
        queue = self.input_queue
        if self._busy or self.status is not ExecutorStatus.RUNNING or not queue:
            return
        if (
            self._batch_enabled
            and len(queue) > 1
            and queue[0][0].kind is _DATA
            and queue[1][0].kind is _DATA
            and not self.capture_mode
        ):
            batch: List[Tuple[Event, str]] = []
            limit = self.runtime.config.sink_batch_max
            while queue and len(batch) < limit and queue[0][0].kind is _DATA:
                batch.append(queue.popleft())
            self._busy = True
            self._batch = batch
            self._batch_started_at = self.sim.now
            self.sim.schedule_fast(self._service_time * len(batch), self._complete_batch, (batch,))
            return
        super()._maybe_process()

    def _complete_batch(self, batch: List[Tuple[Event, str]]) -> None:
        if batch is not self._batch:
            # Stale callback: a kill/restart cleared (or replaced) the batch
            # before this fired.  The current batch's own callback, if any,
            # is still in flight.
            return
        self._batch = None
        if self.status is not _RUNNING:
            self._busy = False
            return
        service = self._service_time
        time = self._batch_started_at
        for event, _sender in batch:
            time += service
            self._record_receipt(event, at_time=time)
            recycle_event(event)
        self._busy = False
        self._maybe_process()

    def kill(self) -> Tuple[int, int]:
        batch = self._batch
        self._batch = None
        if batch:
            # Reconstruct the serial-execution picture at kill time: events
            # whose service already completed were received (record them with
            # their exact times); the event in service is lost silently, just
            # like a serially serviced one; the rest re-join the input queue
            # so the kill accounting counts them as queued losses.
            now = self.sim.now
            service = self._service_time
            time = self._batch_started_at
            requeue: List[Tuple[Event, str]] = []
            in_service_seen = False
            for event, sender in batch:
                time += service
                if time <= now:
                    self._record_receipt(event, at_time=time)
                elif not in_service_seen:
                    in_service_seen = True
                else:
                    requeue.append((event, sender))
            for pair in reversed(requeue):
                self.input_queue.appendleft(pair)
        return super().kill()

    def become_ready(self) -> None:
        self._batch = None
        super().become_ready()

    def _complete_data(self, event: Event) -> None:
        if self.status is not ExecutorStatus.RUNNING:
            self._busy = False
            return
        self._record_receipt(event)
        self.runtime.ack_processed(event)
        # The event has left the system: feed the fan-out clone pool.
        # (recycle_event refuses anchored events, which the acker may still
        # reference in its failure bookkeeping.)
        recycle_event(event)
        self._busy = False
        self._maybe_process()


class TopologyRuntimeLike:
    """Structural interface executors expect from the runtime (documentation aid).

    The concrete implementation is :class:`repro.engine.runtime.TopologyRuntime`;
    this class exists so the executor module does not import the runtime
    module (avoiding a circular dependency) while still documenting the
    contract.
    """

    sim = None
    log = None
    statestore = None
    acker = None
    timing = None
    dataflow = None
    ack_data_events = False

    def route(self, executor: Executor, events: List[Event]) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def ack_processed(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def forward_control(self, executor: Executor, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def control_ack(self, executor: Executor, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def expected_control_senders(self, executor: Executor) -> Set[str]:  # pragma: no cover - interface
        raise NotImplementedError
