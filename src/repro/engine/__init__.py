"""The Storm-like distributed stream processing engine (simulated substrate).

This package provides the execution machinery the migration strategies run
against:

* :mod:`repro.engine.config` -- reliability features and the calibrated timing
  model (rebalance duration, worker start-up, ack timeout, ...);
* :mod:`repro.engine.executor` -- task instances with single-threaded input
  queues, checkpoint platform logic, capture mode, and source/sink variants;
* :mod:`repro.engine.router` -- stream groupings, network latency and
  per-channel FIFO delivery;
* :mod:`repro.engine.runtime` -- deployment, execution, pause/unpause and the
  ``rebalance`` command.
"""

from repro.engine.config import ReliabilityConfig, RuntimeConfig, TimingConfig
from repro.engine.executor import (
    CHECKPOINT_SOURCE_ID,
    Executor,
    ExecutorStatus,
    SinkExecutor,
    SourceExecutor,
)
from repro.engine.router import Router
from repro.engine.runtime import RebalanceRecord, TopologyRuntime

__all__ = [
    "CHECKPOINT_SOURCE_ID",
    "Executor",
    "ExecutorStatus",
    "RebalanceRecord",
    "ReliabilityConfig",
    "Router",
    "RuntimeConfig",
    "SinkExecutor",
    "SourceExecutor",
    "TimingConfig",
    "TopologyRuntime",
]
