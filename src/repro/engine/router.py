"""Event routing between executors.

The router implements Storm's stream groupings on top of the simulated
network: for every outgoing edge of a task it selects target instances of the
downstream task (shuffle round-robin by default), duplicates the event per
edge, applies the network transfer latency (intra- vs inter-VM), anchors the
copies with the acker service when acking is enabled, and enforces FIFO
delivery ordering per (sender executor, receiver executor) channel -- the
property checkpoint control events rely on to be the "rearguard" behind all
data events on a channel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.cloud import NetworkModel
from repro.dataflow.event import Event
from repro.dataflow.graph import Dataflow, Edge
from repro.dataflow.grouping import Grouping


class Router:
    """Routes events from an executor to the instances of downstream tasks."""

    def __init__(self, runtime: "TopologyRuntime") -> None:
        self.runtime = runtime
        self._shuffle_counters: Dict[Tuple[str, str], int] = {}
        self._last_delivery: Dict[Tuple[str, str], float] = {}
        self.routed_count = 0

    # --------------------------------------------------------------- routing
    def route(self, sender_executor_id: str, task_name: str, events: List[Event]) -> None:
        """Deliver each event on every outgoing edge of ``task_name``."""
        if not events:
            return
        dataflow: Dataflow = self.runtime.dataflow
        for edge in dataflow.out_edges(task_name):
            for event in events:
                targets = self._select_targets(sender_executor_id, edge, event)
                for target_executor_id in targets:
                    self._send(sender_executor_id, target_executor_id, event.copy_for_edge())

    def send_direct(self, sender_id: str, target_executor_id: str, event: Event) -> None:
        """Deliver an event directly to a specific executor (checkpoint channels)."""
        self._send(sender_id, target_executor_id, event)

    # ------------------------------------------------------- target selection
    def _select_targets(self, sender_executor_id: str, edge: Edge, event: Event) -> List[str]:
        dst_task = self.runtime.dataflow.task(edge.dst)
        instances = dst_task.instance_ids()
        if len(instances) == 1:
            return [instances[0]]
        if edge.grouping is Grouping.ALL:
            return list(instances)
        if edge.grouping is Grouping.GLOBAL:
            return [instances[0]]
        if edge.grouping is Grouping.FIELDS:
            key = self._field_key(event)
            return [instances[hash(key) % len(instances)]]
        # Shuffle grouping: round-robin per (sender executor, destination task).
        counter_key = (sender_executor_id, edge.dst)
        index = self._shuffle_counters.get(counter_key, 0)
        self._shuffle_counters[counter_key] = index + 1
        return [instances[index % len(instances)]]

    @staticmethod
    def _field_key(event: Event) -> str:
        payload = event.payload
        if isinstance(payload, dict):
            for candidate in ("key", "id", "seq"):
                if candidate in payload:
                    return str(payload[candidate])
        return str(payload)

    # --------------------------------------------------------------- delivery
    def _send(self, sender_id: str, target_executor_id: str, event: Event) -> None:
        runtime = self.runtime
        if event.anchored and event.is_data and runtime.ack_data_events:
            runtime.acker.anchor(event.root_id, event.event_id)
        src_vm = runtime.executor_vm(sender_id)
        dst_vm = runtime.executor_vm(target_executor_id)
        network: NetworkModel = runtime.cluster.network
        latency = network.transfer_latency(src_vm, dst_vm)
        channel = (sender_id, target_executor_id)
        earliest = self._last_delivery.get(channel, 0.0)
        delivery_time = max(runtime.sim.now + latency, earliest + 1e-9)
        self._last_delivery[channel] = delivery_time
        self.routed_count += 1
        runtime.sim.schedule_at(delivery_time, runtime.deliver, target_executor_id, event, sender_id)
