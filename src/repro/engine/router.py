"""Event routing between executors.

The router implements Storm's stream groupings on top of the simulated
network: for every outgoing edge of a task it selects target instances of the
downstream task (shuffle round-robin by default), duplicates the event per
edge, applies the network transfer latency (intra- vs inter-VM), anchors the
copies with the acker service when acking is enabled, and enforces FIFO
delivery ordering per (sender executor, receiver executor) channel -- the
property checkpoint control events rely on to be the "rearguard" behind all
data events on a channel.

Hot-path design
---------------
Routing is the inner loop of every experiment, so the router keeps three
caches, all invalidated by :meth:`Router.invalidate_caches` whenever the
runtime changes the executor set or the placement (deploy, rebalance,
migration):

* a **route plan** per task: its outgoing edges with the destination
  instance tuple resolved once, instead of rebuilding edge and instance
  lists per event;
* a **per-channel base latency**: whether a (sender, receiver) pair is an
  intra- or inter-VM hop, so each event pays one jitter draw instead of two
  executor->VM dict hops plus the network model dispatch;
* a **bound jitter sampler** for the network's ``network-jitter`` stream
  (binding it early is safe: streams are seeded by name, not creation
  order).

Deliveries are scheduled on the kernel's fire-and-forget fast path.  When a
single ``route()`` call emits several events onto the same channel (a batch
produced in one tick), the router schedules *one* delivery callback carrying
the (time, event) list, which walks the channel's FIFO times itself instead
of holding one heap entry per event.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.cloud import NetworkModel
from repro.dataflow.event import Event, EventKind, next_event_id
from repro.dataflow.graph import Dataflow, Edge
from repro.dataflow.grouping import Grouping, field_key_of, stable_field_index
from repro.sim.rng import KeyedStream

#: Back-compat alias: the stable CRC-32 FIELDS hash lives in
#: :mod:`repro.dataflow.grouping` so the state re-partitioner (reliability
#: layer) can re-key grouped state with the exact same mapping the router
#: uses for deliveries.
_stable_field_index = stable_field_index


class Router:
    """Routes events from an executor to the instances of downstream tasks."""

    def __init__(self, runtime: "TopologyRuntime") -> None:
        self.runtime = runtime
        self._shuffle_counters: Dict[Tuple[str, str], int] = {}
        self._last_delivery: Dict[Tuple[str, str], float] = {}
        self.routed_count = 0
        #: Telemetry tallies (plain ints, scraped post-hoc): route() calls,
        #: route-plan cache misses, and coalesced same-channel batch callbacks.
        self.route_calls = 0
        self.plan_builds = 0
        self.batched_deliveries = 0
        #: task name -> tuple of (edge, destination instances, grouping, instance count).
        self._route_plans: Dict[str, Tuple[Tuple[Edge, Tuple[str, ...], Grouping, int], ...]] = {}
        #: (sender, receiver) -> base (un-jittered) transfer latency.
        self._channel_base: Dict[Tuple[str, str], float] = {}
        network: NetworkModel = runtime.cluster.network
        self._network = network
        self._jitter_fraction = network.jitter_fraction
        # Bound `random()` of the jitter stream plus the precomputed uniform
        # transform (a, b-a): `a + (b-a)*random()` is exactly what
        # ``random.Random.uniform(a, b)`` computes, without the call frame.
        self._jitter_random = network.jitter_sampler().__self__.random
        self._jitter_low = -self._jitter_fraction
        self._jitter_span = self._jitter_fraction - self._jitter_low
        # Keyed per-channel jitter (opt-in): each (sender, receiver) channel
        # draws from its own stateless hash stream, so the jitter observed on
        # one channel is independent of how deliveries on other channels are
        # interleaved.  Required by (and implied by) batch stepping; like the
        # FIFO times, the per-channel counters are semantics, not cache, and
        # survive invalidate_caches().
        config = runtime.config
        self._keyed = bool(config.keyed_network_jitter or config.batch_stepping)
        self._keyed_jitter: Dict[Tuple[str, str], KeyedStream] = {}

    # ---------------------------------------------------------------- caches
    def invalidate_caches(self) -> None:
        """Drop placement- and topology-derived caches.

        Must be called whenever executors move between VMs or the executor
        set changes (deploy, rebalance, migration).  Routing *state* (shuffle
        counters, per-channel FIFO times) is deliberately preserved: it is
        semantics, not cache.
        """
        self._route_plans.clear()
        self._channel_base.clear()

    def _build_plan(self, task_name: str) -> Tuple[Tuple[Edge, Tuple[str, ...], Grouping, int], ...]:
        dataflow: Dataflow = self.runtime.dataflow
        plan = []
        for edge in dataflow.out_edges(task_name):
            instances = tuple(dataflow.task(edge.dst).instance_ids())
            plan.append((edge, instances, edge.grouping, len(instances)))
        plan = tuple(plan)
        self._route_plans[task_name] = plan
        self.plan_builds += 1
        return plan

    # --------------------------------------------------------------- routing
    def route(self, sender_executor_id: str, task_name: str, events: List[Event]) -> None:
        """Deliver each event on every outgoing edge of ``task_name``.

        The router takes **ownership** of ``events``: each event object is
        either duplicated per delivery (fan-out) or re-stamped with the fresh
        event id its copy would have received and delivered directly (the
        dominant single-delivery case).  Callers must not touch an event
        after routing it.

        Target selection must stay in lock-step with :meth:`_select_targets`
        (the uncached reference used by direct callers and tests).
        """
        if not events:
            return
        self.route_calls += 1
        plan = self._route_plans.get(task_name)
        if plan is None:
            plan = self._build_plan(task_name)
        if len(events) == 1 and len(plan) == 1:
            # Dominant shape (one event, one out-edge, one target): fully
            # inlined dispatch, including the channel latency and FIFO
            # bookkeeping of _delivery_time.
            edge, instances, grouping, num = plan[0]
            event = events[0]
            if num == 1:
                target = instances[0]
            elif grouping is Grouping.SHUFFLE:
                counter_key = (sender_executor_id, edge.dst)
                index = self._shuffle_counters.get(counter_key, 0)
                self._shuffle_counters[counter_key] = index + 1
                target = instances[index % num]
            elif grouping is Grouping.GLOBAL:
                target = instances[0]
            elif grouping is Grouping.FIELDS:
                target = instances[_stable_field_index(self._field_key(event), num)]
            else:  # ALL fans out: take the general path below
                target = None
            if target is not None:
                runtime = self.runtime
                sim = runtime.sim
                # Sole delivery of this event: re-stamp the original with the
                # id a copy would have drawn (same counter position, so ids
                # are bit-identical to the copying path), skip the allocation.
                event.event_id = event_id = next_event_id()
                if event.anchored and runtime.ack_data_events and event.kind is EventKind.DATA:
                    runtime.acker.anchor(event.root_id, event_id)
                channel = (sender_executor_id, target)
                base = self._channel_base.get(channel)
                if base is None:
                    base = self._channel_base[channel] = self._network.base_latency(
                        runtime.executor_vm(sender_executor_id), runtime.executor_vm(target)
                    )
                if self._jitter_fraction > 0:
                    if self._keyed:
                        stream = self._keyed_jitter.get(channel)
                        if stream is None:
                            stream = self._keyed_jitter[channel] = self._network.keyed_jitter_stream(
                                channel[0], channel[1]
                            )
                        draw = stream.random()
                    else:
                        draw = self._jitter_random()
                    # Parenthesized to match uniform()'s `a + (b-a)*r` (see
                    # _delivery_time).
                    latency = base * (1.0 + (self._jitter_low + self._jitter_span * draw))
                    if latency < 0.0:
                        latency = 0.0
                else:
                    latency = base
                delivery_time = sim.now + latency
                earliest = self._last_delivery.get(channel, 0.0) + 1e-9
                if earliest > delivery_time:
                    delivery_time = earliest
                self._last_delivery[channel] = delivery_time
                self.routed_count += 1
                sim.schedule_at_fast(delivery_time, runtime.deliver, (target, event, sender_executor_id))
                return
        self._route_general(sender_executor_id, plan, events)

    def _route_general(
        self,
        sender_executor_id: str,
        plan: Tuple[Tuple[Edge, Tuple[str, ...], Grouping, int], ...],
        events: List[Event],
    ) -> None:
        """Multi-event and fan-out routing (batched same-channel deliveries)."""
        runtime = self.runtime
        sim = runtime.sim
        acker = runtime.acker
        ack_data = runtime.ack_data_events
        deliver = runtime.deliver
        schedule_at_fast = sim.schedule_at_fast
        shuffle_counters = self._shuffle_counters
        now = sim.now  # time cannot advance while routing (no callbacks run)
        single = len(events) == 1
        single_edge = len(plan) == 1
        batches: Optional[Dict[str, List[Tuple[float, Event]]]] = None
        for edge, instances, grouping, num in plan:
            for event in events:
                if num == 1:
                    targets = instances
                elif grouping is Grouping.ALL:
                    targets = instances
                elif grouping is Grouping.GLOBAL:
                    targets = instances[:1]
                elif grouping is Grouping.FIELDS:
                    key = self._field_key(event)
                    targets = (instances[_stable_field_index(key, num)],)
                else:  # shuffle: round-robin per (sender executor, destination task)
                    counter_key = (sender_executor_id, edge.dst)
                    index = shuffle_counters.get(counter_key, 0)
                    shuffle_counters[counter_key] = index + 1
                    targets = (instances[index % num],)
                if single_edge and len(targets) == 1:
                    # Sole delivery of this event: re-stamp instead of copying
                    # (see the fast path above).
                    target_executor_id = targets[0]
                    event.event_id = next_event_id()
                    if event.anchored and ack_data and event.kind is EventKind.DATA:
                        acker.anchor(event.root_id, event.event_id)
                    delivery_time = self._delivery_time(sender_executor_id, target_executor_id, now)
                    self.routed_count += 1
                    if single:
                        schedule_at_fast(
                            delivery_time, deliver, (target_executor_id, event, sender_executor_id)
                        )
                    else:
                        if batches is None:
                            batches = {}
                        batches.setdefault(target_executor_id, []).append((delivery_time, event))
                    continue
                for target_executor_id in targets:
                    copy = event.copy_for_edge()
                    if copy.anchored and ack_data and copy.kind is EventKind.DATA:
                        acker.anchor(copy.root_id, copy.event_id)
                    delivery_time = self._delivery_time(sender_executor_id, target_executor_id, now)
                    self.routed_count += 1
                    if single:
                        schedule_at_fast(
                            delivery_time, deliver, (target_executor_id, copy, sender_executor_id)
                        )
                    else:
                        if batches is None:
                            batches = {}
                        batches.setdefault(target_executor_id, []).append((delivery_time, copy))
        if batches is not None:
            for target_executor_id, pairs in batches.items():
                if len(pairs) == 1:
                    schedule_at_fast(
                        pairs[0][0], deliver, (target_executor_id, pairs[0][1], sender_executor_id)
                    )
                else:
                    # One callback walks the channel's FIFO-ordered times.
                    self.batched_deliveries += 1
                    schedule_at_fast(
                        pairs[0][0], self._deliver_batch, (target_executor_id, sender_executor_id, pairs, 0)
                    )

    def _deliver_batch(
        self, target_executor_id: str, sender_id: str, pairs: List[Tuple[float, Event]], index: int
    ) -> None:
        """Deliver one event of a same-channel batch, then re-arm for the next.

        Per-channel delivery times are strictly increasing (FIFO), so the
        pairs list is already time-sorted and a single in-flight heap entry
        suffices for the whole batch.
        """
        self.runtime.deliver(target_executor_id, pairs[index][1], sender_id)
        next_index = index + 1
        if next_index < len(pairs):
            self.runtime.sim.schedule_at_fast(
                pairs[next_index][0],
                self._deliver_batch,
                (target_executor_id, sender_id, pairs, next_index),
            )

    def send_direct(self, sender_id: str, target_executor_id: str, event: Event) -> None:
        """Deliver an event directly to a specific executor (checkpoint channels)."""
        self._send(sender_id, target_executor_id, event)

    # ------------------------------------------------------- target selection
    def _select_targets(self, sender_executor_id: str, edge: Edge, event: Event) -> List[str]:
        """Uncached reference implementation of grouping target selection.

        :meth:`route` inlines the same rules on its cached plan; keep the two
        in sync.
        """
        dst_task = self.runtime.dataflow.task(edge.dst)
        instances = dst_task.instance_ids()
        if len(instances) == 1:
            return [instances[0]]
        if edge.grouping is Grouping.ALL:
            return list(instances)
        if edge.grouping is Grouping.GLOBAL:
            return [instances[0]]
        if edge.grouping is Grouping.FIELDS:
            key = self._field_key(event)
            return [instances[_stable_field_index(key, len(instances))]]
        # Shuffle grouping: round-robin per (sender executor, destination task).
        counter_key = (sender_executor_id, edge.dst)
        index = self._shuffle_counters.get(counter_key, 0)
        self._shuffle_counters[counter_key] = index + 1
        return [instances[index % len(instances)]]

    @staticmethod
    def _field_key(event: Event) -> str:
        return field_key_of(event.payload)

    # --------------------------------------------------------------- delivery
    def _delivery_time(self, sender_id: str, target_executor_id: str, now: float) -> float:
        """Jittered arrival time respecting the channel's FIFO ordering."""
        channel = (sender_id, target_executor_id)
        base = self._channel_base.get(channel)
        if base is None:
            runtime = self.runtime
            base = self._network.base_latency(
                runtime.executor_vm(sender_id), runtime.executor_vm(target_executor_id)
            )
            self._channel_base[channel] = base
        if self._jitter_fraction > 0:
            if self._keyed:
                stream = self._keyed_jitter.get(channel)
                if stream is None:
                    stream = self._keyed_jitter[channel] = self._network.keyed_jitter_stream(
                        channel[0], channel[1]
                    )
                draw = stream.random()
            else:
                draw = self._jitter_random()
            # Parenthesized to match uniform()'s `a + (b-a)*r` before the 1.0
            # add — float addition is not associative and the figure runs
            # must reproduce the historical jitter values bit-for-bit.
            latency = base * (1.0 + (self._jitter_low + self._jitter_span * draw))
            if latency < 0.0:
                latency = 0.0
        else:
            latency = base
        delivery_time = now + latency
        earliest = self._last_delivery.get(channel, 0.0) + 1e-9
        if earliest > delivery_time:
            delivery_time = earliest
        self._last_delivery[channel] = delivery_time
        return delivery_time

    def _send(self, sender_id: str, target_executor_id: str, event: Event) -> None:
        runtime = self.runtime
        if event.anchored and event.is_data and runtime.ack_data_events:
            runtime.acker.anchor(event.root_id, event.event_id)
        delivery_time = self._delivery_time(sender_id, target_executor_id, runtime.sim.now)
        self.routed_count += 1
        runtime.sim.schedule_at_fast(delivery_time, runtime.deliver, (target_executor_id, event, sender_id))
