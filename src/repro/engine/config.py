"""Engine configuration: reliability features and timing model.

The timing constants are calibrated against the paper's testbed measurements
(Apache Storm 1.0.3 on Azure D-series VMs):

* the 100 ms dummy task latency and 8 ev/s source rate are set per dataflow in
  :mod:`repro.dataflow.topologies`;
* the ack timeout and periodic checkpoint interval default to Storm's 30 s;
* the rebalance command takes ~7.26 s on average (§5.1 of the paper);
* restarted worker/executor readiness is modelled per VM: each executor on a
  VM becomes ready a base delay plus a per-preceding-executor cost after the
  rebalance command completes, with jitter.  When the rebalance happens while
  the dataflow is still live (DSM does not pause the sources, so data and ack
  traffic keep hammering the VMs), worker start-up is slowed by a
  load-dependent multiplier -- this is what produces DSM's large,
  DAG-size-dependent restore times with their characteristic ~30 s INIT
  re-send quantisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass
class ReliabilityConfig:
    """Which Storm reliability features are active for a run."""

    #: Acking of all data events (required by DSM; DCR/CCR ack only checkpoint events).
    ack_all_events: bool = False
    #: Ack timeout after which an incomplete causal tree is failed and replayed.
    ack_timeout_s: float = 30.0
    #: Periodic checkpoint interval (DSM); ``None`` disables periodic checkpoints.
    periodic_checkpoint_interval_s: Optional[float] = None
    #: Whether tasks enter capture mode when they see a PREPARE event (CCR).
    capture_on_prepare: bool = False
    #: Storm's ``max.spout.pending`` flow control: with acking enabled, a
    #: source stops emitting new events while this many root events are still
    #: unacknowledged.  Only applies when ``ack_all_events`` is set; ``None``
    #: disables the throttle.
    max_spout_pending: Optional[int] = 96
    #: Whether generator ticks that occur while the source is throttled are
    #: queued in the source's backlog (and emitted later) rather than skipped.
    #: The default (``True``) conserves the input stream, so every strategy is
    #: charged the same total workload; setting it to ``False`` models a purely
    #: rate-limited synthetic spout whose ``nextTuple`` is simply not called
    #: while throttled (events generated during the throttle never exist).
    #: Ticks that occur while the source is *explicitly paused* (DCR/CCR)
    #: always go to the backlog.
    throttled_ticks_generate_backlog: bool = True


@dataclass
class TimingConfig:
    """Timing model for the Storm-like substrate."""

    #: Platform-logic handling time for one checkpoint control event.
    checkpoint_handling_s: float = 0.002
    #: Per-data-event platform overhead on top of the user logic latency
    #: (serialization, queue transfer, ack bookkeeping).  Zero by default so a
    #: task instance's peak throughput is exactly the paper's idealized
    #: 10 ev/s for the 100 ms dummy task.
    data_event_overhead_s: float = 0.0
    #: Duration of the Storm ``rebalance`` command itself (mean / stddev).
    rebalance_command_mean_s: float = 7.26
    rebalance_command_stddev_s: float = 0.5
    #: Worker/executor restart model.  Supervisors launch the migrated workers
    #: in parallel once the rebalance command completes, so every executor
    #: becomes ready after ``worker_start_base_s`` plus a uniformly distributed
    #: extra delay whose spread grows with the number of executors being
    #: redeployed (code distribution, ZooKeeper coordination and connection
    #: (re)wiring all contend): spread = ``worker_start_spread_base_s`` +
    #: ``worker_start_spread_per_executor_s`` * migrating executors.
    worker_start_base_s: float = 8.0
    worker_start_spread_base_s: float = 10.0
    worker_start_spread_per_executor_s: float = 0.7
    #: Multiplier applied to worker start-up when the rebalance is performed
    #: while the dataflow is live (sources unpaused, acking enabled): restart
    #: competes with data processing, ack traffic and message replays.
    loaded_start_multiplier: float = 1.7
    #: Additional per-migrating-executor load penalty applied on top of the
    #: loaded multiplier (captures nimbus / supervisor contention growing with
    #: the number of workers being redeployed).
    loaded_start_per_executor_s: float = 1.0
    #: Maximum instantaneous source emission rate when draining backlog or
    #: replaying failed events (events/second).
    source_max_burst_rate: float = 100.0
    #: How often an idle source re-checks its rate profile while the profile
    #: reports a non-positive rate (profile-driven sources only).
    source_idle_recheck_s: float = 0.25
    #: State-store latency model (calibrated to 2000 events in ~100 ms).
    statestore_base_latency_s: float = 0.0005
    statestore_per_byte_latency_s: float = 5.0e-7
    #: Quiesce delay after pausing sources before a JIT checkpoint wave is
    #: emitted, letting in-transit source emissions land in the entry queues.
    quiesce_delay_s: float = 0.05


@dataclass
class RuntimeConfig:
    """Complete configuration of a :class:`~repro.engine.runtime.TopologyRuntime`."""

    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)
    timing: TimingConfig = field(default_factory=TimingConfig)
    #: Master seed for all randomness in the run.
    seed: int = 2018
    #: Name of the VM (by tag role) that hosts sources and sinks and is
    #: excluded from migration, per the paper's experiment setup.
    util_vm_role: str = "util"
    #: Maximum number of consecutive data events a sink coalesces into one
    #: kernel callback while draining a deep queue (<=1 disables batching).
    #: Receipts keep their exact per-event completion times, so logged
    #: results are unchanged; batching is automatically disabled when data
    #: acking is on (per-event ack timing is observable) or the dataflow has
    #: several sink executors (interleaved receipts must stay time-ordered).
    sink_batch_max: int = 32
    #: Derive network-jitter draws from a keyed per-channel stream
    #: ``(seed, "network-jitter", channel_key, sequence)`` instead of one
    #: shared ``random.Random``.  With keyed streams the jitter seen on one
    #: channel no longer depends on how deliveries on *other* channels are
    #: interleaved, which is the prerequisite for batch stepping and sharding.
    #: Off by default: the shared stream is what the committed ``results/``
    #: figures were recorded with.
    keyed_network_jitter: bool = False
    #: Run steady-state stretches through the batch-stepping cascade (one
    #: kernel callback materializes a whole source-tick cohort inline) instead
    #: of per-event kernel callbacks.  Implies :attr:`keyed_network_jitter`.
    #: Logged results are equivalent to the classic kernel modulo event-id
    #: assignment order.  Engaged under data acking too: the stepper replays
    #: the acker XOR stream in bulk and disengages around the windows where
    #: per-event ack timing is observable (loss, replay, migrations).
    batch_stepping: bool = False
    #: Within a batch-stepping cascade, sweep whole steady-state stretches
    #: with numpy array arithmetic (struct-of-arrays per task instance)
    #: instead of the per-event inline heap.  Only engages when every
    #: processing task runs the default 1:1 dummy logic; simulated times are
    #: bit-identical to the classic kernel, event ids are assigned in sweep
    #: order.  Ignored when numpy is unavailable.  Setting it to ``False``
    #: forces the per-event cascade, whose logs match the classic keyed
    #: kernel exactly (including event ids).
    batch_vectorize: bool = True
    #: Store the run's event log in the columnar (numpy struct-of-arrays)
    #: backend instead of lists of record objects.  Queries are
    #: bit-compatible (lazy row views materialize records on access) and the
    #: vectorized cascade appends whole arrays without building any per-event
    #: object.  On by default — the committed ``results/`` figures are
    #: byte-identical across both backends; set to ``False`` for the classic
    #: row store.  Ignored (falls back to the classic log) when numpy is
    #: unavailable.
    columnar_log: bool = True
    #: Create a :class:`repro.obs.Telemetry` on the runtime (metrics registry
    #: + control-plane span tracer, see :mod:`repro.obs`).  Off by default:
    #: with the flag off ``runtime.telemetry`` is ``None`` and every
    #: instrumentation site reduces to one attribute check.
    telemetry: bool = False

    def copy(self) -> "RuntimeConfig":
        """Return an independent copy of this configuration."""
        return RuntimeConfig(
            reliability=replace(self.reliability),
            timing=replace(self.timing),
            seed=self.seed,
            util_vm_role=self.util_vm_role,
            sink_batch_max=self.sink_batch_max,
            keyed_network_jitter=self.keyed_network_jitter,
            batch_stepping=self.batch_stepping,
            batch_vectorize=self.batch_vectorize,
            columnar_log=self.columnar_log,
            telemetry=self.telemetry,
        )

    @classmethod
    def for_dsm(cls, seed: int = 2018) -> "RuntimeConfig":
        """Configuration matching the DSM baseline: ack everything, periodic checkpoints."""
        return cls(
            reliability=ReliabilityConfig(
                ack_all_events=True,
                ack_timeout_s=30.0,
                periodic_checkpoint_interval_s=30.0,
                capture_on_prepare=False,
            ),
            seed=seed,
        )

    @classmethod
    def for_dcr(cls, seed: int = 2018) -> "RuntimeConfig":
        """Configuration for DCR: no data acking, no periodic checkpoints, no capture."""
        return cls(
            reliability=ReliabilityConfig(
                ack_all_events=False,
                ack_timeout_s=30.0,
                periodic_checkpoint_interval_s=None,
                capture_on_prepare=False,
            ),
            seed=seed,
        )

    @classmethod
    def for_ccr(cls, seed: int = 2018) -> "RuntimeConfig":
        """Configuration for CCR: no data acking, capture mode on PREPARE."""
        return cls(
            reliability=ReliabilityConfig(
                ack_all_events=False,
                ack_timeout_s=30.0,
                periodic_checkpoint_interval_s=None,
                capture_on_prepare=True,
            ),
            seed=seed,
        )
