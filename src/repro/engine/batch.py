"""Batch-stepping cascade: whole steady-state stretches in one kernel callback.

The classic kernel executes one Python callback per simulated event; a single
source tick costs two heap round-trips per hop (delivery, service completion)
plus the deliver -> queue -> ``_maybe_process`` -> ``_complete_data`` call
chain.  At steady state none of that machinery can change the outcome: every
executor is initialized and idle, no control wave is in flight, and the only
cancellable timer pending is the source's own emit tick.

The :class:`BatchStepper` exploits this.  When the emit timer fires and the
runtime is *quiescent* (checked exhaustively below), the whole stretch of
simulated time up to the next cancellable timer (exclusive) or the ``run``
bound (inclusive) is materialized inside one callback: a private heap of
``(time, seq, kind, ...)`` entries replays exactly the entries the kernel
would have processed -- source ticks, channel deliveries, service completions
-- with the handlers inlined (Lindley-style per-executor service clocks on
the real executor objects, keyed per-channel jitter draws, direct event-log
appends with explicit timestamps).  Entries that land at or past the horizon
are *spilled* back onto the real kernel heap in classic form
(``runtime.deliver`` / ``Executor._complete_data``), and executor state is
left exactly as the classic kernel would have it at the horizon, so
processing continues seamlessly -- a monitor sampling at the horizon observes
identical ``processed_count`` / ``busy_time_s`` / log contents.

Correctness requires the keyed per-channel jitter streams
(``RuntimeConfig.keyed_network_jitter``, implied by ``batch_stepping``):
with the shared stream, collapsing the cross-channel interleaving would
permute every jitter draw.  With keyed streams each channel consumes its own
sequence, so the cascade draws the exact values the classic kernel draws in
keyed mode.  Event ids are drawn in cascade pop order, which mirrors the
classic pop order entry for entry; the equivalence tests in
``tests/test_batch_equivalence.py`` pin both the logged streams and the
executor counters.

Batch stepping stays engaged when data acking is on.  The heap tier calls the
real :class:`~repro.reliability.acker.AckerService` at exactly the classic
code points (register at each emit pop, anchor at each route, ack at each
completion pop), evaluates the real spout-pending throttle per tick, and
spills everything at or past a mid-cascade drain-timer horizon back to the
kernel -- so it remains bit-exact.  The vectorized tier replays the acker XOR
stream symbolically: a loss-free steady-state stretch anchors and acks every
event of a tuple tree inside one sweep, so the per-tree ``bitwise_xor`` folds
cancel to zero by construction and whole trees resolve without ever
materializing a :class:`~repro.reliability.acker.PendingTree`; only events
that cross the horizon fold real ids into the bulk acker APIs
(``register_block`` / ``anchor_batch`` / ``ack_batch`` / ``settle_batch``).
The cascade horizon is clamped to ``now + ack timeout`` so no tree a sweep
registers can time out mid-stretch, and the cascade declines whenever the
runtime is not quiescent (control waves, backlogs, replays in flight,
restarts, captures, multiple sources), falling back to the classic per-event
path for that tick -- loss/replay windows, fault injection and migrations
always take the reference path.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

from repro.dataflow.event import (
    Event,
    EventKind,
    next_event_id,
    recycle_event,
    reserve_event_ids,
)
from repro.dataflow.grouping import Grouping, field_key_of, stable_field_index
from repro.dataflow.task import TaskKind
from repro.engine.executor import Executor, ExecutorStatus, SinkExecutor, SourceExecutor

from repro.sim.rng import keyed_value_block

try:  # numpy powers the vectorized sweep; the cascade degrades without it
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

_EMIT = 0
_ARRIVE = 1
_COMPLETE = 2

_RUNNING = ExecutorStatus.RUNNING
_DATA_KIND = EventKind.DATA

# Unbound kernel-callback identities the vectorized tier knows how to ingest
# when it adopts in-flight work (see _cascade_vectorized).
_PROC_COMPLETE = Executor._complete_data
_SINK_COMPLETE = SinkExecutor._complete_data


class BatchStepper:
    """Runs quiescent steady-state stretches inline (see module docstring)."""

    def __init__(self, runtime: "TopologyRuntime") -> None:
        self.runtime = runtime
        #: Number of cascades executed (diagnostic).
        self.cascades = 0
        #: Simulated events materialized inline instead of via the kernel.
        self.inline_events = 0
        #: Cascades swept with the vectorized (numpy) tier (diagnostic).
        self.vector_cascades = 0
        self._vector_capable_cache: Optional[bool] = None

    # ------------------------------------------------------- vectorized sweep
    def _vector_capable(self) -> bool:
        """Whether the dataflow admits the array sweep at all (cached).

        The sweep replaces per-event ``task.logic`` calls with bulk counter
        updates, which is only sound for the default 1:1 dummy logic (tagged
        by :func:`repro.dataflow.task.default_logic`).  Duplicate task-pair
        edges would interleave their per-channel jitter draws per event,
        which the per-edge arrays cannot reproduce, so they also force the
        per-event tier.  Topology structure and task logic are fixed for the
        runtime's lifetime (rescales change parallelism only), hence cached.
        """
        cached = self._vector_capable_cache
        if cached is None:
            runtime = self.runtime
            cached = _np is not None and runtime.config.batch_vectorize
            if cached:
                dataflow = runtime.dataflow
                for task in dataflow.tasks:
                    if (
                        task.kind is TaskKind.PROCESS
                        and getattr(task.logic, "default_selectivity", None) != 1
                    ):
                        cached = False
                        break
                    dsts = [edge.dst for edge in dataflow.out_edges(task.name)]
                    if len(dsts) != len(set(dsts)):
                        cached = False
                        break
            self._vector_capable_cache = cached
        return cached

    # ------------------------------------------------------------- quiescence
    def _quiescent(self, source: SourceExecutor, allow_inflight: bool = False) -> bool:
        """Whether the cascade may replace per-event processing right now.

        Every condition corresponds to a piece of engine machinery whose
        behaviour the inline handlers do not replicate: if any is live, the
        tick falls back to the classic path (and may cascade again later).

        ``allow_inflight`` relaxes the strict-idle conditions (no pending
        fast-path kernel entries, all executors idle with empty queues) for
        the vectorized tier, which can *adopt* in-flight data work -- pending
        deliveries, in-service completions, queued arrivals -- into its sweep.
        That is what lets cascades re-engage mid-stream: at steady state the
        pipeline is never empty between two source ticks, so the strict check
        only ever passes on the very first tick of a run.  The per-event heap
        tier has no ingestion path and always requires the strict form.
        """
        runtime = self.runtime
        sim = runtime.sim
        if sim.run_until is None:
            return False  # unbounded run: no horizon to materialize up to
        sources = runtime.source_executors
        if len(sources) != 1 or sources[0] is not source:
            return False
        if source.paused or source.status is not _RUNNING:
            return False
        if source._backlog or source._replay_queue:
            return False
        if runtime._deferred_deliveries:
            return False
        if not allow_inflight and sim.has_fast_entries():
            return False  # deliveries/completions already in flight
        for executor in runtime.executors.values():
            if executor.status is not _RUNNING or not executor.initialized:
                return False
            if executor.capture_mode or executor.pre_init_buffer:
                return False
            if not allow_inflight and (executor._busy or executor.input_queue):
                return False
        return True

    # ---------------------------------------------------------------- cascade
    def try_cascade(self, source: SourceExecutor) -> bool:
        """Handle the source tick that just fired, if quiescence allows.

        Returns True when the cascade consumed the tick (emissions performed,
        downstream work either completed inline or spilled, and the next emit
        timer armed); False to fall back to the classic per-tick path.
        """
        vectorized = self._vector_capable()
        strict = self._quiescent(source)
        if not strict and not (vectorized and self._quiescent(source, allow_inflight=True)):
            return False
        runtime = self.runtime
        sim = runtime.sim
        limit = sim.run_until
        horizon = sim.next_timer_time()
        now0 = sim.now
        if horizon is not None and horizon <= now0:
            return False  # another timer is due immediately; do not pass it
        if now0 > limit:  # pragma: no cover - defensive; run() never does this
            return False
        acked = runtime.ack_data_events
        if acked:
            # Any tree a cascade registers schedules its timeout at
            # ``tick + timeout >= now0 + timeout``; clamping the horizon there
            # guarantees no timer the cascade itself creates can fire inside
            # the stretch (already-pending trees bound ``horizon`` through
            # their live timeout timers).
            timeout_at = now0 + runtime.acker.timeout_s
            if horizon is None or timeout_at < horizon:
                horizon = timeout_at

        if vectorized and self._cascade_vectorized(source, now0, limit, horizon, acked):
            return True
        if not strict:
            return False  # in-flight work present; only the vectorized tier ingests it

        log = runtime.log
        timing = runtime.timing
        acker = runtime.acker
        reliability = runtime.reliability
        deliver = runtime.deliver
        record_receipt = log.record_sink_receipt
        record_emit = log.record_source_emit
        schedule_at_fast = sim.schedule_at_fast
        push = heapq.heappush
        pop = heapq.heappop

        heap: List[tuple] = [(now0, 0, _EMIT, None, None, None)]
        seq = 1
        inline = 0

        while heap:
            t, _, kind, a, b, c = pop(heap)
            if acked and horizon is not None and t >= horizon:
                # A drain timer armed mid-cascade (throttle/backlog tick)
                # pulled the horizon in: hand this entry back to the kernel in
                # classic form so the drain tick observes classic state.
                if kind == _ARRIVE:
                    schedule_at_fast(t, deliver, (a.executor_id, b, c))
                elif kind == _COMPLETE:
                    schedule_at_fast(t, a._complete_data, (b,))
                else:
                    source._emit_timer = sim.schedule_at(t, source._emit_tick)
                continue
            inline += 1
            if kind == _ARRIVE:
                executor = a
                if executor._busy or executor.input_queue:
                    executor.input_queue.append((b, c))
                    continue
                executor._busy = True
                tc = t + executor._service_time
                if tc <= limit and (horizon is None or tc < horizon):
                    push(heap, (tc, seq, _COMPLETE, executor, b, None))
                    seq += 1
                else:
                    # Completion crosses the horizon: hand it back to the
                    # kernel in classic form (the executor stays busy, exactly
                    # as if deliver() had scheduled this).
                    schedule_at_fast(tc, executor._complete_data, (b,))
            elif kind == _COMPLETE:
                executor = a
                event = b
                if type(executor) is SinkExecutor:
                    # Sink service: record the receipt (explicit timestamp --
                    # cascade pops are globally time-ordered, so the indexed
                    # log stays monotone), ack the tree, recycle the dead
                    # event (a no-op for anchored events, as in the classic
                    # sink path).
                    executor.received_count += 1
                    record_receipt(
                        root_id=event.root_id,
                        event_id=event.event_id,
                        sink=executor.task.name,
                        root_emitted_at=event.root_emitted_at,
                        replay_count=event.replay_count,
                        at_time=t,
                    )
                    executor.processed_count += 1
                    if acked and event.anchored:
                        acker.ack(event.root_id, event.event_id)
                    recycle_event(event)
                else:
                    task = executor.task
                    acked_ev = acked and event.anchored
                    if acked_ev:
                        # The 1:1 restamp below mutates event_id; capture the
                        # (root, id) pair the classic path acks after routing.
                        ack_root = event.root_id
                        ack_id = event.event_id
                    outputs = task.logic(event.payload, executor.state)
                    if outputs:
                        if len(outputs) == 1:
                            # 1:1 selectivity: mutate the event into its own
                            # child (same id-draw position as the classic
                            # path, see Executor._complete_data).
                            payload = outputs[0]
                            event.event_id = next_event_id()
                            event.source_task = task.name
                            if payload is not None:
                                event.payload = payload
                            event.created_at = t
                            children = (event,)
                        else:
                            children = [
                                event.derive(task.name, payload, t) for payload in outputs
                            ]
                        seq = self._route_inline(
                            executor.executor_id, task.name, children, t,
                            heap, seq, limit, horizon,
                        )
                    if acked_ev:
                        acker.ack(ack_root, ack_id)
                    executor.processed_count += 1
                    executor.busy_time_s += executor._service_time
                # Drain the input queue exactly as _maybe_process would.
                queue = executor.input_queue
                if queue:
                    next_event, _sender = queue.popleft()
                    tc = t + executor._service_time
                    if tc <= limit and (horizon is None or tc < horizon):
                        push(heap, (tc, seq, _COMPLETE, executor, next_event, None))
                        seq += 1
                    else:
                        schedule_at_fast(tc, executor._complete_data, (next_event,))
                else:
                    executor._busy = False
            else:  # _EMIT: one source generation tick (mirrors _emit_tick)
                source._sequence += 1
                payload = source._payload(source._sequence)
                if acked and source._throttled():
                    # Storm's max.spout.pending, evaluated against the live
                    # pending count (trees register and complete in pop
                    # order, so the trajectory is exactly the classic one).
                    if reliability.throttled_ticks_generate_backlog:
                        source._backlog.append(payload)
                    else:
                        source.skipped_ticks += 1
                    horizon = self._inline_drain_timer(source, t, now0, horizon)
                elif acked and (source._backlog or source._replay_queue):
                    # Preserve ordering behind the backlog a throttled tick
                    # started, exactly as _tick() would.
                    source._backlog.append(payload)
                    horizon = self._inline_drain_timer(source, t, now0, horizon)
                else:
                    event = Event.data(
                        source_task=source.task.name,
                        payload=payload,
                        created_at=t,
                        anchored=acked,
                    )
                    if acked:
                        acker.register(event.root_id, at_time=t)
                        source._cache[event.root_id] = payload
                    source.emitted_count += 1
                    record_emit(event.root_id, source.task.name, replay_count=0,
                                from_backlog=False, at_time=t)
                    seq = self._route_inline(
                        source.executor_id, source.task.name, (event,), t,
                        heap, seq, limit, horizon,
                    )
                # Re-arm: same rate evaluation _arm_emit_timer performs at t.
                profile = source.profile
                rate = float(profile.rate_at(t)) if profile is not None else source.rate
                if rate <= 0:
                    source._emit_timer = sim.schedule_at(
                        t + timing.source_idle_recheck_s, source._arm_emit_timer
                    )
                else:
                    source.rate = rate
                    tn = t + 1.0 / rate
                    if tn <= limit and (horizon is None or tn < horizon):
                        push(heap, (tn, seq, _EMIT, None, None, None))
                        seq += 1
                    else:
                        source._emit_timer = sim.schedule_at(tn, source._emit_tick)

        self.cascades += 1
        self.inline_events += inline
        return True

    def _inline_drain_timer(
        self, source: SourceExecutor, t: float, now0: float, horizon: Optional[float]
    ) -> Optional[float]:
        """Arm the source's backlog drain timer from inside a cascade.

        Mirrors ``SourceExecutor._ensure_drain_timer`` evaluated at simulated
        time ``t`` (the kernel clock still sits at ``now0``, hence the
        start-delay offset).  Returns the new cascade horizon: the timer's
        first fire pulls it in, so every materialized entry at or past it is
        spilled back to the kernel and the drain tick observes classic state.
        """
        drain = source._drain_timer
        if drain is not None and drain.active:
            return horizon
        runtime = self.runtime
        period = 1.0 / max(source.rate, runtime.timing.source_max_burst_rate)
        source._drain_timer = runtime.sim.every(
            period, source._drain_tick, start_delay=(t - now0) + period
        )
        first = t + period
        if horizon is None or first < horizon:
            return first
        return horizon

    # ------------------------------------------------------- vectorized tier
    def _cascade_vectorized(
        self,
        source: SourceExecutor,
        now0: float,
        limit: float,
        horizon: Optional[float],
        acked: bool,
    ) -> bool:
        """Sweep the whole stretch with per-task-instance arrays (numpy).

        Instead of replaying individual kernel entries, each task instance is
        processed once with struct-of-arrays arithmetic: per-channel jitter
        draws come from :func:`keyed_value_block` (bit-identical to the scalar
        stream), FIFO bumps and Lindley service recurrences take their exact
        vectorized form when the stretch has no bump/queueing (the common
        case, pre-checked) and an exact scalar scan otherwise.  All simulated
        times, log record streams and executor counters are bit-identical to
        the classic keyed kernel; only the *event-id assignment order*
        differs (ids are drawn in sweep order: roots first, then spilled
        events, then receipts).  Work crossing the horizon is reconstructed
        into classic kernel state exactly as the per-event tier does.

        Unlike the per-event tier, this tier also runs under *relaxed*
        quiescence: pending kernel deliveries, in-service completions and
        queued arrivals are adopted into the sweep (their times are already
        fixed, so the merge stays exact), which is what lets cascades
        re-engage between control-plane windows when the pipeline is never
        fully drained.

        Under data acking (``acked``) the sweep additionally replays the acker
        XOR stream: events that are both anchored and acked inside the stretch
        cancel symbolically (per-root counters, no id ever drawn), events that
        cross the horizon fold real ids into per-root residuals, and the
        whole stream commits through the acker's bulk APIs — trees that live
        and die inside the sweep never materialize a ``PendingTree`` at all.
        The emission schedule is capped at the spout-pending headroom
        (pending only shrinks mid-stretch, so the cap is provably
        throttle-free) and adopted in-flight events keep their original
        objects/ids so their trees' hashes stay exact.

        Returns False (nothing mutated) when an executor subclass it does not
        model is present, or when in-flight work includes anything beyond
        plain data events of live trees (control waves, sink batches,
        state-store latencies, replayed events, events of timed-out trees);
        :meth:`try_cascade` then falls back to the per-event tier or the
        classic path.
        """
        np = _np
        runtime = self.runtime
        executors = runtime.executors
        for executor in executors.values():
            kind = type(executor)
            if kind is not Executor and kind is not SinkExecutor and kind is not SourceExecutor:
                return False
        acker = runtime.acker
        if acked:
            headroom = source.pending_headroom()
            if headroom == 0:
                return False  # throttled tick: the classic/heap paths handle it exactly
        else:
            headroom = None
        sim = runtime.sim
        router = runtime.router

        # ---- In-flight scan (pure, nothing mutated until it fully succeeds).
        # Under relaxed quiescence the kernel heap may hold pending data work;
        # classify every fast-path entry, declining on anything the sweep does
        # not model (control handling, capture drains, sink batch completions,
        # state-store latencies, acked/replayed events).
        inflight: List[Tuple[float, str, Event, str]] = []
        busy_completions: Dict[Any, Tuple[float, Event]] = {}
        pending_entries = sim.fast_entries()
        if pending_entries:
            deliver_cb = runtime.deliver
            batch_cb = router._deliver_batch
            for entry in pending_entries:
                cb = entry[2]
                func = getattr(cb, "__func__", None)
                if func is _PROC_COMPLETE or func is _SINK_COMPLETE:
                    executor = cb.__self__
                    event = entry[3][0]
                    if (
                        event.kind is not _DATA_KIND
                        or event.anchored is not acked
                        or event.replay_count
                        or not executor._busy
                        or executor in busy_completions
                    ):
                        return False
                    busy_completions[executor] = (entry[0], event)
                elif cb == deliver_cb:
                    target, event, sender_id = entry[3]
                    if (
                        event.kind is not _DATA_KIND
                        or event.anchored is not acked
                        or event.replay_count
                        or target not in executors
                        or type(executors[target]) is SourceExecutor
                    ):
                        return False
                    inflight.append((entry[0], target, event, sender_id))
                elif cb == batch_cb:
                    target, sender_id, pairs, index = entry[3]
                    if target not in executors or type(executors[target]) is SourceExecutor:
                        return False
                    for when, event in pairs[index:]:
                        if (
                            event.kind is not _DATA_KIND
                            or event.anchored is not acked
                            or event.replay_count
                        ):
                            return False
                        inflight.append((when, target, event, sender_id))
                else:
                    return False
            for executor in executors.values():
                if executor in busy_completions:
                    for event, _sender in executor.input_queue:
                        if (
                            event.kind is not _DATA_KIND
                            or event.anchored is not acked
                            or event.replay_count
                        ):
                            return False
                elif executor._busy or executor.input_queue:
                    return False  # busy/queued without a modelled completion

        dataflow = runtime.dataflow
        hor = float("inf") if horizon is None else horizon
        if hor <= limit:
            cut_value, cut_side = hor, "left"  # inline iff time < horizon
        else:
            cut_value, cut_side = limit, "right"  # inline iff time <= limit
        side_right = cut_side == "right"

        # ---- Phase A: the emission schedule (exact scalar recurrence).
        profile = source.profile
        rate_at = profile.rate_at if profile is not None else None
        tick_times: List[float] = []
        tick = now0
        idle_from: Optional[float] = None
        next_tick: Optional[float] = None
        while True:
            tick_times.append(tick)
            rate = float(rate_at(tick)) if rate_at is not None else source.rate
            if rate <= 0:
                idle_from = tick
                break
            source.rate = rate
            after = tick + 1.0 / rate
            if (
                after <= limit
                and after < hor
                and (headroom is None or len(tick_times) < headroom)
            ):
                # The headroom cap is pessimistic but exact: pending can only
                # shrink as trees complete mid-stretch, so a stretch emitting
                # at most ``limit - pending`` roots never reaches a tick the
                # classic path would have throttled.
                tick = after
            else:
                next_tick = after
                break

        n_roots = len(tick_times)
        log = runtime.log
        source_name = source.task.name
        seqno = source._sequence
        payloads: List[Any] = [
            source._payload(s) for s in range(seqno + 1, seqno + n_roots + 1)
        ]
        source._sequence = seqno + n_roots
        rid0 = reserve_event_ids(n_roots)
        root_ids: List[int] = list(range(rid0, rid0 + n_roots))
        # Bulk append (record_source_emit with replay_count=0, at_time=tick):
        # fresh root ids are never already in the first-emit map.  On the
        # columnar backend this is a pure array copy — no per-event record.
        log.extend_emits(tick_times, root_ids, source_name)
        source.emitted_count += n_roots
        inline_count = n_roots
        #: Per-root original emission time.  For the roots emitted by this
        #: cascade it equals the tick time; adopted in-flight events append
        #: their own ``root_emitted_at`` (they descend from earlier roots).
        root_emitted: List[float] = list(tick_times)

        def adopt(event: Event) -> int:
            """Register an in-flight event as an extra sweep root index."""
            idx = len(payloads)
            payloads.append(event.payload)
            root_ids.append(event.root_id)
            root_emitted.append(event.root_emitted_at)
            return idx

        #: Acked-mode bookkeeping.  Events wholly inside the sweep never draw
        #: an id: their anchor/ack XOR contributions cancel by construction,
        #: so only per-root-index *counts* are kept (``anch_counts`` /
        #: ``ack_counts``, allocated after ingestion fixes the index space).
        #: Real ids appear exactly where the classic path would leave them
        #: observable: spilled events fold into ``resid`` (new roots, becomes
        #: the registered tree's hash) or ``anchor_pairs`` (pre-existing
        #: trees); adopted in-flight events keep their original ids —
        #: ``ack_pairs`` removes them from their trees when they complete
        #: in-sweep, ``adopted_by_id`` hands the original object back if they
        #: spill again.
        if acked:
            adopted_by_id: Dict[int, Event] = {}
            anchor_pairs: List[Tuple[int, int]] = []
            ack_pairs: List[Tuple[int, int]] = []
        else:
            adopted_by_id = None
            anchor_pairs = ack_pairs = None
        anch_counts = ack_counts = resid = spill_counts = None

        # ---- Phase B: route/serve every task instance in topological order.
        plans = router._route_plans
        channel_base = router._channel_base
        keyed_jitter = router._keyed_jitter
        last_delivery = router._last_delivery
        shuffle_counters = router._shuffle_counters
        network = router._network
        jitter_on = router._jitter_fraction > 0
        jlow = router._jitter_low
        jspan = router._jitter_span
        executor_vm = runtime.executor_vm
        schedule_at_fast = sim.schedule_at_fast
        deliver = runtime.deliver

        #: target executor id -> per-channel (deliveries, root idx, parent
        #: completion times, sender id, event ids or None) arrays, appended in
        #: topological order.  The ids slot is non-None only for adopted
        #: in-flight events under acking (sweep-born events stay symbolic).
        arrivals: Dict[str, List[Tuple[Any, Any, Any, str, Any]]] = {}
        field_cache: Dict[int, Any] = {}

        def field_indices(num: int):
            cached = field_cache.get(num)
            if cached is None:
                cached = np.fromiter(
                    (stable_field_index(field_key_of(p), num) for p in payloads),
                    dtype=np.intp,
                    count=len(payloads),
                )
                field_cache[num] = cached
            return cached

        def ship(sender_id: str, task_name: str, target: str, parent_c, roots) -> None:
            """One channel's deliveries: jitter, FIFO bump, bound split."""
            nonlocal inline_count
            n = len(parent_c)
            channel = (sender_id, target)
            base = channel_base.get(channel)
            if base is None:
                base = channel_base[channel] = network.base_latency(
                    executor_vm(sender_id), executor_vm(target)
                )
            if jitter_on:
                stream = keyed_jitter.get(channel)
                if stream is None:
                    stream = keyed_jitter[channel] = network.keyed_jitter_stream(
                        sender_id, target
                    )
                start = stream.counter
                stream.counter = start + n
                draws = keyed_value_block(stream.seed, start, n, np)
                lat = base * (1.0 + (jlow + jspan * draws))
                np.maximum(lat, 0.0, out=lat)
                raw = parent_c + lat
            else:
                raw = parent_c + base
            last = last_delivery.get(channel, 0.0)
            if raw[0] >= last + 1e-9 and (
                n == 1 or bool((raw[1:] >= raw[:-1] + 1e-9).all())
            ):
                deliveries = raw  # no FIFO bump anywhere (the usual case)
            else:
                deliveries = raw.copy()
                prev = last
                for i in range(n):
                    earliest = prev + 1e-9
                    if earliest > deliveries[i]:
                        deliveries[i] = earliest
                    prev = deliveries[i]
            tail = float(deliveries[-1])
            last_delivery[channel] = tail
            router.routed_count += n
            if (tail <= cut_value) if side_right else (tail < cut_value):
                cut = n  # whole channel in bound: skip the searchsorted
            else:
                cut = int(np.searchsorted(deliveries, cut_value, side=cut_side))
            if cut:
                arrivals.setdefault(target, []).append(
                    (deliveries[:cut], roots[:cut], parent_c[:cut], sender_id, None)
                )
                inline_count += cut
                if acked:
                    # Symbolic anchors: each in-bound shipped event will also
                    # be acked (in-sweep or converted on spill), so no id is
                    # drawn here — only the per-root count advances.
                    np.add.at(anch_counts, roots[:cut], 1)
            for i in range(cut, n):  # beyond the bound: classic deliveries
                r = int(roots[i])
                eid_new = next_event_id()
                if acked:
                    if r < n_roots:
                        # A new root's spilled event: its real id is part of
                        # the tree hash register_block will materialize.
                        resid[r] ^= eid_new
                        spill_counts[r] += 1
                        anch_counts[r] += 1
                    else:
                        anchor_pairs.append((root_ids[r], eid_new))
                event = Event(
                    eid_new, root_ids[r], _DATA_KIND, task_name,
                    payloads[r], float(parent_c[i]), root_emitted[r], None, None, 0, acked,
                )
                schedule_at_fast(float(deliveries[i]), deliver, (target, event, sender_id))

        def route_stream(sender_id: str, task_name: str, completions, roots) -> None:
            """Mirror Router.route target selection on whole arrays."""
            plan = plans.get(task_name)
            if plan is None:
                plan = router._build_plan(task_name)
            n = len(completions)
            for edge, instances, grouping, num in plan:
                if num == 1 or grouping is Grouping.GLOBAL:
                    ship(sender_id, task_name, instances[0], completions, roots)
                elif grouping is Grouping.ALL:
                    for target in instances:
                        ship(sender_id, task_name, target, completions, roots)
                elif grouping is Grouping.FIELDS:
                    tidx = field_indices(num)[roots]
                    for k in range(num):
                        mask = tidx == k
                        if mask.any():
                            ship(sender_id, task_name, instances[k],
                                 completions[mask], roots[mask])
                else:  # shuffle round-robin per (sender executor, dst task)
                    counter_key = (sender_id, edge.dst)
                    start = shuffle_counters.get(counter_key, 0)
                    shuffle_counters[counter_key] = start + n
                    # Event i goes to instance (start + i) % num, so instance
                    # k's events are the strided slice starting at
                    # (k - start) % num -- views, no masks, no copies.
                    for k in range(num):
                        i0 = (k - start) % num
                        if i0 < n:
                            ship(sender_id, task_name, instances[k],
                                 completions[i0::num], roots[i0::num])

        # ---- Commit the ingestion: the sweep now owns all in-flight work.
        # Pending deliveries inside the bound become one-element arrival
        # channels (their jitter was drawn -- and the channel FIFO state
        # advanced -- when they were routed); the rest go straight back on the
        # kernel heap unchanged.  Each busy executor is seeded with its fixed
        # in-service completion time plus its queued arrivals, in order.
        #: executor id -> (in-service completion time, [(event, sender) ...],
        #: adopted root indices), list position 0 being the in-service event.
        seeded: Dict[str, Tuple[float, List[Tuple[Event, str]], List[int]]] = {}
        if pending_entries:
            sim.remove_fast_entries()
            for when, target, event, sender_id in inflight:
                if when <= limit and when < hor:
                    idx = adopt(event)
                    if acked:
                        # The event's id is already folded into its pending
                        # tree: carry it so the in-sweep ack removes exactly
                        # it, and keep the object (recycle would refuse it
                        # anyway) in case it spills past the bound again.
                        ids_arr = np.array([event.event_id], dtype=np.uint64)
                        adopted_by_id[int(event.event_id)] = event
                    else:
                        ids_arr = None
                    arrivals.setdefault(target, []).append(
                        (
                            np.array([when]),
                            np.array([idx], dtype=np.intp),
                            np.array([event.created_at]),
                            sender_id,
                            ids_arr,
                        )
                    )
                    inline_count += 1
                    if not acked:
                        recycle_event(event)
                else:
                    schedule_at_fast(when, deliver, (target, event, sender_id))
            for executor, (when, event) in busy_completions.items():
                entries: List[Tuple[Event, str]] = [(event, "")]
                entries.extend(executor.input_queue)
                executor.input_queue.clear()
                executor._busy = False  # re-established by the spill if needed
                seeded[executor.executor_id] = (
                    when, entries, [adopt(ev) for ev, _ in entries]
                )

        if acked:
            # Ingestion fixed the root-index space; the counters can now be
            # sized once (ship and the executor loop mutate them in place).
            n_total = len(payloads)
            anch_counts = np.zeros(n_total, dtype=np.int64)
            ack_counts = np.zeros(n_total, dtype=np.int64)
            resid = [0] * n_roots
            spill_counts = [0] * n_roots

        route_stream(
            source.executor_id, source_name,
            np.array(tick_times), np.arange(n_roots),
        )

        sink_recs: List[Tuple[Any, Any, SinkExecutor]] = []
        for name in dataflow.topological_order:
            task = dataflow.task(name)
            if task.kind is TaskKind.SOURCE:
                continue
            for eid in task.instance_ids():
                chans = arrivals.get(eid)
                seed = seeded.get(eid)
                if not chans and seed is None:
                    continue
                executor = executors[eid]
                service = executor._service_time
                if chans:
                    if len(chans) == 1:
                        arr, roots, parents, sole_sender, aids = chans[0]
                        senders = None
                    else:
                        arr = np.concatenate([c[0] for c in chans])
                        roots = np.concatenate([c[1] for c in chans])
                        parents = np.concatenate([c[2] for c in chans])
                        senders = np.concatenate(
                            [np.full(len(c[0]), i, dtype=np.intp) for i, c in enumerate(chans)]
                        )
                        if acked and any(c[4] is not None for c in chans):
                            aids = np.concatenate(
                                [
                                    c[4]
                                    if c[4] is not None
                                    else np.zeros(len(c[0]), dtype=np.uint64)
                                    for c in chans
                                ]
                            )
                        else:
                            aids = None
                        order = np.argsort(arr, kind="stable")
                        arr = arr[order]
                        roots = roots[order]
                        parents = parents[order]
                        senders = senders[order]
                        if aids is not None:
                            aids = aids[order]
                        sole_sender = None
                    n = len(arr)
                else:
                    arr = roots = parents = senders = sole_sender = aids = None
                    n = 0
                if seed is not None:
                    # Seeded prefix: the in-service completion is pinned at
                    # its already-scheduled time, the queued arrivals drain
                    # back to back after it (``tc = t + service`` chains, the
                    # exact classic recurrence).  Every seeded completion
                    # precedes every new-arrival completion in time, so the
                    # concatenation below stays sorted.
                    t_fixed, sevents, sidx = seed
                    m = len(sevents)
                    sc = np.empty(m)
                    prev = t_fixed
                    sc[0] = prev
                    for j in range(1, m):
                        prev = prev + service
                        sc[j] = prev
                    prev_init = prev
                    sids = (
                        np.fromiter(
                            (ev.event_id for ev, _ in sevents), dtype=np.uint64, count=m
                        )
                        if acked
                        else None
                    )
                else:
                    sevents = sidx = sids = None
                    m = 0
                    prev_init = None
                if n:
                    if service == 0.0:
                        if prev_init is not None and arr[0] < prev_init:
                            # Arrivals landing while the seeded work drains
                            # complete the instant it finishes (exact: a
                            # selection, no arithmetic).
                            ncomp = np.maximum(arr, prev_init)
                        else:
                            ncomp = arr  # `tc = t + 0.0` is exact
                    elif (prev_init is None or arr[0] >= prev_init) and (
                        n == 1 or bool((arr[1:] >= arr[:-1] + service).all())
                    ):
                        ncomp = arr + service  # no queueing anywhere
                    else:
                        ncomp = np.empty(n)
                        prev = float("-inf") if prev_init is None else prev_init
                        for i in range(n):  # exact Lindley scan
                            value = arr[i]
                            prev = (value if value > prev else prev) + service
                            ncomp[i] = prev
                else:
                    ncomp = None
                if m and n:
                    completions = np.concatenate([sc, ncomp])
                    all_roots = np.concatenate([np.asarray(sidx, dtype=np.intp), roots])
                    if acked:
                        all_ids = np.concatenate(
                            [sids, aids if aids is not None else np.zeros(n, dtype=np.uint64)]
                        )
                    else:
                        all_ids = None
                elif m:
                    completions = sc
                    all_roots = np.asarray(sidx, dtype=np.intp)
                    all_ids = sids
                else:
                    completions = ncomp
                    all_roots = roots
                    all_ids = aids
                total = m + n
                if service == 0.0 and m == 0:
                    k = total  # inline arrivals complete at their own (in-bound) times
                else:
                    # Seeded completion times were inherited from the kernel
                    # heap and may already sit past the bound, so the cut
                    # applies even when the service time is zero.
                    tail = float(completions[total - 1])
                    if (tail <= cut_value) if side_right else (tail < cut_value):
                        k = total
                    else:
                        k = int(np.searchsorted(completions, cut_value, side=cut_side))
                inline_count += k
                if acked and k:
                    # Every in-sweep completion acks its event (the classic
                    # path acks at both process and sink completions):
                    # symbolic for sweep-born events — the count cancels the
                    # ship-time anchor — and a real-id ack for adopted events,
                    # whose ids are already in their trees' hashes.
                    np.add.at(ack_counts, all_roots[:k], 1)
                    if all_ids is not None:
                        for j in np.flatnonzero(all_ids[:k]):
                            r = int(all_roots[j])
                            ack_counts[r] -= 1
                            ack_pairs.append((root_ids[r], int(all_ids[j])))
                if type(executor) is SinkExecutor:
                    if k:
                        sink_recs.append((completions[:k], all_roots[:k], executor))
                        executor.received_count += k
                        executor.processed_count += k
                else:
                    if k:
                        route_stream(eid, name, completions[:k], all_roots[:k])
                        executor.processed_count += k
                        state = executor.state
                        state["processed"] = state.get("processed", 0) + k
                        busy = executor.busy_time_s
                        for _ in range(k):  # k sequential adds, like the kernel
                            busy += service
                        executor.busy_time_s = busy
                for j in range(min(k, m)):
                    # Completed adopted events leave the system here; feed the
                    # clone pool as the classic sink path eventually would.
                    recycle_event(sevents[j][0])
                if k < total:
                    # The k-th service crosses the bound: leave the executor
                    # busy with its completion on the kernel heap and the
                    # later arrivals queued, exactly as the classic kernel
                    # would have them at this point.  Seeded positions still
                    # hold their original Event objects; new arrivals are
                    # materialized from the sweep arrays.
                    def event_at(i: int) -> Tuple[Event, str]:
                        if i < m:
                            return sevents[i]
                        j = i - m
                        r = int(roots[j])
                        sid = (
                            sole_sender
                            if senders is None
                            else chans[int(senders[j])][3]
                        )
                        if aids is not None and aids[j]:
                            # Adopted event crossing the bound again: hand the
                            # original object back so the id folded into its
                            # tree stays the one the classic path will ack.
                            return adopted_by_id[int(aids[j])], sid
                        eid_new = next_event_id()
                        if acked:
                            if r < n_roots:
                                resid[r] ^= eid_new
                                spill_counts[r] += 1
                            else:
                                # Convert the ship-time symbolic anchor into a
                                # real one on the pre-existing tree.
                                anch_counts[r] -= 1
                                anchor_pairs.append((root_ids[r], eid_new))
                        event = Event(
                            eid_new, root_ids[r], _DATA_KIND,
                            executors[sid].task.name, payloads[r],
                            float(parents[j]), root_emitted[r], None, None, 0, acked,
                        )
                        return event, sid

                    executor._busy = True
                    in_service, _in_sender = event_at(k)
                    schedule_at_fast(
                        float(completions[k]), executor._complete_data, (in_service,)
                    )
                    queue_append = executor.input_queue.append
                    for i in range(k + 1, total):
                        queue_append(event_at(i))

        # ---- Commit the ack stream: one bulk acker update per category.
        if acked:
            # New roots whose every event was anchored *and* acked inside the
            # sweep resolved to zero by construction — stats only, no
            # PendingTree, no timer.  The rest materialize with their exact
            # classic end-of-stretch state (hash = XOR of outstanding spilled
            # ids) and back-dated timeout timers.
            resolved_count = 0
            resolved_anchors = 0
            resolved_acks = 0
            u_idx: List[int] = []
            for r in range(n_roots):
                if spill_counts[r] == 0 and anch_counts[r] > 0:
                    resolved_count += 1
                    resolved_anchors += int(anch_counts[r])
                    resolved_acks += int(ack_counts[r])
                else:
                    u_idx.append(r)
            acker.absorb_resolved(resolved_count, resolved_anchors, resolved_acks)
            if u_idx:
                u_roots = [root_ids[r] for r in u_idx]
                acker.register_block(
                    u_roots,
                    [tick_times[r] for r in u_idx],
                    [resid[r] for r in u_idx],
                    [int(anch_counts[r]) for r in u_idx],
                    [int(ack_counts[r]) for r in u_idx],
                )
                source.cache_block(u_roots, [payloads[r] for r in u_idx])
            # Pre-existing trees: real anchors first (spilled ids enter the
            # hashes), then the cancelled symbolic pairs, then the real acks —
            # so no tree's hash can transiently return to zero before all its
            # outstanding ids are in place.  Completions fire the classic
            # on_complete (source drops its cached payloads).
            if anchor_pairs:
                acker.anchor_batch(anchor_pairs)
            if len(payloads) > n_roots:
                adopted_idx = range(n_roots, len(payloads))
                acker.settle_batch(
                    [root_ids[r] for r in adopted_idx],
                    [int(anch_counts[r]) for r in adopted_idx],
                    [int(ack_counts[r]) for r in adopted_idx],
                )
            if ack_pairs:
                acker.ack_batch(ack_pairs)

        # ---- Phase C: receipts merged into the log in global time order.
        if sink_recs:
            log = runtime.log
            # Per-root fields are gathered with one numpy fancy-index and the
            # receipt ids come from one bulk reservation plus ``np.arange``.
            # ``extend_receipts`` is backend-polymorphic: the classic log
            # materializes the exact records the per-event path would have
            # built (tolist() yields native floats/ints), the columnar log
            # appends the arrays directly — zero per-event objects.
            rid_arr = np.asarray(root_ids, dtype=np.int64)
            emitted_arr = np.asarray(root_emitted, dtype=np.float64)
            if len(sink_recs) == 1:
                times, roots, sink = sink_recs[0]
                eid0 = reserve_event_ids(len(times))
                log.extend_receipts(
                    times,
                    rid_arr[roots],
                    np.arange(eid0, eid0 + len(times), dtype=np.int64),
                    sink.task.name,
                    emitted_arr[roots],
                )
            else:
                all_times = np.concatenate([rec[0] for rec in sink_recs])
                all_roots = np.concatenate([rec[1] for rec in sink_recs])
                which = np.concatenate(
                    [np.full(len(rec[0]), i, dtype=np.intp) for i, rec in enumerate(sink_recs)]
                )
                names = [rec[2].task.name for rec in sink_recs]
                order = np.argsort(all_times, kind="stable")
                roots_sorted = all_roots[order]
                eid0 = reserve_event_ids(len(all_times))
                log.extend_receipts(
                    all_times[order],
                    rid_arr[roots_sorted],
                    np.arange(eid0, eid0 + len(all_times), dtype=np.int64),
                    names,
                    emitted_arr[roots_sorted],
                    sink_indices=which[order],
                )

        # ---- Re-arm the source exactly as _arm_emit_timer would.
        if idle_from is not None:
            source._emit_timer = sim.schedule_at(
                idle_from + runtime.timing.source_idle_recheck_s, source._arm_emit_timer
            )
        else:
            source._emit_timer = sim.schedule_at(next_tick, source._emit_tick)

        self.cascades += 1
        self.vector_cascades += 1
        self.inline_events += inline_count
        return True

    # ---------------------------------------------------------------- routing
    def _route_inline(
        self,
        sender_id: str,
        task_name: str,
        events,
        now: float,
        heap: List[tuple],
        seq: int,
        limit: float,
        horizon: Optional[float],
    ) -> int:
        """Route ``events`` at simulated time ``now`` without the kernel.

        Mirrors Router.route()/_route_general: same grouping selection, same
        sole-delivery id re-stamp vs per-edge copy, same anchor-at-route-time
        acker call for anchored events, same keyed jitter draw and per-channel
        FIFO bump (via the router's own ``_delivery_time``).  In-bound
        deliveries become cascade ARRIVE entries; the rest spill to the
        kernel as classic deliveries.
        """
        runtime = self.runtime
        router = runtime.router
        acker = runtime.acker
        ack_data = runtime.ack_data_events
        plan = router._route_plans.get(task_name)
        if plan is None:
            plan = router._build_plan(task_name)
        executors = runtime.executors
        delivery_time = router._delivery_time
        shuffle_counters = router._shuffle_counters
        schedule_at_fast = runtime.sim.schedule_at_fast
        deliver = runtime.deliver
        push = heapq.heappush
        single_edge = len(plan) == 1
        for edge, instances, grouping, num in plan:
            for event in events:
                if num == 1:
                    targets = instances
                elif grouping is Grouping.ALL:
                    targets = instances
                elif grouping is Grouping.GLOBAL:
                    targets = instances[:1]
                elif grouping is Grouping.FIELDS:
                    targets = (
                        instances[stable_field_index(field_key_of(event.payload), num)],
                    )
                else:  # shuffle round-robin per (sender executor, dst task)
                    counter_key = (sender_id, edge.dst)
                    index = shuffle_counters.get(counter_key, 0)
                    shuffle_counters[counter_key] = index + 1
                    targets = (instances[index % num],)
                if single_edge and len(targets) == 1:
                    target = targets[0]
                    event.event_id = next_event_id()
                    if ack_data and event.anchored and event.kind is _DATA_KIND:
                        acker.anchor(event.root_id, event.event_id)
                    d = delivery_time(sender_id, target, now)
                    router.routed_count += 1
                    if d <= limit and (horizon is None or d < horizon):
                        push(heap, (d, seq, _ARRIVE, executors[target], event, sender_id))
                        seq += 1
                    else:
                        schedule_at_fast(d, deliver, (target, event, sender_id))
                    continue
                for target in targets:
                    copy = event.copy_for_edge()
                    if ack_data and copy.anchored and copy.kind is _DATA_KIND:
                        acker.anchor(copy.root_id, copy.event_id)
                    d = delivery_time(sender_id, target, now)
                    router.routed_count += 1
                    if d <= limit and (horizon is None or d < horizon):
                        push(heap, (d, seq, _ARRIVE, executors[target], copy, sender_id))
                        seq += 1
                    else:
                        schedule_at_fast(d, deliver, (target, copy, sender_id))
        return seq
