"""Migration strategy framework.

A migration strategy enacts an already-planned reschedule of a running
dataflow (the new placement of executors onto VMs) while managing reliability
and timeliness.  The paper proposes two strategies (DCR and CCR) and compares
them against Storm's out-of-the-box behaviour (DSM).  All three are
implemented as orchestrations of the runtime's existing capabilities --
pausing sources, emitting checkpoint waves, invoking ``rebalance`` and
re-sending INIT events -- mirroring the paper's implementation as extensions
of Storm rather than a new engine.

The strategy records a :class:`MigrationReport` of phase timestamps, from
which (together with the run's event log) the §4 metrics are computed in
:mod:`repro.core.metrics`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Type, Union

from repro.cluster.placement import PlacementPlan
from repro.dataflow.graph import RescalePlan
from repro.engine.config import RuntimeConfig
from repro.engine.runtime import RebalanceRecord, RescaleRecord, TopologyRuntime
from repro.reliability.repartition import repartition_rescaled_tasks

#: Placement input accepted by :meth:`MigrationStrategy.migrate`: either a
#: ready plan, or a factory called *after* any rescale has been applied --
#: necessary because a rescale changes the executor set the plan must cover.
PlanInput = Union[PlacementPlan, Callable[[TopologyRuntime], PlacementPlan]]


@dataclass
class MigrationReport:
    """Phase timestamps and bookkeeping for one migration enactment.

    All times are absolute simulated times in seconds; durations are derived
    by :func:`repro.core.metrics.compute_migration_metrics`.
    """

    strategy: str
    requested_at: float
    sources_paused_at: Optional[float] = None
    drain_started_at: Optional[float] = None
    prepare_completed_at: Optional[float] = None
    commit_completed_at: Optional[float] = None
    rebalance_started_at: Optional[float] = None
    rebalance_command_completed_at: Optional[float] = None
    init_completed_at: Optional[float] = None
    sources_unpaused_at: Optional[float] = None
    completed_at: Optional[float] = None
    checkpoint_id: Optional[int] = None
    rebalance_record: Optional[RebalanceRecord] = None
    rescale_record: Optional[RescaleRecord] = None
    notes: Dict[str, float] = field(default_factory=dict)

    @property
    def is_complete(self) -> bool:
        """Whether the migration protocol has finished (INIT acked everywhere)."""
        return self.completed_at is not None

    @property
    def drain_capture_duration_s(self) -> Optional[float]:
        """Time from the migration request until the rebalance command is issued.

        This is the paper's Drain (DCR) / Capture (CCR) duration; it is not
        applicable to DSM (which rebalances immediately) and is reported as 0.
        """
        if self.rebalance_started_at is None:
            return None
        return self.rebalance_started_at - self.requested_at

    @property
    def rebalance_duration_s(self) -> Optional[float]:
        """Duration of the Storm rebalance command itself."""
        if self.rebalance_started_at is None or self.rebalance_command_completed_at is None:
            return None
        return self.rebalance_command_completed_at - self.rebalance_started_at

    @property
    def protocol_duration_s(self) -> Optional[float]:
        """Time from request until the strategy's protocol completed."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.requested_at


class MigrationStrategy(ABC):
    """Base class for dataflow migration strategies."""

    #: Short name used in reports, figures and the strategy registry.
    name: str = "base"

    def __init__(self, runtime: TopologyRuntime, init_resend_interval_s: float = 1.0) -> None:
        self.runtime = runtime
        self.init_resend_interval_s = init_resend_interval_s
        self.report: Optional[MigrationReport] = None
        self._on_complete: Optional[Callable[[MigrationReport], None]] = None

    # ----------------------------------------------------------- configuration
    @classmethod
    def runtime_config(cls, seed: int = 2018) -> RuntimeConfig:
        """The runtime configuration this strategy requires (acking, checkpoints, capture)."""
        return RuntimeConfig(seed=seed)

    # ------------------------------------------------------------------- API
    @abstractmethod
    def migrate(
        self,
        new_plan: PlanInput,
        on_complete: Optional[Callable[[MigrationReport], None]] = None,
        rescale: Optional[RescalePlan] = None,
    ) -> MigrationReport:
        """Enact the migration to ``new_plan``, optionally rescaling parallelism.

        ``new_plan`` is either a :class:`PlacementPlan` or a callable
        ``runtime -> PlacementPlan`` invoked once any ``rescale`` has been
        applied (a rescale changes the executor set the plan must place).
        ``rescale`` gives per-task target instance counts enacted at the
        strategy's safe point: DCR/CCR rescale after the COMMIT wave (state
        freshly persisted, dataflow drained/captured); DSM rescales
        immediately before its rebalance and lets the acker replay whatever
        was lost.

        Returns the (initially incomplete) :class:`MigrationReport`, which is
        filled in asynchronously as the protocol progresses under the
        simulated clock.  ``on_complete`` fires when the protocol finishes.
        """

    # --------------------------------------------------------------- helpers
    def _new_report(self) -> MigrationReport:
        report = MigrationReport(strategy=self.name, requested_at=self.runtime.sim.now)
        self.report = report
        return report

    def _stage_enactment(self, new_plan: PlanInput, rescale: Optional[RescalePlan]) -> None:
        """Validate and remember the placement input and optional rescale."""
        if rescale is not None:
            rescale.validate(self.runtime.dataflow)
        self._plan_input: PlanInput = new_plan
        self._rescale: Optional[RescalePlan] = rescale

    def _enact_rescale(self) -> float:
        """Apply the staged rescale (executors + statestore re-partitioning), if any.

        Called by the concrete strategies at their safe point, immediately
        before resolving the placement plan and rebalancing.  Returns the
        modelled store latency of the state redistribution (0.0 when there
        is nothing to rescale): DCR/CCR delay their rebalance by it, DSM
        lets it overlap the worker-restart window (Storm-style background
        state-send).
        """
        rescale = getattr(self, "_rescale", None)
        if rescale is None or rescale.is_noop(self.runtime.dataflow):
            return 0.0
        record = self.runtime.apply_rescale(rescale)
        store_latency_s = sum(
            stats.store_latency_s for stats in repartition_rescaled_tasks(self.runtime, record)
        )
        if self.report is not None:
            self.report.rescale_record = record
            self.report.notes["rescaled_at"] = self.runtime.sim.now
            self.report.notes["rescale_spawned"] = float(len(record.spawned))
            self.report.notes["rescale_retired"] = float(len(record.retired))
            self.report.notes["rescale_store_latency_s"] = store_latency_s
        return store_latency_s

    def _resolve_plan(self) -> PlacementPlan:
        """Materialize the staged placement plan (post-rescale for factories)."""
        plan_input = self._plan_input
        if callable(plan_input):
            return plan_input(self.runtime)
        return plan_input

    def _finish(self) -> None:
        if self.report is not None and self.report.completed_at is None:
            self.report.completed_at = self.runtime.sim.now
        if self._on_complete is not None and self.report is not None:
            self._on_complete(self.report)


#: Registry of available strategies, populated by the concrete modules.
STRATEGIES: Dict[str, Type[MigrationStrategy]] = {}


def register_strategy(cls: Type[MigrationStrategy]) -> Type[MigrationStrategy]:
    """Class decorator adding a strategy to the :data:`STRATEGIES` registry."""
    STRATEGIES[cls.name] = cls
    return cls


def strategy_by_name(name: str) -> Type[MigrationStrategy]:
    """Look up a strategy class by its short name (``dsm``, ``dcr``, ``ccr``)."""
    try:
        return STRATEGIES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown migration strategy {name!r}; choose from {sorted(STRATEGIES)}") from None
