"""The paper's core contribution: reliable and rapid dataflow migration.

Three strategies are provided:

* :class:`~repro.core.dsm.DefaultStormMigration` (``dsm``) -- the baseline:
  rebalance immediately and recover through acking-based replay plus the last
  periodic checkpoint.
* :class:`~repro.core.dcr.DrainCheckpointRestore` (``dcr``) -- pause the
  sources, drain all in-flight messages, take a just-in-time checkpoint,
  rebalance, and restore with aggressively re-sent INIT events.
* :class:`~repro.core.ccr.CaptureCheckpointResume` (``ccr``) -- broadcast the
  PREPARE, capture in-flight messages in each task's pending list, persist
  them with the state, and resume them locally after the rebalance.

Use :func:`~repro.core.strategy.strategy_by_name` (or the :data:`STRATEGIES`
registry) to construct a strategy for a :class:`~repro.engine.runtime.TopologyRuntime`,
and :func:`~repro.core.metrics.compute_migration_metrics` to evaluate a run.
"""

from repro.core.strategy import (
    STRATEGIES,
    MigrationReport,
    MigrationStrategy,
    register_strategy,
    strategy_by_name,
)
from repro.core.dsm import DefaultStormMigration
from repro.core.dcr import DrainCheckpointRestore
from repro.core.ccr import CaptureCheckpointResume
from repro.core.metrics import MigrationMetrics, compute_migration_metrics

__all__ = [
    "CaptureCheckpointResume",
    "DefaultStormMigration",
    "DrainCheckpointRestore",
    "MigrationMetrics",
    "MigrationReport",
    "MigrationStrategy",
    "STRATEGIES",
    "compute_migration_metrics",
    "register_strategy",
    "strategy_by_name",
]
