"""CCR: Capture, Checkpoint and Resume.

CCR removes DCR's main cost -- the time spent draining every in-flight message
through every downstream task -- with two changes (§3.2 of the paper):

1. **Broadcast checkpoint channel.**  PREPARE (and later INIT) events are sent
   directly from the checkpoint source to *every* task over a hub-and-spoke
   channel, so they land at the end of each task's input queue without having
   to traverse the preceding tasks.
2. **Capture instead of drain.**  When a task processes the broadcast PREPARE
   it enables a *capture flag*: the one event it may currently be executing
   completes (its outputs are captured rather than emitted), and every further
   data event found on the input queue is appended to a pending-event list
   without being processed.  The COMMIT wave still sweeps sequentially through
   the dataflow (guaranteeing it is behind all in-flight data), and persists
   the user state *plus* the pending-event list to the state store.

After the zero-timeout rebalance, INIT is broadcast (re-sent every second);
each task restores its state, replays its captured events locally -- emitting
their outputs downstream -- and only then are the sources unpaused.  The
dataflow therefore resumes from exactly where it stopped: the drain time of
DCR is overlapped with the refill time after the rebalance.

A mid-migration rescale (inherited from DCR) happens after the COMMIT wave:
the captured pending events persisted with each instance's checkpoint are
re-routed to the *new* owner instances (by field key for FIELDS-grouped
tasks) along with the re-partitioned state, so the local replay after INIT
happens exactly where future deliveries of the same keys will land.
"""

from __future__ import annotations

from repro.core.dcr import DrainCheckpointRestore
from repro.core.strategy import register_strategy
from repro.engine.config import RuntimeConfig
from repro.reliability.checkpoint import WaveMode


@register_strategy
class CaptureCheckpointResume(DrainCheckpointRestore):
    """Capture in-flight events instead of draining them; broadcast PREPARE/INIT."""

    name = "ccr"

    #: PREPARE and INIT are broadcast directly to every task instance; the
    #: COMMIT wave (inherited) remains sequential along the dataflow edges.
    prepare_mode = WaveMode.BROADCAST
    init_mode = WaveMode.BROADCAST

    @classmethod
    def runtime_config(cls, seed: int = 2018) -> RuntimeConfig:
        """CCR needs capture-on-PREPARE enabled in the executors' platform logic."""
        return RuntimeConfig.for_ccr(seed=seed)
