"""DSM: Default Storm Migration (the paper's baseline).

DSM performs reliable rebalancing using only Storm's out-of-the-box
capabilities:

* acking is enabled for **all** data events, so any event whose causal tree
  does not complete within the 30 s timeout is replayed by the source;
* **periodic checkpointing** (every 30 s) keeps a recent copy of each stateful
  task's state in the external store;
* on a migration request, Storm's ``rebalance`` command is invoked
  **immediately** with a zero timeout: migrating tasks are killed (losing
  their queued events), redeployed on the new slots, and re-initialized from
  the *last periodic* checkpoint via an INIT wave.

The INIT wave is re-sent only when its acks time out (30 s), which is what
produces the characteristic ~30 s jumps in DSM's restore time observed by the
paper.  The source is never paused, so new events keep flowing into the
broken dataflow, fail, and are replayed -- the cause of DSM's long catch-up,
recovery and stabilization times.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.strategy import MigrationReport, MigrationStrategy, PlanInput, register_strategy
from repro.dataflow.event import CheckpointAction
from repro.dataflow.graph import RescalePlan
from repro.engine.config import RuntimeConfig
from repro.engine.runtime import RebalanceRecord
from repro.reliability.checkpoint import CheckpointWave, WaveMode


@register_strategy
class DefaultStormMigration(MigrationStrategy):
    """Baseline migration: immediate rebalance, recovery via acking + periodic checkpoints."""

    name = "dsm"

    @classmethod
    def runtime_config(cls, seed: int = 2018) -> RuntimeConfig:
        """DSM needs acking of all events and periodic checkpointing enabled."""
        return RuntimeConfig.for_dsm(seed=seed)

    def migrate(
        self,
        new_plan: PlanInput,
        on_complete: Optional[Callable[[MigrationReport], None]] = None,
        rescale: Optional[RescalePlan] = None,
    ) -> MigrationReport:
        report = self._new_report()
        self._on_complete = on_complete
        self._stage_enactment(new_plan, rescale)

        # A parallelism change is enacted the Storm way: immediately, with no
        # drain.  The *last periodic* checkpoint is re-keyed ("state-send") to
        # the new owners, in-flight events to re-partitioned instances are
        # lost at the kill, and the acker replays their roots -- the same
        # recovery path DSM already relies on for plain placement changes.
        # The state-send's store latency overlaps the (much longer) rebalance
        # and worker-restart window, so it is not awaited here.
        self._enact_rescale()
        resolved_plan = self._resolve_plan()

        # The rebalance is initiated immediately on the user request; the
        # consequences (lost events, stale state) are recovered afterwards.
        report.rebalance_started_at = self.runtime.sim.now
        record = self.runtime.rebalance(resolved_plan, on_command_complete=self._after_rebalance_command)
        report.rebalance_record = record
        return report

    # ------------------------------------------------------------- internals
    def _after_rebalance_command(self, record: RebalanceRecord) -> None:
        report = self.report
        assert report is not None
        report.rebalance_command_completed_at = self.runtime.sim.now

        # Standard Storm behaviour: the checkpoint framework re-initializes the
        # restarted tasks from the last committed (periodic) checkpoint.  Lost
        # INIT events are only re-sent after the acking timeout expires.
        checkpoint_id = self.runtime.checkpoints.new_checkpoint_id()
        report.checkpoint_id = checkpoint_id
        self.runtime.checkpoints.start_wave(
            CheckpointAction.INIT,
            checkpoint_id,
            WaveMode.SEQUENTIAL,
            on_complete=self._after_init,
            resend_interval_s=self.runtime.reliability.ack_timeout_s,
        )

    def _after_init(self, wave: CheckpointWave) -> None:
        report = self.report
        assert report is not None
        report.init_completed_at = self.runtime.sim.now
        self._finish()
