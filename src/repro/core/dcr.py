"""DCR: Drain, Checkpoint and Restore.

DCR addresses DSM's performance problems with three ideas (§3.1 of the paper):

1. **Drain** -- pause the source tasks and let all in-flight messages execute
   to completion before anything is killed.  The PREPARE event, flowing
   sequentially along the dataflow edges behind the data, is the *rearguard*
   that guarantees the drain: when a task sees it (from every upstream
   instance), it has processed everything that was in flight.
2. **Just-in-time checkpoint** -- the PREPARE/COMMIT wave is run once, right
   before the rebalance, so the freshest state is persisted and no periodic
   checkpointing overhead is paid during normal operation.  Acking is needed
   only for the checkpoint control events themselves.
3. **Restore** -- after the zero-timeout rebalance, INIT events flow
   sequentially through the rebalanced dataflow and are aggressively re-sent
   every second (duplicates are ignored by already-initialized tasks), so the
   restore is not hostage to the 30 s ack timeout the way DSM's is.  Once all
   tasks have acked an INIT, the sources are unpaused and the backlog that
   accumulated during the migration flows through the new deployment.

There are no lost messages and therefore no replays: old (pre-migration)
events never interleave with new ones.

Because DCR establishes a clean boundary between events processed before and
after the migration, it is the natural vehicle for the paper's suggested
extension of *updating the task logic* as part of the migration ("updating the
task logic by re-wiring the DAG on the fly"): pass ``logic_updates`` to
:meth:`DrainCheckpointRestore.migrate` and the new user logic is installed on
every instance of the named tasks after their state is restored and before the
sources are unpaused, so old events are processed entirely by the old logic
and new events entirely by the new logic.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.strategy import MigrationReport, MigrationStrategy, PlanInput, register_strategy
from repro.dataflow.event import CheckpointAction
from repro.dataflow.graph import RescalePlan
from repro.dataflow.task import UserLogic
from repro.engine.config import RuntimeConfig
from repro.engine.runtime import RebalanceRecord
from repro.reliability.checkpoint import CheckpointWave, WaveMode


@register_strategy
class DrainCheckpointRestore(MigrationStrategy):
    """Pause sources, drain the dataflow, JIT-checkpoint, rebalance, restore."""

    name = "dcr"

    #: Wave modes used by this strategy (CCR overrides these).
    prepare_mode = WaveMode.SEQUENTIAL
    init_mode = WaveMode.SEQUENTIAL

    @classmethod
    def runtime_config(cls, seed: int = 2018) -> RuntimeConfig:
        """DCR needs neither data acking nor periodic checkpoints."""
        return RuntimeConfig.for_dcr(seed=seed)

    def migrate(
        self,
        new_plan: PlanInput,
        on_complete: Optional[Callable[[MigrationReport], None]] = None,
        logic_updates: Optional[Dict[str, UserLogic]] = None,
        rescale: Optional[RescalePlan] = None,
    ) -> MigrationReport:
        """Enact the migration; optionally install new user logic or rescale tasks.

        ``logic_updates`` maps task names to replacement user-logic callables
        that take effect after the restore, before the sources resume -- the
        paper's "update the task logic while re-wiring the DAG" extension.
        ``rescale`` changes task instance counts at DCR's natural clean
        boundary: after the drain + just-in-time checkpoint (state persisted
        under the old partitioning), the checkpoints are re-keyed to the new
        instance set and the rebalance deploys it, so old events are processed
        entirely by the old parallelism and new events by the new.
        """
        report = self._new_report()
        self._on_complete = on_complete
        self._stage_enactment(new_plan, rescale)
        self._logic_updates = dict(logic_updates or {})
        for task_name in self._logic_updates:
            if task_name not in self.runtime.dataflow:
                raise KeyError(f"logic update references unknown task {task_name!r}")

        # Pause the sources so the PREPARE wave is the last thing behind the
        # in-flight data, then give in-transit source emissions a moment to
        # land in the entry queues before emitting the wave.
        self.runtime.pause_sources()
        report.sources_paused_at = self.runtime.sim.now
        self.runtime.sim.schedule(self.runtime.timing.quiesce_delay_s, self._start_drain)
        return report

    # ------------------------------------------------------------- internals
    def _start_drain(self) -> None:
        report = self.report
        assert report is not None
        report.drain_started_at = self.runtime.sim.now
        checkpoint_id = self.runtime.checkpoints.new_checkpoint_id()
        report.checkpoint_id = checkpoint_id
        self.runtime.checkpoints.start_wave(
            CheckpointAction.PREPARE,
            checkpoint_id,
            self.prepare_mode,
            on_complete=self._after_prepare,
        )

    def _after_prepare(self, wave: CheckpointWave) -> None:
        report = self.report
        assert report is not None
        report.prepare_completed_at = self.runtime.sim.now
        # COMMIT always sweeps sequentially through the dataflow so it is
        # guaranteed to be behind any remaining in-flight user events.
        self.runtime.checkpoints.start_wave(
            CheckpointAction.COMMIT,
            wave.checkpoint_id,
            WaveMode.SEQUENTIAL,
            on_complete=self._after_commit,
        )

    def _after_commit(self, wave: CheckpointWave) -> None:
        report = self.report
        assert report is not None
        report.commit_completed_at = self.runtime.sim.now
        # Safe point for a parallelism change: the dataflow is drained (DCR)
        # or captured (CCR) and the freshest state was just persisted, so the
        # checkpoints can be re-keyed to the new instance set before the
        # rebalance deploys it.  The redistribution's modelled store latency
        # gates the rebalance -- moving a lot of grouped state is not free.
        store_latency_s = self._enact_rescale()
        if store_latency_s > 0:
            self.runtime.sim.schedule(store_latency_s, self._start_rebalance)
        else:
            self._start_rebalance()

    def _start_rebalance(self) -> None:
        report = self.report
        assert report is not None
        new_plan = self._resolve_plan()
        report.rebalance_started_at = self.runtime.sim.now
        record = self.runtime.rebalance(new_plan, on_command_complete=self._after_rebalance_command)
        report.rebalance_record = record

    def _after_rebalance_command(self, record: RebalanceRecord) -> None:
        report = self.report
        assert report is not None
        report.rebalance_command_completed_at = self.runtime.sim.now
        self.runtime.checkpoints.start_wave(
            CheckpointAction.INIT,
            report.checkpoint_id,
            self.init_mode,
            on_complete=self._after_init,
            resend_interval_s=self.init_resend_interval_s,
        )

    def _after_init(self, wave: CheckpointWave) -> None:
        report = self.report
        assert report is not None
        report.init_completed_at = self.runtime.sim.now
        self._apply_logic_updates()
        self.runtime.unpause_sources()
        report.sources_unpaused_at = self.runtime.sim.now
        self._finish()

    def _apply_logic_updates(self) -> None:
        """Install replacement user logic on every instance of the updated tasks."""
        updates = getattr(self, "_logic_updates", None)
        if not updates:
            return
        for task_name, logic in updates.items():
            task = self.runtime.dataflow.task(task_name)
            task.logic = logic
            if self.report is not None:
                self.report.notes[f"logic_updated:{task_name}"] = self.runtime.sim.now
