"""The paper's §4 performance metrics, computed from a run's event log.

All seven metrics are derived from the :class:`~repro.metrics.log.EventLog`
and the strategy's :class:`~repro.core.strategy.MigrationReport`:

1. **Restore duration** -- migration request until the first message seen at a
   sink once the rebalanced dataflow produces output again.
2. **Drain/Capture duration** -- request until the rebalance command is
   issued (DCR/CCR only; 0 for DSM).
3. **Rebalance duration** -- duration of the rebalance command itself.
4. **Catchup time** -- request until the last *old* message (emitted before
   the request) is seen at a sink after the migration (DSM and CCR).
5. **Recovery time** -- request until the last *replayed* message is seen at a
   sink (DSM only; DCR/CCR lose no messages).
6. **Rate stabilization time** -- request until the output rate stays within
   20 % of the expected stable rate for 60 s.
7. **Message loss / recovery count** -- number of messages that failed and
   were replayed because of the migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.strategy import MigrationReport
from repro.metrics.log import EventLog
from repro.metrics.timeline import stabilization_time


@dataclass
class MigrationMetrics:
    """The seven §4 metrics for one migration run."""

    strategy: str
    dataflow: str
    scenario: str
    restore_duration_s: Optional[float]
    drain_capture_duration_s: float
    rebalance_duration_s: Optional[float]
    catchup_time_s: Optional[float]
    recovery_time_s: Optional[float]
    stabilization_time_s: Optional[float]
    replayed_message_count: int
    messages_lost_in_kills: int

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (used by the benchmark harness to print table rows)."""
        return {
            "strategy": self.strategy,
            "dataflow": self.dataflow,
            "scenario": self.scenario,
            "restore_s": self.restore_duration_s,
            "drain_capture_s": self.drain_capture_duration_s,
            "rebalance_s": self.rebalance_duration_s,
            "catchup_s": self.catchup_time_s,
            "recovery_s": self.recovery_time_s,
            "stabilization_s": self.stabilization_time_s,
            "replayed_messages": self.replayed_message_count,
            "lost_in_kills": self.messages_lost_in_kills,
        }


def compute_migration_metrics(
    log: EventLog,
    report: MigrationReport,
    expected_output_rate: float,
    dataflow_name: str = "",
    scenario: str = "",
    end_time: Optional[float] = None,
    stabilization_tolerance: float = 0.2,
    stabilization_window_s: float = 60.0,
) -> MigrationMetrics:
    """Compute the §4 metrics for one migration run.

    ``expected_output_rate`` is the steady-state sink event rate of the
    dataflow (e.g. 32 ev/s for Grid), used by the stabilization detector.
    """
    requested_at = report.requested_at

    # The output gap starts when the rebalance kills executors; it ends with
    # the first sink receipt after the rebalance command has completed (before
    # that, only events already in transit to the sink can arrive).
    threshold = report.rebalance_command_completed_at
    if threshold is None:
        threshold = report.rebalance_started_at if report.rebalance_started_at is not None else requested_at

    first_after = log.first_receipt_after(threshold)
    restore = first_after.time - requested_at if first_after is not None else None

    drain_capture = report.drain_capture_duration_s or 0.0
    if report.strategy == "dsm":
        drain_capture = 0.0

    rebalance = report.rebalance_duration_s
    if rebalance is None and report.rebalance_record is not None:
        rebalance = report.rebalance_record.command_duration_s

    last_old = log.last_old_receipt(requested_at)
    catchup: Optional[float] = None
    if last_old is not None and last_old.time >= threshold:
        catchup = last_old.time - requested_at

    last_replay = log.last_replay_receipt(requested_at)
    recovery = last_replay.time - requested_at if last_replay is not None else None

    stabilization = stabilization_time(
        log,
        expected_rate=expected_output_rate,
        after=requested_at,
        tolerance=stabilization_tolerance,
        window_s=stabilization_window_s,
        end=end_time,
    )

    replay_count = sum(1 for emit in log.source_emits if emit.replay_count > 0 and emit.time >= requested_at)
    # Captured pending events (CCR) are persisted before the kill, so only the
    # queued events lost with killed executors count as in-flight loss.
    lost = sum(k.queued_events_lost for k in log.kills if k.time >= requested_at)

    return MigrationMetrics(
        strategy=report.strategy,
        dataflow=dataflow_name,
        scenario=scenario,
        restore_duration_s=restore,
        drain_capture_duration_s=drain_capture,
        rebalance_duration_s=rebalance,
        catchup_time_s=catchup,
        recovery_time_s=recovery,
        stabilization_time_s=stabilization,
        replayed_message_count=replay_count,
        messages_lost_in_kills=lost,
    )
