"""Closed-loop elasticity: monitor, allocation planner and autoscaling controller.

The paper motivates DSM/DCR/CCR with input-rate dynamism -- latency-sensitive
dataflows that must scale in or out as traffic changes -- but scopes the
*decision* of when and where to scale out of the migration problem.  This
package supplies that missing loop for the reproduction:

* :class:`~repro.elastic.monitor.ElasticityMonitor` samples the observed
  source rate, executor queue backlogs and sink latency from the event log;
* :class:`~repro.elastic.planner.AllocationPlanner` applies the paper's
  one-instance-per-8-ev/s rule and Table-1 style D1/D2/D3 packing to pick a
  target allocation tier for the observed rate;
* :class:`~repro.elastic.controller.ElasticityController` debounces the
  signal (hysteresis + cooldown), provisions the target VMs, computes the new
  placement with the existing scheduler, enacts it with any registered
  :class:`~repro.core.strategy.MigrationStrategy`, and deprovisions the
  vacated VMs so scale-in actually reduces the bill.

:func:`repro.experiments.elastic.run_elastic_experiment` assembles the whole
loop for one run; the ``repro elastic`` CLI subcommand drives it.
"""

from repro.elastic.controller import ControllerConfig, ElasticityController, ScalingAction
from repro.elastic.monitor import ElasticityMonitor, MonitorSample
from repro.elastic.planner import (
    TIER_ORDER,
    AllocationPlanner,
    TargetAllocation,
    plan_user_tasks_on,
)

__all__ = [
    "AllocationPlanner",
    "ControllerConfig",
    "ElasticityController",
    "ElasticityMonitor",
    "MonitorSample",
    "ScalingAction",
    "TargetAllocation",
    "TIER_ORDER",
    "plan_user_tasks_on",
]
