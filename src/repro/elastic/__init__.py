"""Closed-loop elasticity: the staged, predictive, SLO-aware control plane.

The paper motivates DSM/DCR/CCR with input-rate dynamism -- latency-sensitive
dataflows that must scale in or out as traffic changes -- but scopes the
*decision* of when and where to scale out of the migration problem.  This
package supplies that missing loop as an explicit pipeline of pluggable
stages (``sense -> forecast -> plan -> place -> act``):

* :class:`~repro.elastic.monitor.ElasticityMonitor` (**sense**) samples the
  observed source rate, executor queue backlogs and sink latency from the
  event log, measures per-task runtime service rates, and tracks the
  sink-latency SLO signal;
* :mod:`repro.elastic.forecast` (**forecast**) predicts the offered rate a
  provisioning horizon ahead: :class:`~repro.elastic.forecast.ReactivePolicy`
  (the identity forecast -- the original behaviour),
  :class:`~repro.elastic.forecast.EwmaPolicy`,
  :class:`~repro.elastic.forecast.HoltWintersPolicy` and the oracle
  :class:`~repro.elastic.forecast.ProfileLookaheadPolicy`;
* :class:`~repro.elastic.planner.AllocationPlanner` (**plan**) applies the
  paper's one-instance-per-8-ev/s rule and Table-1 style D1/D2/D3 packing to
  the *forecast* demand, with an SLO-breach override that scales out on a
  sustained latency breach even when the rate alone is in band;
* :mod:`repro.elastic.policy` (**place**) turns the target into a fleet and
  a placement: :class:`~repro.elastic.policy.FullReplacePlacement` (the
  paper's re-fleet) or :class:`~repro.elastic.policy.IncrementalPlacement`
  (keep unchanged instances, place only the delta);
* :class:`~repro.elastic.controller.ElasticityController` (**act**) is a
  thin driver: it debounces the pipeline's decisions (hysteresis + cooldown
  + drain guard), provisions what the place stage requests, enacts the
  migration with any registered
  :class:`~repro.core.strategy.MigrationStrategy`, and deprovisions the
  vacated VMs so scale-in actually reduces the bill.

:func:`repro.experiments.elastic.run_elastic_experiment` assembles the whole
loop for one run; :func:`repro.experiments.predictive.run_predictive_experiment`
compares the forecast policies head to head; the ``repro elastic`` and
``repro predict`` CLI subcommands drive them.
"""

from repro.elastic.controller import (
    ControllerConfig,
    ElasticityController,
    EvacuationRecord,
    RecoveryRecord,
    ScalingAction,
)
from repro.elastic.forecast import (
    FORECAST_POLICIES,
    EwmaPolicy,
    ForecastPolicy,
    HoltWintersPolicy,
    ProfileLookaheadPolicy,
    ReactivePolicy,
    forecast_policy_by_name,
)
from repro.elastic.monitor import ElasticityMonitor, MonitorSample
from repro.elastic.planner import (
    TIER_ORDER,
    AllocationPlanner,
    CostPlan,
    FleetOption,
    TargetAllocation,
    cost_optimal_fleet,
    plan_user_tasks_on,
)
from repro.elastic.policy import (
    PLACEMENT_POLICIES,
    ControlPipeline,
    DemandForecast,
    FullReplacePlacement,
    IncrementalPlacement,
    PlacementPolicy,
    PlanDecision,
    PlanStage,
    ProvisioningRequest,
    SenseReading,
    SenseStage,
    placement_policy_by_name,
)

__all__ = [
    "AllocationPlanner",
    "ControlPipeline",
    "ControllerConfig",
    "CostPlan",
    "DemandForecast",
    "ElasticityController",
    "ElasticityMonitor",
    "EvacuationRecord",
    "EwmaPolicy",
    "FleetOption",
    "FORECAST_POLICIES",
    "ForecastPolicy",
    "FullReplacePlacement",
    "HoltWintersPolicy",
    "IncrementalPlacement",
    "MonitorSample",
    "PLACEMENT_POLICIES",
    "PlacementPolicy",
    "PlanDecision",
    "PlanStage",
    "ProfileLookaheadPolicy",
    "ProvisioningRequest",
    "ReactivePolicy",
    "RecoveryRecord",
    "ScalingAction",
    "SenseReading",
    "SenseStage",
    "TargetAllocation",
    "TIER_ORDER",
    "cost_optimal_fleet",
    "forecast_policy_by_name",
    "placement_policy_by_name",
    "plan_user_tasks_on",
]
