"""Periodic sampling of the signals the elastic control loop acts on.

The monitor plays the role of the metrics pipeline a production DSPS would
run next to the dataflow: every sampling interval it reads the run's event
log (source emissions, sink receipts) and the live executors (queue
backlogs, source backlogs, pause state) and appends a
:class:`MonitorSample`.  The controller consumes the samples to decide when
the current VM allocation no longer fits the observed input rate; the
experiment harness keeps them as the run's timeline.

Sampling is incremental: the event log is append-only and time-ordered, so
the monitor remembers how far it has read and never rescans the whole log
(sampling stays O(new events) even on very long runs).

Two *sense*-stage signals for the predictive control plane live here too:

* :meth:`ElasticityMonitor.measured_capacities_ev_s` -- per-task runtime
  service rates (events completed per second of busy time), measured from
  the live executors.  Feeding these back into the
  :class:`~repro.elastic.planner.AllocationPlanner` closes the
  heterogeneous-latency loop: a task whose real service rate differs from
  its declared (or defaulted) ``capacity_ev_s`` is sized by what it actually
  does;
* :meth:`ElasticityMonitor.slo_violation_seconds` -- how much of the run the
  mean sink latency spent above a latency SLO, the headline metric of the
  predictive-vs-reactive comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engine.runtime import TopologyRuntime


@dataclass(frozen=True)
class MonitorSample:
    """One observation of the running dataflow."""

    #: Simulated time of the sample.
    time: float
    #: Source emission rate (ev/s) over the interval since the previous sample,
    #: including backlog drains and replays -- what the wire actually carried.
    input_rate: float
    #: Rate at which the sources *generated* events over the interval (ev/s):
    #: emissions corrected by the source-backlog delta.  A post-migration
    #: backlog drain inflates ``input_rate`` far above the offered load, and a
    #: paused source deflates it to zero; ``offered_rate`` is steady through
    #: both, which is what scaling decisions should track.
    offered_rate: float
    #: Sink receipt rate (ev/s) over the same interval.
    output_rate: float
    #: Mean end-to-end latency of the sink receipts in the interval (None if
    #: no events reached a sink).
    avg_latency_s: Optional[float]
    #: Events waiting in user-executor input queues (processing backlog).
    queue_backlog: int
    #: Generated-but-unemitted events held inside the sources.
    source_backlog: int
    #: Whether every source was paused when the sample was taken (mid-protocol
    #: samples carry a 0 input rate that must not be mistaken for low traffic).
    sources_paused: bool


class ElasticityMonitor:
    """Samples source rate, executor backlogs and sink latency periodically."""

    def __init__(self, runtime: TopologyRuntime, interval_s: float = 10.0) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.runtime = runtime
        self.interval_s = interval_s
        self.samples: List[MonitorSample] = []
        self._timer = None
        self._emit_index = 0
        self._receipt_index = 0
        self._last_sample_time = runtime.sim.now
        self._last_source_backlog = 0

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start standalone periodic sampling (controllers usually drive
        :meth:`sample_now` themselves instead)."""
        if self._timer is None:
            self._last_sample_time = self.runtime.sim.now
            self._timer = self.runtime.sim.every(self.interval_s, self.sample_now)

    def stop(self) -> None:
        """Stop periodic sampling."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -------------------------------------------------------------- sampling
    def sample_now(self) -> MonitorSample:
        """Take one sample covering the interval since the previous sample."""
        runtime = self.runtime
        now = runtime.sim.now
        interval = now - self._last_sample_time
        if interval <= 0:
            interval = self.interval_s

        emits = runtime.log.source_emits
        receipts = runtime.log.sink_receipts
        new_emits = len(emits) - self._emit_index
        new_receipts = receipts[self._receipt_index:]
        self._emit_index = len(emits)
        self._receipt_index = len(receipts)
        self._last_sample_time = now

        avg_latency: Optional[float] = None
        if new_receipts:
            avg_latency = sum(r.latency_s for r in new_receipts) / len(new_receipts)

        source_backlog = sum(s.backlog_size for s in runtime.source_executors)
        # Events generated in the interval = events emitted + backlog growth
        # (negative growth while a backlog drains: those emissions were
        # generated in an earlier interval, not fresh load).
        generated = new_emits + (source_backlog - self._last_source_backlog)
        self._last_source_backlog = source_backlog

        sample = MonitorSample(
            time=now,
            input_rate=new_emits / interval,
            offered_rate=max(0.0, generated / interval),
            output_rate=len(new_receipts) / interval,
            avg_latency_s=avg_latency,
            queue_backlog=sum(e.queue_length for e in runtime.user_executors),
            source_backlog=source_backlog,
            sources_paused=runtime.sources_paused,
        )
        self.samples.append(sample)
        return sample

    # --------------------------------------------------------------- queries
    @property
    def latest(self) -> Optional[MonitorSample]:
        """The most recent sample, if any."""
        return self.samples[-1] if self.samples else None

    def recent_input_rate(self, samples: int = 3) -> Optional[float]:
        """Mean input rate over the last ``samples`` unpaused samples."""
        considered = [s.input_rate for s in self.samples[-samples:] if not s.sources_paused]
        if not considered:
            return None
        return sum(considered) / len(considered)

    def measured_capacities_ev_s(self) -> Dict[str, float]:
        """Per-task measured service rates (ev/s per busy instance).

        Aggregates every live user executor's cumulative ``processed_count``
        against its cumulative busy time, so the rate reflects what the task
        *actually* sustains at runtime rather than what was declared.  Tasks
        that have not completed any work yet are omitted (the planner keeps
        its declared/default capacity for them).
        """
        processed: Dict[str, int] = {}
        busy: Dict[str, float] = {}
        for executor in self.runtime.user_executors:
            task_name = executor.task.name
            processed[task_name] = processed.get(task_name, 0) + executor.processed_count
            busy[task_name] = busy.get(task_name, 0.0) + executor.busy_time_s
        return {
            task_name: processed[task_name] / busy[task_name]
            for task_name in processed
            if processed[task_name] > 0 and busy[task_name] > 0.0
        }

    def slo_violation_seconds(self, slo_latency_s: float) -> float:
        """Seconds of the sampled run whose mean sink latency exceeded the SLO.

        Each sample covers the interval since its predecessor; intervals whose
        mean end-to-end latency was above ``slo_latency_s`` count in full.
        Intervals in which nothing reached a sink count as violations only
        when events were visibly stuck (a non-empty backlog with no output is
        an outage, not idleness).
        """
        if slo_latency_s <= 0:
            raise ValueError(f"slo_latency_s must be positive, got {slo_latency_s}")
        violation = 0.0
        previous_time: Optional[float] = None
        for sample in self.samples:
            interval = self.interval_s if previous_time is None else sample.time - previous_time
            previous_time = sample.time
            if sample.avg_latency_s is not None:
                breached = sample.avg_latency_s > slo_latency_s
            else:
                breached = sample.output_rate == 0.0 and (
                    sample.queue_backlog > 0 or sample.source_backlog > 0
                )
            if breached:
                violation += interval
        return violation
