"""The staged control-plane pipeline: ``sense -> forecast -> plan -> place``.

The original :class:`~repro.elastic.controller.ElasticityController` decided
everything inside one ``_tick``: sample the monitor, ask the planner, act.
This module breaks that decision path into four pluggable stages, each behind
a small interface, so policies can be swapped without touching the actuation
machinery (hysteresis, cooldown, provisioning, migration, arbitration):

* **sense** (:class:`SenseStage`) -- takes the monitor sample, measures
  per-task runtime service rates (the heterogeneous-latency feedback loop)
  and evaluates the sink-latency SLO signal;
* **forecast** (:class:`ForecastStage`) -- feeds the offered rate to a
  :class:`~repro.elastic.forecast.ForecastPolicy` and asks for the demand a
  provisioning horizon ahead;
* **plan** (:class:`PlanStage`) -- sizes capacity from the *forecast* demand
  via the :class:`~repro.elastic.planner.AllocationPlanner`, then applies the
  **SLO-breach override**: a sustained latency breach escalates to a
  capacity-adding target even when the input rate alone is in band (the
  overload-aware trigger the paper's latency-SLO motivation calls for);
* **place** (:class:`PlacementPolicy`) -- turns a target allocation into a
  provisioning request and a placement plan.  :class:`FullReplacePlacement`
  reproduces the original behaviour (provision the whole target fleet, move
  every user task onto it); :class:`IncrementalPlacement` keeps unchanged
  task instances on their current VMs and provisions/places only the delta,
  shrinking the forced-restart set and the migration's backlog window -- and,
  on a shared fleet, lets a consolidating tenant re-use partially-free VMs
  instead of provisioning a fresh private fleet.

:class:`ControlPipeline` wires the stages together;
:meth:`ControlPipeline.from_config` builds the default assembly from a
:class:`~repro.elastic.controller.ControllerConfig`.  With the defaults
(reactive forecast, no SLO, full-replace placement) the pipeline is
bit-identical to the pre-refactor controller.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.cluster.placement import PlacementPlan, incremental_plan
from repro.cluster.vm import VM_TYPES
from repro.elastic.forecast import ForecastPolicy, forecast_policy_by_name
from repro.elastic.monitor import ElasticityMonitor, MonitorSample
from repro.elastic.planner import AllocationPlanner, TargetAllocation, plan_user_tasks_on
from repro.engine.runtime import TopologyRuntime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.elastic.controller import ControllerConfig


# ------------------------------------------------------------------- sense
@dataclass(frozen=True)
class SenseReading:
    """Everything one control tick observes about the running dataflow."""

    sample: MonitorSample
    #: Per-task measured service rates (ev/s per busy instance); empty unless
    #: capacity feedback is enabled.
    measured_capacities_ev_s: Mapping[str, float]
    #: The configured sink-latency SLO (None = no SLO tracking).
    slo_latency_s: Optional[float]
    #: Whether this sample's mean sink latency breached the SLO.
    slo_breached: bool


class SenseStage:
    """Samples the monitor and derives the control signals from it."""

    def __init__(
        self,
        monitor: ElasticityMonitor,
        slo_latency_s: Optional[float] = None,
        measure_capacity: bool = False,
    ) -> None:
        self.monitor = monitor
        self.slo_latency_s = slo_latency_s
        self.measure_capacity = measure_capacity

    def sense(self) -> SenseReading:
        """Take one monitor sample and evaluate the derived signals."""
        sample = self.monitor.sample_now()
        measured: Mapping[str, float] = {}
        if self.measure_capacity:
            measured = self.monitor.measured_capacities_ev_s()
        breached = (
            self.slo_latency_s is not None
            and sample.avg_latency_s is not None
            and sample.avg_latency_s > self.slo_latency_s
        )
        return SenseReading(
            sample=sample,
            measured_capacities_ev_s=measured,
            slo_latency_s=self.slo_latency_s,
            slo_breached=breached,
        )


# ---------------------------------------------------------------- forecast
@dataclass(frozen=True)
class DemandForecast:
    """The forecast stage's output for one tick."""

    #: Predicted offered rate at ``now + horizon`` (what the planner sizes for).
    rate_ev_s: float
    horizon_s: float
    #: The raw offered rate of the sample behind the forecast.
    observed_rate_ev_s: float


class ForecastStage:
    """Feeds observations to a forecast policy and queries it per tick."""

    def __init__(self, policy: ForecastPolicy, horizon_s: float, deadband_fraction: float = 0.05) -> None:
        if horizon_s < 0:
            raise ValueError(f"horizon_s must be non-negative, got {horizon_s}")
        if deadband_fraction < 0:
            raise ValueError(f"deadband_fraction must be non-negative, got {deadband_fraction}")
        self.policy = policy
        self.horizon_s = horizon_s
        self.deadband_fraction = deadband_fraction

    def observe(self, reading: SenseReading) -> None:
        """Record one reading (paused samples carry a steady offered rate)."""
        self.policy.observe(reading.sample.time, reading.sample.offered_rate)

    def forecast(self, reading: SenseReading) -> DemandForecast:
        """The demand to plan for, a provisioning horizon ahead of now.

        Forecasts within ``deadband_fraction`` of the observed rate snap to
        the observed rate: the 1-per-capacity sizing rule ceils every task's
        instance count, so at exactly 100% utilization a +0.5% forecast
        excursion (smoothing noise, a residual trend) would add an instance
        to *every* task and read as a tier's worth of pressure.  Real surges
        are well outside the band; noise is not.
        """
        rate = self.policy.forecast(reading.sample.time, self.horizon_s)
        observed = reading.sample.offered_rate
        if observed > 0 and abs(rate - observed) <= self.deadband_fraction * observed:
            rate = observed
        return DemandForecast(
            rate_ev_s=rate,
            horizon_s=self.horizon_s,
            observed_rate_ev_s=observed,
        )


# -------------------------------------------------------------------- plan
@dataclass(frozen=True)
class PlanDecision:
    """The plan stage's output: a target allocation plus its provenance."""

    target: TargetAllocation
    forecast: DemandForecast
    #: Whether the SLO-breach override escalated an in-band plan.
    slo_escalated: bool = False


class PlanStage:
    """Sizes capacity from the forecast demand, with an SLO-breach override."""

    def __init__(
        self,
        planner: AllocationPlanner,
        slo_confirm_samples: int = 2,
        slo_headroom: float = 1.5,
    ) -> None:
        if slo_confirm_samples < 1:
            raise ValueError("slo_confirm_samples must be at least 1")
        if slo_headroom <= 1.0:
            raise ValueError("slo_headroom must be above 1 (it buys extra capacity)")
        self.planner = planner
        self.slo_confirm_samples = slo_confirm_samples
        self.slo_headroom = slo_headroom
        self._breach_streak = 0
        self._previous_backlog: Optional[int] = None

    @property
    def breach_streak(self) -> int:
        """Consecutive SLO-breaching samples seen so far."""
        return self._breach_streak

    def plan(self, reading: SenseReading, forecast: DemandForecast, current_tier: str) -> PlanDecision:
        """Pick the target allocation for one tick.

        The planner is asked for the *forecast* demand; when measured
        capacities are available they are fed back first, so heterogeneous
        (and drifting) task service rates size the plan instead of the
        declared defaults.  A latency-SLO breach sustained for
        ``slo_confirm_samples`` ticks escalates an in-band plan to
        ``max(forecast, observed) * slo_headroom``: overload shows up in the
        sink latency long before the input rate leaves the band (slow tasks,
        mis-declared capacities), and waiting for the rate trigger would let
        the backlog compound.
        """
        if reading.measured_capacities_ev_s:
            self.planner.set_measured_capacities(reading.measured_capacities_ev_s)
        target = self.planner.plan(forecast.rate_ev_s, current_tier=current_tier)

        # A breach only counts toward the override while the backlog is not
        # draining: a post-migration drain also shows SLO-breaching latencies
        # (old queued events finally reaching the sinks), but its backlog is
        # shrinking -- capacity is adequate and another migration would only
        # interrupt the recovery.  A *plateaued* backlog with breaching
        # latency, by contrast, is a saturated deployment (service exactly
        # keeping pace with arrivals, never absorbing the excess) and must
        # still escalate.
        backlog = reading.sample.queue_backlog + reading.sample.source_backlog
        draining = self._previous_backlog is not None and backlog < self._previous_backlog
        self._previous_backlog = backlog
        if reading.slo_breached and not draining:
            self._breach_streak += 1
        else:
            self._breach_streak = 0
        slo_escalated = False
        needs_nothing = target.tier == current_tier and target.rescale is None
        if needs_nothing and self._breach_streak >= self.slo_confirm_samples:
            demand = max(forecast.rate_ev_s, reading.sample.offered_rate) * self.slo_headroom
            escalated = self.planner.plan(demand, current_tier=current_tier)
            if escalated.tier != current_tier or escalated.rescale is not None:
                target = escalated
                slo_escalated = True
        return PlanDecision(target=target, forecast=forecast, slo_escalated=slo_escalated)


# ------------------------------------------------------------------- place
@dataclass(frozen=True)
class ProvisioningRequest:
    """What the place stage wants acquired (and retained) for a target."""

    #: VM flavour -> count to *provision fresh* for this action.  Slot
    #: accounting lives on :attr:`ScalingAction.provision_slots`, where the
    #: counts end up.
    vm_counts: Dict[str, int]
    #: Existing worker VMs to keep serving through (and after) the migration.
    keep_vm_ids: Tuple[str, ...] = ()


class PlacementPolicy:
    """Base class of the *place* stage: target allocation -> fleet + plan."""

    name = "abstract"

    def provisioning(
        self, runtime: TopologyRuntime, target: TargetAllocation, direction: str
    ) -> ProvisioningRequest:
        """Decide what to provision (and what to keep) for a target.

        ``direction`` is the controller's classification of the action:
        ``"out"`` (adding capacity) or ``"in"`` (consolidating).
        """
        raise NotImplementedError

    def placement_plan(self, runtime: TopologyRuntime, target_vm_ids: List[str]) -> PlacementPlan:
        """Place the (current, post-rescale) executor set on the target VMs."""
        raise NotImplementedError


class FullReplacePlacement(PlacementPolicy):
    """The original behaviour: provision the whole target fleet, move everyone.

    Every user task is scheduled onto the freshly provisioned VMs and every
    previously used worker VM is vacated -- exactly what the pre-pipeline
    controller did, kept as the default so existing runs reproduce bit for
    bit.
    """

    name = "full-replace"

    def provisioning(
        self, runtime: TopologyRuntime, target: TargetAllocation, direction: str
    ) -> ProvisioningRequest:
        return ProvisioningRequest(vm_counts=dict(target.vm_counts))

    def placement_plan(self, runtime: TopologyRuntime, target_vm_ids: List[str]) -> PlacementPlan:
        return plan_user_tasks_on(runtime, target_vm_ids)


class IncrementalPlacement(PlacementPolicy):
    """Rescale-aware placement: keep unchanged instances, place only the delta.

    On a **grow**, the current worker fleet is retained and only the missing
    slots are provisioned in the target tier's flavour; executors whose slot
    still exists on a retained VM keep it, so the rebalance restarts only the
    genuinely new/moved instances (plus rescale survivors, whose keyed state
    forces a restart anyway).  On a **shrink**, with ``reuse_free_slots`` the
    surviving executor set is packed onto a minimal subset of the worker VMs
    it can already reach -- on a shared fleet this is what lets a
    consolidating tenant absorb into partially-free shared VMs instead of
    provisioning a fresh private fleet; without it (or when the existing
    fleet cannot host the target) the shrink falls back to the paper's
    full-replacement re-fleet.

    ``excluded_vms_fn`` optionally supplies VMs that must not be counted or
    placed on (other tenants' util hosts, VMs a neighbour's in-flight
    migration is retiring).
    """

    name = "incremental"

    def __init__(
        self,
        reuse_free_slots: bool = False,
        excluded_vms_fn: Optional[Callable[[], Set[str]]] = None,
    ) -> None:
        self.reuse_free_slots = reuse_free_slots
        self._excluded_vms_fn = excluded_vms_fn

    # ------------------------------------------------------------- internals
    def _excluded(self, runtime: TopologyRuntime) -> Set[str]:
        excluded: Set[str] = set()
        if self._excluded_vms_fn is not None:
            excluded |= self._excluded_vms_fn()
        if runtime.util_vm_id is not None:
            excluded.add(runtime.util_vm_id)
        return excluded

    @staticmethod
    def _capacity_for_us(runtime: TopologyRuntime, vm) -> int:
        """Slots on ``vm`` this runtime could fill: free ones plus its own.

        Slots held by foreign executors (another tenant's) are off limits;
        slots held by this runtime's executors are re-plannable (the
        incremental plan will keep most of them in place).
        """
        ours = runtime.executors
        return sum(
            1 for slot in vm.slots if not slot.occupied or slot.executor_id in ours
        )

    def provisioning(
        self, runtime: TopologyRuntime, target: TargetAllocation, direction: str
    ) -> ProvisioningRequest:
        if runtime.placement is None:
            raise ValueError("runtime must be deployed before planning provisioning")
        excluded = self._excluded(runtime)
        used = runtime.placement.vms_used
        # Cluster insertion order keeps the request deterministic.
        current = [
            vm for vm in runtime.cluster.vms
            if vm.vm_id in used and vm.vm_id not in excluded
        ]
        needed = target.hosted_slots
        growing = direction == "out"

        if not growing and self.reuse_free_slots:
            # Shrink: pack the survivors onto a minimal subset of the worker
            # VMs we can already reach (most-loaded-by-us first, so the
            # consolidation frees whole machines).  Falls back to a fresh
            # fleet when the reachable capacity cannot host the target.
            candidates = [
                vm for vm in runtime.cluster.vms
                if vm.vm_id not in excluded and (vm.vm_id in used or vm.free_slots)
            ]
            ranked = sorted(
                enumerate(candidates),
                key=lambda pair: (-self._capacity_for_us(runtime, pair[1]), pair[0]),
            )
            keep: List[str] = []
            capacity = 0
            for _, vm in ranked:
                if capacity >= needed:
                    break
                vm_capacity = self._capacity_for_us(runtime, vm)
                if vm_capacity <= 0:
                    continue
                keep.append(vm.vm_id)
                capacity += vm_capacity
            if capacity >= needed:
                return ProvisioningRequest(vm_counts={}, keep_vm_ids=tuple(keep))
            return ProvisioningRequest(vm_counts=dict(target.vm_counts))

        if not growing:
            # Shrink without shared-slot reuse: the paper's re-fleet (a fresh,
            # smaller allocation in the consolidation flavour).
            return ProvisioningRequest(vm_counts=dict(target.vm_counts))

        # Grow: keep the whole current worker fleet and provision only the
        # missing slots in the target tier's flavour.
        keep_ids = tuple(vm.vm_id for vm in current)
        capacity = sum(self._capacity_for_us(runtime, vm) for vm in current)
        delta_slots = needed - capacity
        vm_counts: Dict[str, int] = {}
        if delta_slots > 0:
            # The planner emits a single-flavour packing per tier.
            flavour_name = next(iter(target.vm_counts))
            flavour = VM_TYPES[flavour_name]
            vm_counts[flavour_name] = int(math.ceil(delta_slots / flavour.slots))
        return ProvisioningRequest(vm_counts=vm_counts, keep_vm_ids=keep_ids)

    def placement_plan(self, runtime: TopologyRuntime, target_vm_ids: List[str]) -> PlacementPlan:
        if runtime.placement is None:
            raise ValueError("runtime must be deployed before planning a migration")
        user_ids = [e.executor_id for e in runtime.user_executors]
        pinned_plan = PlacementPlan()
        for executor in list(runtime.source_executors) + list(runtime.sink_executors):
            slot_id = runtime.placement.assignments[executor.executor_id]
            pinned_plan.assign(executor.executor_id, slot_id, runtime.placement.slot_to_vm[slot_id])
        return incremental_plan(
            user_ids,
            runtime.cluster,
            old_plan=runtime.placement,
            target_vm_ids=target_vm_ids,
            preplaced=pinned_plan,
        )


#: Registry of the named placement policies ``ControllerConfig.placement`` accepts.
PLACEMENT_POLICIES: Dict[str, Callable[[], PlacementPolicy]] = {
    FullReplacePlacement.name: FullReplacePlacement,
    IncrementalPlacement.name: IncrementalPlacement,
}


def placement_policy_by_name(name: str, **kwargs) -> PlacementPolicy:
    """Construct a registered placement policy by name."""
    try:
        factory = PLACEMENT_POLICIES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown placement policy {name!r}; choose from {sorted(PLACEMENT_POLICIES)}"
        ) from None
    return factory(**kwargs)


# ---------------------------------------------------------------- pipeline
class ControlPipeline:
    """The assembled ``sense -> forecast -> plan -> place`` decision path.

    The controller drives it once per control tick: :meth:`sense`, then
    :meth:`observe` (so every policy sees every sample, including ticks the
    controller skips mid-migration), then -- when a decision is wanted --
    :meth:`decide`.  The *place* stage is consulted at enactment time by the
    controller's capacity acquisition and migration-planning hooks.
    """

    def __init__(
        self,
        sense: SenseStage,
        forecast: ForecastStage,
        plan: PlanStage,
        place: PlacementPolicy,
    ) -> None:
        self.sense_stage = sense
        self.forecast_stage = forecast
        self.plan_stage = plan
        self.place = place

    @classmethod
    def from_config(
        cls,
        monitor: ElasticityMonitor,
        planner: AllocationPlanner,
        config: "ControllerConfig",
        provisioning_latency_s: float = 30.0,
        forecast_policy: Optional[ForecastPolicy] = None,
        placement: Optional[PlacementPolicy] = None,
    ) -> "ControlPipeline":
        """Build the default pipeline for a controller configuration.

        ``forecast_policy`` / ``placement`` instances override the config's
        named choices (the elastic runner passes a profile-bound lookahead
        policy this way; the multi-tenant manager passes an exclusion-aware
        incremental placer).  The default horizon is one provisioning latency
        plus the hysteresis window -- the earliest a confirmed decision can
        turn into ready capacity.
        """
        if forecast_policy is None:
            forecast_policy = forecast_policy_by_name(config.forecast_policy)
        horizon = config.forecast_horizon_s
        if horizon is None:
            horizon = provisioning_latency_s + config.confirm_samples * config.check_interval_s
        if placement is None:
            placement = placement_policy_by_name(config.placement)
        return cls(
            sense=SenseStage(
                monitor,
                slo_latency_s=config.slo_latency_s,
                measure_capacity=config.capacity_feedback,
            ),
            forecast=ForecastStage(
                forecast_policy, horizon, deadband_fraction=config.forecast_deadband
            ),
            plan=PlanStage(
                planner,
                slo_confirm_samples=config.slo_confirm_samples,
                slo_headroom=config.slo_headroom,
            ),
            place=placement,
        )

    # ------------------------------------------------------------- the stages
    def sense(self) -> SenseReading:
        """Stage 1: observe the dataflow."""
        return self.sense_stage.sense()

    def observe(self, reading: SenseReading) -> None:
        """Feed the reading to the forecast policy (every tick, no skips)."""
        self.forecast_stage.observe(reading)

    def decide(self, reading: SenseReading, current_tier: str) -> PlanDecision:
        """Stages 2+3: forecast the demand and size the target allocation."""
        forecast = self.forecast_stage.forecast(reading)
        return self.plan_stage.plan(reading, forecast, current_tier)
