"""Demand forecasters for the predictive control plane.

A :class:`ForecastPolicy` is the *forecast* stage of the elastic control
pipeline (``sense -> forecast -> plan -> place``): it consumes the monitor's
offered-rate samples and predicts the rate ``horizon_s`` seconds ahead, so
the planner can size capacity for the load that will be there *when the new
VMs come up* instead of the load that was there when the sample was taken.

Four policies are provided:

* :class:`ReactivePolicy` -- the identity forecast (predicts the last
  observed rate).  Running the pipeline with it reproduces the original
  threshold-plus-hysteresis controller bit for bit; it is the default.
* :class:`EwmaPolicy` -- exponentially weighted moving average.  Smooths
  burst noise; deliberately *lags* level shifts (the lag is bounded by
  ``(1 - alpha)^n``), so it trades reaction speed for stability.
* :class:`HoltWintersPolicy` -- Holt's double exponential smoothing (level +
  trend), optionally extended with an additive phase-bucketed seasonal
  component (Holt-Winters) for diurnal workloads.  A steady ramp is
  extrapolated ``horizon_s`` ahead, which is what buys provisioning lead
  time on gradual surges.
* :class:`ProfileLookaheadPolicy` -- reads the workload's own
  :class:`~repro.workloads.profiles.RateProfile` at ``now + horizon``.  This
  is the oracle bound: operators with a published schedule (TV events,
  market opens) can front-run the surge exactly.

Policies are deterministic and allocate nothing per observation beyond a few
floats, so they add no noise to same-seed reproducibility.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple, Type

from repro.workloads.profiles import RateProfile


class ForecastPolicy(ABC):
    """Predicts the offered input rate a fixed horizon ahead."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    def observe(self, time_s: float, rate_ev_s: float) -> None:
        """Feed one monitor observation (simulated time, offered ev/s)."""

    @abstractmethod
    def forecast(self, now_s: float, horizon_s: float) -> float:
        """Predicted offered rate at ``now_s + horizon_s`` (ev/s, >= 0)."""

    def describe(self) -> str:
        """Human-readable one-liner for experiment reports."""
        return self.name


class ReactivePolicy(ForecastPolicy):
    """Identity forecast: the future is the last observed sample.

    This is exactly what the pre-pipeline controller planned on, so a
    pipeline built around it reproduces the original reactive behaviour bit
    for bit (the acceptance guarantee of the control-plane refactor).
    """

    name = "reactive"

    def __init__(self) -> None:
        self._last: Optional[float] = None

    def observe(self, time_s: float, rate_ev_s: float) -> None:
        self._last = rate_ev_s

    def forecast(self, now_s: float, horizon_s: float) -> float:
        return self._last if self._last is not None else 0.0


class EwmaPolicy(ForecastPolicy):
    """Exponentially weighted moving average of the offered rate.

    The forecast is the smoothed *level* (EWMA carries no trend, so the
    horizon does not enter).  After ``n`` samples of a new constant rate the
    remaining lag is ``(old - new) * (1 - alpha)^n`` -- the bound the unit
    tests pin down.
    """

    name = "ewma"

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.level: Optional[float] = None

    def observe(self, time_s: float, rate_ev_s: float) -> None:
        if self.level is None:
            self.level = rate_ev_s
        else:
            self.level = self.alpha * rate_ev_s + (1.0 - self.alpha) * self.level

    def forecast(self, now_s: float, horizon_s: float) -> float:
        return max(0.0, self.level) if self.level is not None else 0.0


class HoltWintersPolicy(ForecastPolicy):
    """Holt's linear trend smoothing, optionally with additive seasonality.

    Level and trend are updated per observation; the forecast extrapolates
    ``level + trend * steps`` where ``steps`` is the horizon expressed in
    (smoothed) sampling intervals.  With ``season_period_s`` set, an additive
    phase-bucketed seasonal component (classic Holt-Winters) is maintained.
    The seasonal indices are initialized from the *first full period* (each
    bucket's mean deviation from the cycle mean -- the textbook
    initialization; updating them incrementally from scratch never separates
    season from level, because the level tracks the raw cycle while the
    indices are still zero).  From the second period on, each observation
    smooths its bucket, and the forecast adds the bucket the *target* time
    falls into -- which is what lets a diurnal workload's tomorrow-morning
    ramp be anticipated from yesterday's.
    """

    name = "holt-winters"

    def __init__(
        self,
        alpha: float = 0.5,
        beta: float = 0.3,
        gamma: float = 0.3,
        season_period_s: Optional[float] = None,
        season_buckets: int = 24,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        if not 0.0 <= gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {gamma}")
        if season_period_s is not None and season_period_s <= 0:
            raise ValueError("season_period_s must be positive (or None)")
        if season_buckets < 1:
            raise ValueError("season_buckets must be at least 1")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.season_period_s = season_period_s
        self.season_buckets = season_buckets
        self.level: Optional[float] = None
        self.trend = 0.0
        self._season: List[float] = [0.0] * season_buckets
        self._season_ready = False
        #: First-period observations buffered for the seasonal initialization.
        self._warmup: List[Tuple[float, float]] = []
        self._last_time: Optional[float] = None
        #: Smoothed sampling interval, used to convert the horizon to steps.
        self._dt: Optional[float] = None

    def _bucket(self, time_s: float) -> int:
        phase = (time_s % self.season_period_s) / self.season_period_s
        index = int(phase * self.season_buckets)
        return min(index, self.season_buckets - 1)

    def _init_season(self) -> None:
        """Initialize the seasonal indices from the buffered first period."""
        mean = sum(rate for _, rate in self._warmup) / len(self._warmup)
        totals = [0.0] * self.season_buckets
        counts = [0] * self.season_buckets
        for time_s, rate in self._warmup:
            bucket = self._bucket(time_s)
            totals[bucket] += rate - mean
            counts[bucket] += 1
        self._season = [
            totals[b] / counts[b] if counts[b] else 0.0 for b in range(self.season_buckets)
        ]
        # Re-anchor on the deseasonalized mean: the warm-up level/trend were
        # chasing the raw cycle, not the underlying demand.
        self.level = mean
        self.trend = 0.0
        self._warmup = []
        self._season_ready = True

    def observe(self, time_s: float, rate_ev_s: float) -> None:
        if self._last_time is not None:
            dt = time_s - self._last_time
            if dt > 0:
                self._dt = dt if self._dt is None else 0.3 * dt + 0.7 * self._dt
        self._last_time = time_s

        season = 0.0
        if self.season_period_s is not None:
            if not self._season_ready:
                self._warmup.append((time_s, rate_ev_s))
                if time_s - self._warmup[0][0] >= self.season_period_s - 1e-9:
                    self._init_season()
                    return
            else:
                season = self._season[self._bucket(time_s)]
        if self.level is None:
            self.level = rate_ev_s - season
            return
        previous_level = self.level
        self.level = self.alpha * (rate_ev_s - season) + (1.0 - self.alpha) * (self.level + self.trend)
        self.trend = self.beta * (self.level - previous_level) + (1.0 - self.beta) * self.trend
        if self.season_period_s is not None and self._season_ready:
            bucket = self._bucket(time_s)
            deviation = rate_ev_s - self.level
            self._season[bucket] = self.gamma * deviation + (1.0 - self.gamma) * self._season[bucket]

    def forecast(self, now_s: float, horizon_s: float) -> float:
        if self.level is None:
            return 0.0
        steps = horizon_s / self._dt if self._dt else 0.0
        value = self.level + self.trend * steps
        if self.season_period_s is not None and self._season_ready:
            value += self._season[self._bucket(now_s + horizon_s)]
        return max(0.0, value)


class ProfileLookaheadPolicy(ForecastPolicy):
    """Oracle forecast: read the workload's own rate profile ahead of now.

    Models an operator who *knows* the schedule (a published event calendar,
    a contracted batch window): capacity is provisioned for the rate the
    profile will offer when the horizon elapses.  Exact on step profiles --
    the lookahead-exactness unit test pins this down.
    """

    name = "lookahead"

    def __init__(self, profile: RateProfile) -> None:
        if profile is None:
            raise ValueError("ProfileLookaheadPolicy needs the workload's RateProfile")
        self.profile = profile

    def forecast(self, now_s: float, horizon_s: float) -> float:
        return max(0.0, float(self.profile.rate_at(now_s + horizon_s)))


#: Registry of the named forecast policies ``ControllerConfig.forecast_policy``
#: accepts.  ``lookahead`` is special-cased by :func:`forecast_policy_by_name`
#: because it needs the workload's profile.
FORECAST_POLICIES: Dict[str, Type[ForecastPolicy]] = {
    ReactivePolicy.name: ReactivePolicy,
    EwmaPolicy.name: EwmaPolicy,
    HoltWintersPolicy.name: HoltWintersPolicy,
    ProfileLookaheadPolicy.name: ProfileLookaheadPolicy,
}


def forecast_policy_by_name(
    name: str, profile: Optional[RateProfile] = None, **kwargs
) -> ForecastPolicy:
    """Construct a registered forecast policy by name.

    ``profile`` is required by (and only consumed for) ``lookahead``; other
    keyword arguments are forwarded to the policy constructor.
    """
    try:
        policy_cls = FORECAST_POLICIES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown forecast policy {name!r}; choose from {sorted(FORECAST_POLICIES)}"
        ) from None
    if policy_cls is ProfileLookaheadPolicy:
        if profile is None:
            raise ValueError(
                "the 'lookahead' forecast policy needs the workload's RateProfile; "
                "pass profile= (run_elastic_experiment wires this automatically)"
            )
        return ProfileLookaheadPolicy(profile, **kwargs)
    return policy_cls(**kwargs)
