"""Allocation planning: from an observed input rate to a target VM fleet.

The paper sizes dataflows with a simple rule -- **one task instance per
incremental 8 events/second of input rate** (Table 1) -- and packs the
resulting slots onto Azure D-series VMs: D2s for the default deployment,
D3s when consolidating (scale-in), one-slot D1s when expanding (scale-out,
so per-minute billing tracks the load closely and single-VM failures hurt
less).  The planner applies the same arithmetic to a *measured* rate:

* :meth:`AllocationPlanner.required_instances` re-derives every user task's
  input rate at the observed source rate and applies the 1-per-8 ev/s rule;
* :meth:`AllocationPlanner.plan` compares that requirement against the
  instances actually deployed (the *pressure*) and picks an allocation tier
  -- ``expanded`` / ``baseline`` / ``consolidated`` -- with Table-1 style VM
  packing for the slots that must be hosted.

By default the plan keeps the executor count fixed (the paper scopes
parallelism changes out of the migration problem); elasticity is then about
*which VMs* host the slots, which is exactly what DSM/DCR/CCR enact.  With
``elastic_parallelism=True`` the planner goes beyond the paper's scoping: the
per-task 1-per-``capacity`` arithmetic also yields a
:class:`~repro.dataflow.graph.RescalePlan` of target instance counts, so a
scale-out *adds processing capacity* instead of only spreading the same
slots over more machines.  Per-task service rates (heterogeneous task
latencies) are honoured: an explicit ``task_capacities_ev_s`` mapping wins,
then a task's own ``capacity_ev_s``, then the global Table-1 default.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.cluster.cloud import ON_DEMAND, SPOT, SpotMarket
from repro.cluster.placement import PlacementPlan
from repro.cluster.vm import D1, D2, D3, VMType
from repro.dataflow.graph import Dataflow, RescalePlan, exact_instance_ceiling
from repro.dataflow.task import Task
from repro.engine.runtime import TopologyRuntime

#: Allocation tiers in scale order (index comparisons give the direction).
TIER_ORDER: Dict[str, int] = {"consolidated": 0, "baseline": 1, "expanded": 2}


@dataclass(frozen=True)
class TargetAllocation:
    """The VM fleet a given input rate calls for."""

    #: ``consolidated`` (pack onto D3s), ``baseline`` (D2s) or ``expanded`` (D1s).
    tier: str
    #: Instances the 1-per-8 ev/s rule demands at the observed rate.
    required_instances: int
    #: Slots that must actually be hosted (the deployed executor count).
    hosted_slots: int
    #: ``required_instances / hosted_slots`` -- the load pressure that picked the tier.
    pressure: float
    #: VM flavour name -> count, e.g. ``{"D1": 13}``.
    vm_counts: Dict[str, int] = field(default_factory=dict)
    #: Parallelism changes to enact with the migration (capacity-adding
    #: scaling); ``None`` for the paper's placement-only scaling.
    rescale: Optional[RescalePlan] = None

    @property
    def total_vms(self) -> int:
        """Number of worker VMs in this allocation."""
        return sum(self.vm_counts.values())

    def describe(self) -> str:
        """Human-readable summary, e.g. ``expanded: 13xD1 (pressure 2.77)``."""
        vms = " + ".join(f"{count}x{name}" for name, count in sorted(self.vm_counts.items()))
        return f"{self.tier}: {vms} (pressure {self.pressure:.2f})"


class AllocationPlanner:
    """Turns an observed source rate into a target allocation tier."""

    #: VM flavour used per tier.
    TIER_VM_TYPES: Dict[str, VMType] = {"consolidated": D3, "baseline": D2, "expanded": D1}

    def __init__(
        self,
        dataflow: Dataflow,
        instance_capacity_ev_s: float = 8.0,
        expand_pressure: float = 1.2,
        consolidate_pressure: float = 0.95,
        task_capacities_ev_s: Optional[Mapping[str, float]] = None,
        elastic_parallelism: bool = False,
    ) -> None:
        if instance_capacity_ev_s <= 0:
            raise ValueError("instance_capacity_ev_s must be positive")
        if consolidate_pressure >= expand_pressure:
            raise ValueError(
                "consolidate_pressure must be below expand_pressure "
                f"(got {consolidate_pressure} >= {expand_pressure})"
            )
        self.dataflow = dataflow
        self.instance_capacity_ev_s = instance_capacity_ev_s
        self.expand_pressure = expand_pressure
        self.consolidate_pressure = consolidate_pressure
        #: Runtime-measured per-task service rates, fed back by the control
        #: pipeline's sense stage (empty unless capacity feedback is on).
        self.measured_capacities_ev_s: Dict[str, float] = {}
        self.task_capacities_ev_s: Dict[str, float] = dict(task_capacities_ev_s or {})
        for task_name, capacity in self.task_capacities_ev_s.items():
            if task_name not in dataflow:
                raise ValueError(f"task_capacities_ev_s references unknown task {task_name!r}")
            if capacity <= 0:
                raise ValueError(f"task_capacities_ev_s[{task_name!r}] must be positive")
        self.elastic_parallelism = elastic_parallelism
        #: Steady-state per-task input rates at the declared source rates,
        #: carried as exact rationals (so is the summed source rate) so
        #: instance counts never wobble on float noise.
        self._baseline_rates_exact = dataflow.input_rates_exact()
        self._baseline_source_rate = sum(
            (self._baseline_rates_exact[s.name] for s in dataflow.sources), Fraction(0)
        )
        if self._baseline_source_rate <= 0:
            raise ValueError("dataflow sources must declare a positive rate")

    # ------------------------------------------------------------------ rules
    def set_measured_capacities(self, measured: Mapping[str, float]) -> None:
        """Feed runtime-measured per-task service rates into sizing.

        Called by the control pipeline's sense stage when capacity feedback
        is enabled; unknown task names and non-positive rates are ignored (a
        task that has not processed anything yet keeps its declared value).
        """
        for task_name, rate in measured.items():
            if rate > 0 and task_name in self.dataflow:
                self.measured_capacities_ev_s[task_name] = rate

    def capacity_for(self, task: Task) -> float:
        """Per-instance service capacity (ev/s) used to size ``task``.

        Resolution order: an explicit ``task_capacities_ev_s`` entry, the
        runtime-measured rate (when capacity feedback filled it in), the
        task's own ``capacity_ev_s`` declaration, then the planner's global
        default (the paper's Table-1 value of 8 ev/s).
        """
        explicit = self.task_capacities_ev_s.get(task.name)
        if explicit is not None:
            return explicit
        measured = self.measured_capacities_ev_s.get(task.name)
        if measured is not None:
            return measured
        if task.capacity_ev_s is not None:
            return task.capacity_ev_s
        return self.instance_capacity_ev_s

    def required_instances_by_task(self, observed_rate_ev_s: float) -> Dict[str, int]:
        """Per-task instance demand at the observed rate (1-per-capacity rule).

        Every user task's steady-state input rate is scaled by
        ``observed / baseline`` source rate; each task needs
        ``ceil(rate / capacity)`` instances (exact rational ceiling), at
        least one.
        """
        scale = Fraction(max(0.0, observed_rate_ev_s)) / self._baseline_source_rate
        required: Dict[str, int] = {}
        for task in self.dataflow.user_tasks:
            task_rate = self._baseline_rates_exact[task.name] * scale
            required[task.name] = max(1, exact_instance_ceiling(task_rate, self.capacity_for(task)))
        return required

    def required_instances(self, observed_rate_ev_s: float) -> int:
        """Total instances the 1-per-capacity rule demands at the observed rate."""
        return sum(self.required_instances_by_task(observed_rate_ev_s).values())

    def rescale_plan(self, observed_rate_ev_s: float) -> Optional[RescalePlan]:
        """Parallelism changes needed to serve the observed rate, if any.

        Returns ``None`` when every task's deployed instance count already
        matches the demand.
        """
        return self._rescale_from(self.required_instances_by_task(observed_rate_ev_s))

    def _rescale_from(self, required_by_task: Dict[str, int]) -> Optional[RescalePlan]:
        targets = {
            name: count
            for name, count in required_by_task.items()
            if self.dataflow.task(name).parallelism != count
        }
        if not targets:
            return None
        return RescalePlan(targets=targets)

    def plan(self, observed_rate_ev_s: float, current_tier: Optional[str] = None) -> TargetAllocation:
        """Pick the allocation tier and VM packing for an observed rate.

        With ``elastic_parallelism`` enabled the allocation also carries the
        :class:`RescalePlan` matching the demand whenever the pressure is
        out of band -- including when the tier *label* does not change (a
        second surge on an already-expanded deployment still adds capacity)
        -- VM counts are sized for the *post-rescale* slot demand, and an
        in-band pressure keeps ``current_tier`` (the deployed parallelism
        already fits; there is nothing to enact).  Without it the behaviour
        is exactly the paper's placement-only scaling.
        """
        required_by_task = self.required_instances_by_task(observed_rate_ev_s)
        required = sum(required_by_task.values())
        hosted = self.dataflow.total_instances()
        pressure = required / hosted if hosted else 0.0
        out_of_band = pressure >= self.expand_pressure or pressure <= self.consolidate_pressure
        if pressure >= self.expand_pressure:
            tier = "expanded"
        elif pressure <= self.consolidate_pressure:
            tier = "consolidated"
        elif self.elastic_parallelism and current_tier in TIER_ORDER:
            # Parallelism tracks demand, so an in-band pressure means the
            # current deployment is correctly sized -- stay put rather than
            # bouncing back to the "baseline" label after every rescale.
            tier = current_tier
        else:
            tier = "baseline"
        rescale: Optional[RescalePlan] = None
        hosted_target = hosted
        if self.elastic_parallelism and (tier != current_tier or out_of_band):
            rescale = self._rescale_from(required_by_task)
            hosted_target = required
        vm_type = self.TIER_VM_TYPES[tier]
        vm_counts = {vm_type.name: int(math.ceil(hosted_target / vm_type.slots))}
        return TargetAllocation(
            tier=tier,
            required_instances=required,
            hosted_slots=hosted_target,
            pressure=pressure,
            vm_counts=vm_counts,
            rescale=rescale,
        )

    def cost_plan(
        self,
        observed_rate_ev_s: float,
        horizon_s: float,
        billing_granularity_s: float = 60.0,
        spot: Optional[SpotMarket] = None,
        **kwargs,
    ) -> "CostPlan":
        """Cost-optimal fleet for the observed rate over a billing horizon.

        Sizes the slot demand with the 1-per-capacity rule, then searches
        the full flavour × market space (see :func:`cost_optimal_fleet`) —
        the cost-aware alternative to the single-flavour tier packing of
        :meth:`plan`.
        """
        required = self.required_instances(observed_rate_ev_s)
        return cost_optimal_fleet(
            required, horizon_s, billing_granularity_s, spot, **kwargs
        )


# --------------------------------------------------------------------- cost
@dataclass(frozen=True)
class FleetOption:
    """One homogeneous group of a cost plan: ``count`` VMs of a flavour/market."""

    flavour: str
    market: str
    count: int


@dataclass(frozen=True)
class CostPlan:
    """The cheapest fleet found for a slot demand over a billing horizon."""

    slots_needed: int
    horizon_s: float
    choices: Tuple[FleetOption, ...]
    #: Expected cost over the horizon including spot eviction-risk penalties.
    expected_cost: float
    #: Pure billing cost (no risk penalty).
    nominal_cost: float
    #: Billing cost of the cheapest all-on-demand fleet (the savings baseline).
    on_demand_cost: float

    @property
    def total_slots(self) -> int:
        """Slots the chosen fleet actually hosts (may minimally overshoot)."""
        return sum(VM_FLAVOURS[c.flavour].slots * c.count for c in self.choices)

    @property
    def total_vms(self) -> int:
        """Number of VMs across all groups."""
        return sum(c.count for c in self.choices)

    @property
    def spot_fraction(self) -> float:
        """Fraction of the fleet's slots bought on the spot market."""
        total = self.total_slots
        if total == 0:
            return 0.0
        spot = sum(
            VM_FLAVOURS[c.flavour].slots * c.count for c in self.choices if c.market == SPOT
        )
        return spot / total

    def describe(self) -> str:
        """Human-readable summary, e.g. ``3xD3/spot + 1xD1/on-demand ($0.0420)``."""
        groups = " + ".join(f"{c.count}x{c.flavour}/{c.market}" for c in self.choices)
        return f"{groups} (${self.expected_cost:.4f} expected over {self.horizon_s:.0f}s)"


#: Flavour name -> VMType for the cost search (paper's Table-1 D-series).
VM_FLAVOURS: Dict[str, VMType] = {"D1": D1, "D2": D2, "D3": D3}


def cost_optimal_fleet(
    slots_needed: int,
    horizon_s: float,
    billing_granularity_s: float = 60.0,
    spot: Optional[SpotMarket] = None,
    flavours: Sequence[VMType] = (D3, D2, D1),
    recovery_cost_fixed: float = 0.01,
    recovery_cost_per_slot: float = 0.02,
) -> CostPlan:
    """Search the full flavour × market space for the cheapest fleet.

    Enumerates every D1/D2/D3 mix hosting at least ``slots_needed`` slots
    (with less than one largest-VM's worth of slack — anything more is
    dominated) and, when a :class:`~repro.cluster.cloud.SpotMarket` is given,
    every per-flavour-group on-demand/spot assignment.  Each candidate is
    costed over ``horizon_s`` with the provider's billing-granularity
    round-up (``ceil(horizon / granularity)`` billed units per VM — the
    per-minute billing the paper leans on), plus, for spot groups, an
    expected eviction-recovery penalty:
    ``P(evicted within horizon) × (fixed + per_slot × slots)`` per VM —
    bigger spot VMs concentrate risk, which is what pushes mixed fleets.

    Deterministic: ties break toward fewer VMs, then fewer spot VMs, then
    flavour order.  The D-series' exactly-linear per-slot pricing means all
    exact packings tie on nominal cost; the round-up waste of slack slots
    and the risk penalty are what differentiate candidates.
    """
    if slots_needed <= 0:
        raise ValueError(f"slots_needed must be positive, got {slots_needed}")
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be positive, got {horizon_s}")
    billed_s = math.ceil(horizon_s / billing_granularity_s) * billing_granularity_s
    flavour_list = list(flavours)
    max_slots = max(f.slots for f in flavour_list)
    markets = [ON_DEMAND, SPOT] if spot is not None else [ON_DEMAND]
    p_evict = spot.eviction_probability(horizon_s) if spot is not None else 0.0

    def group_cost(vm_type: VMType, market: str, count: int) -> Tuple[float, float]:
        if market == SPOT:
            hourly = spot.spot_hourly_cost(vm_type)
            penalty = p_evict * (recovery_cost_fixed + recovery_cost_per_slot * vm_type.slots)
        else:
            hourly = vm_type.hourly_cost
            penalty = 0.0
        nominal = hourly * billed_s / 3600.0 * count
        return nominal, nominal + penalty * count

    # Count vectors: fill greedily-boundable ranges per flavour; the last
    # flavour tops up exactly.  Candidates with >= max_slots of slack are
    # dominated (drop one VM and still cover the demand).
    def count_vectors() -> List[Tuple[int, ...]]:
        vectors = []
        ranges = [range(0, slots_needed // f.slots + 2) for f in flavour_list[:-1]]
        last = flavour_list[-1]
        for head in itertools.product(*ranges):
            covered = sum(f.slots * c for f, c in zip(flavour_list, head))
            remaining = max(0, slots_needed - covered)
            last_count = math.ceil(remaining / last.slots)
            total = covered + last_count * last.slots
            if total - slots_needed >= max_slots:
                continue
            vectors.append(tuple(head) + (last_count,))
        return vectors

    best = None
    best_on_demand = None
    for counts in count_vectors():
        used = [(f, c) for f, c in zip(flavour_list, counts) if c > 0]
        if not used:
            continue
        for market_mix in itertools.product(markets, repeat=len(used)):
            nominal = 0.0
            expected = 0.0
            choices = []
            for (vm_type, count), market in zip(used, market_mix):
                n, e = group_cost(vm_type, market, count)
                nominal += n
                expected += e
                choices.append(FleetOption(flavour=vm_type.name, market=market, count=count))
            spot_vms = sum(c.count for c in choices if c.market == SPOT)
            key = (
                expected,
                sum(c.count for c in choices),
                spot_vms,
                tuple((c.flavour, c.market) for c in choices),
            )
            candidate = (key, tuple(choices), expected, nominal)
            if best is None or key < best[0]:
                best = candidate
            if spot_vms == 0 and (best_on_demand is None or key < best_on_demand[0]):
                best_on_demand = candidate
    assert best is not None and best_on_demand is not None
    return CostPlan(
        slots_needed=slots_needed,
        horizon_s=horizon_s,
        choices=best[1],
        expected_cost=best[2],
        nominal_cost=best[3],
        on_demand_cost=best_on_demand[3],
    )


def plan_user_tasks_on(runtime: TopologyRuntime, target_vm_ids: Sequence[str]) -> PlacementPlan:
    """Placement with user tasks on the target VMs only, via the runtime's scheduler.

    Sources and sinks keep their existing slots (they are pinned to the
    dedicated util VM and never migrate).
    """
    if runtime.placement is None:
        raise ValueError("runtime must be deployed before planning a migration")
    target_set: Set[str] = set(target_vm_ids)
    exclude: List[str] = [vm.vm_id for vm in runtime.cluster.vms if vm.vm_id not in target_set]
    user_ids = [e.executor_id for e in runtime.user_executors]
    plan = runtime.scheduler.schedule(user_ids, runtime.cluster, pinned={}, exclude_vms=exclude)
    for executor in list(runtime.source_executors) + list(runtime.sink_executors):
        slot_id = runtime.placement.assignments[executor.executor_id]
        plan.assign(executor.executor_id, slot_id, runtime.placement.slot_to_vm[slot_id])
    return plan
