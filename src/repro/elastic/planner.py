"""Allocation planning: from an observed input rate to a target VM fleet.

The paper sizes dataflows with a simple rule -- **one task instance per
incremental 8 events/second of input rate** (Table 1) -- and packs the
resulting slots onto Azure D-series VMs: D2s for the default deployment,
D3s when consolidating (scale-in), one-slot D1s when expanding (scale-out,
so per-minute billing tracks the load closely and single-VM failures hurt
less).  The planner applies the same arithmetic to a *measured* rate:

* :meth:`AllocationPlanner.required_instances` re-derives every user task's
  input rate at the observed source rate and applies the 1-per-8 ev/s rule;
* :meth:`AllocationPlanner.plan` compares that requirement against the
  instances actually deployed (the *pressure*) and picks an allocation tier
  -- ``expanded`` / ``baseline`` / ``consolidated`` -- with Table-1 style VM
  packing for the slots that must be hosted.

The plan deliberately keeps the executor count fixed (the paper scopes
parallelism changes out of the migration problem); elasticity here is about
*which VMs* host the slots, which is exactly what DSM/DCR/CCR enact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from repro.cluster.placement import PlacementPlan
from repro.cluster.vm import D1, D2, D3, VMType
from repro.dataflow.graph import Dataflow
from repro.engine.runtime import TopologyRuntime

#: Allocation tiers in scale order (index comparisons give the direction).
TIER_ORDER: Dict[str, int] = {"consolidated": 0, "baseline": 1, "expanded": 2}


@dataclass(frozen=True)
class TargetAllocation:
    """The VM fleet a given input rate calls for."""

    #: ``consolidated`` (pack onto D3s), ``baseline`` (D2s) or ``expanded`` (D1s).
    tier: str
    #: Instances the 1-per-8 ev/s rule demands at the observed rate.
    required_instances: int
    #: Slots that must actually be hosted (the deployed executor count).
    hosted_slots: int
    #: ``required_instances / hosted_slots`` -- the load pressure that picked the tier.
    pressure: float
    #: VM flavour name -> count, e.g. ``{"D1": 13}``.
    vm_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def total_vms(self) -> int:
        """Number of worker VMs in this allocation."""
        return sum(self.vm_counts.values())

    def describe(self) -> str:
        """Human-readable summary, e.g. ``expanded: 13xD1 (pressure 2.77)``."""
        vms = " + ".join(f"{count}x{name}" for name, count in sorted(self.vm_counts.items()))
        return f"{self.tier}: {vms} (pressure {self.pressure:.2f})"


class AllocationPlanner:
    """Turns an observed source rate into a target allocation tier."""

    #: VM flavour used per tier.
    TIER_VM_TYPES: Dict[str, VMType] = {"consolidated": D3, "baseline": D2, "expanded": D1}

    def __init__(
        self,
        dataflow: Dataflow,
        instance_capacity_ev_s: float = 8.0,
        expand_pressure: float = 1.2,
        consolidate_pressure: float = 0.95,
    ) -> None:
        if instance_capacity_ev_s <= 0:
            raise ValueError("instance_capacity_ev_s must be positive")
        if consolidate_pressure >= expand_pressure:
            raise ValueError(
                "consolidate_pressure must be below expand_pressure "
                f"(got {consolidate_pressure} >= {expand_pressure})"
            )
        self.dataflow = dataflow
        self.instance_capacity_ev_s = instance_capacity_ev_s
        self.expand_pressure = expand_pressure
        self.consolidate_pressure = consolidate_pressure
        #: Steady-state per-task input rates at the declared source rates.
        self._baseline_rates = dataflow.input_rates()
        self._baseline_source_rate = sum(
            self._baseline_rates[s.name] for s in dataflow.sources
        )
        if self._baseline_source_rate <= 0:
            raise ValueError("dataflow sources must declare a positive rate")

    # ------------------------------------------------------------------ rules
    def required_instances(self, observed_rate_ev_s: float) -> int:
        """Instances the paper's 1-per-``instance_capacity`` rule demands.

        Every user task's steady-state input rate is scaled by
        ``observed / baseline`` source rate; each task needs
        ``ceil(rate / capacity)`` instances, at least one.
        """
        scale = max(0.0, observed_rate_ev_s) / self._baseline_source_rate
        total = 0
        for task in self.dataflow.user_tasks:
            task_rate = self._baseline_rates[task.name] * scale
            total += max(1, int(math.ceil(task_rate / self.instance_capacity_ev_s)))
        return total

    def plan(self, observed_rate_ev_s: float) -> TargetAllocation:
        """Pick the allocation tier and VM packing for an observed rate."""
        required = self.required_instances(observed_rate_ev_s)
        hosted = self.dataflow.total_instances()
        pressure = required / hosted if hosted else 0.0
        if pressure >= self.expand_pressure:
            tier = "expanded"
        elif pressure <= self.consolidate_pressure:
            tier = "consolidated"
        else:
            tier = "baseline"
        vm_type = self.TIER_VM_TYPES[tier]
        vm_counts = {vm_type.name: int(math.ceil(hosted / vm_type.slots))}
        return TargetAllocation(
            tier=tier,
            required_instances=required,
            hosted_slots=hosted,
            pressure=pressure,
            vm_counts=vm_counts,
        )


def plan_user_tasks_on(runtime: TopologyRuntime, target_vm_ids: Sequence[str]) -> PlacementPlan:
    """Placement with user tasks on the target VMs only, via the runtime's scheduler.

    Sources and sinks keep their existing slots (they are pinned to the
    dedicated util VM and never migrate).
    """
    if runtime.placement is None:
        raise ValueError("runtime must be deployed before planning a migration")
    target_set: Set[str] = set(target_vm_ids)
    exclude: List[str] = [vm.vm_id for vm in runtime.cluster.vms if vm.vm_id not in target_set]
    user_ids = [e.executor_id for e in runtime.user_executors]
    plan = runtime.scheduler.schedule(user_ids, runtime.cluster, pinned={}, exclude_vms=exclude)
    for executor in list(runtime.source_executors) + list(runtime.sink_executors):
        slot_id = runtime.placement.assignments[executor.executor_id]
        plan.assign(executor.executor_id, slot_id, runtime.placement.slot_to_vm[slot_id])
    return plan
