"""Allocation planning: from an observed input rate to a target VM fleet.

The paper sizes dataflows with a simple rule -- **one task instance per
incremental 8 events/second of input rate** (Table 1) -- and packs the
resulting slots onto Azure D-series VMs: D2s for the default deployment,
D3s when consolidating (scale-in), one-slot D1s when expanding (scale-out,
so per-minute billing tracks the load closely and single-VM failures hurt
less).  The planner applies the same arithmetic to a *measured* rate:

* :meth:`AllocationPlanner.required_instances` re-derives every user task's
  input rate at the observed source rate and applies the 1-per-8 ev/s rule;
* :meth:`AllocationPlanner.plan` compares that requirement against the
  instances actually deployed (the *pressure*) and picks an allocation tier
  -- ``expanded`` / ``baseline`` / ``consolidated`` -- with Table-1 style VM
  packing for the slots that must be hosted.

By default the plan keeps the executor count fixed (the paper scopes
parallelism changes out of the migration problem); elasticity is then about
*which VMs* host the slots, which is exactly what DSM/DCR/CCR enact.  With
``elastic_parallelism=True`` the planner goes beyond the paper's scoping: the
per-task 1-per-``capacity`` arithmetic also yields a
:class:`~repro.dataflow.graph.RescalePlan` of target instance counts, so a
scale-out *adds processing capacity* instead of only spreading the same
slots over more machines.  Per-task service rates (heterogeneous task
latencies) are honoured: an explicit ``task_capacities_ev_s`` mapping wins,
then a task's own ``capacity_ev_s``, then the global Table-1 default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.cluster.placement import PlacementPlan
from repro.cluster.vm import D1, D2, D3, VMType
from repro.dataflow.graph import Dataflow, RescalePlan, exact_instance_ceiling
from repro.dataflow.task import Task
from repro.engine.runtime import TopologyRuntime

#: Allocation tiers in scale order (index comparisons give the direction).
TIER_ORDER: Dict[str, int] = {"consolidated": 0, "baseline": 1, "expanded": 2}


@dataclass(frozen=True)
class TargetAllocation:
    """The VM fleet a given input rate calls for."""

    #: ``consolidated`` (pack onto D3s), ``baseline`` (D2s) or ``expanded`` (D1s).
    tier: str
    #: Instances the 1-per-8 ev/s rule demands at the observed rate.
    required_instances: int
    #: Slots that must actually be hosted (the deployed executor count).
    hosted_slots: int
    #: ``required_instances / hosted_slots`` -- the load pressure that picked the tier.
    pressure: float
    #: VM flavour name -> count, e.g. ``{"D1": 13}``.
    vm_counts: Dict[str, int] = field(default_factory=dict)
    #: Parallelism changes to enact with the migration (capacity-adding
    #: scaling); ``None`` for the paper's placement-only scaling.
    rescale: Optional[RescalePlan] = None

    @property
    def total_vms(self) -> int:
        """Number of worker VMs in this allocation."""
        return sum(self.vm_counts.values())

    def describe(self) -> str:
        """Human-readable summary, e.g. ``expanded: 13xD1 (pressure 2.77)``."""
        vms = " + ".join(f"{count}x{name}" for name, count in sorted(self.vm_counts.items()))
        return f"{self.tier}: {vms} (pressure {self.pressure:.2f})"


class AllocationPlanner:
    """Turns an observed source rate into a target allocation tier."""

    #: VM flavour used per tier.
    TIER_VM_TYPES: Dict[str, VMType] = {"consolidated": D3, "baseline": D2, "expanded": D1}

    def __init__(
        self,
        dataflow: Dataflow,
        instance_capacity_ev_s: float = 8.0,
        expand_pressure: float = 1.2,
        consolidate_pressure: float = 0.95,
        task_capacities_ev_s: Optional[Mapping[str, float]] = None,
        elastic_parallelism: bool = False,
    ) -> None:
        if instance_capacity_ev_s <= 0:
            raise ValueError("instance_capacity_ev_s must be positive")
        if consolidate_pressure >= expand_pressure:
            raise ValueError(
                "consolidate_pressure must be below expand_pressure "
                f"(got {consolidate_pressure} >= {expand_pressure})"
            )
        self.dataflow = dataflow
        self.instance_capacity_ev_s = instance_capacity_ev_s
        self.expand_pressure = expand_pressure
        self.consolidate_pressure = consolidate_pressure
        #: Runtime-measured per-task service rates, fed back by the control
        #: pipeline's sense stage (empty unless capacity feedback is on).
        self.measured_capacities_ev_s: Dict[str, float] = {}
        self.task_capacities_ev_s: Dict[str, float] = dict(task_capacities_ev_s or {})
        for task_name, capacity in self.task_capacities_ev_s.items():
            if task_name not in dataflow:
                raise ValueError(f"task_capacities_ev_s references unknown task {task_name!r}")
            if capacity <= 0:
                raise ValueError(f"task_capacities_ev_s[{task_name!r}] must be positive")
        self.elastic_parallelism = elastic_parallelism
        #: Steady-state per-task input rates at the declared source rates,
        #: carried as exact rationals (so is the summed source rate) so
        #: instance counts never wobble on float noise.
        self._baseline_rates_exact = dataflow.input_rates_exact()
        self._baseline_source_rate = sum(
            (self._baseline_rates_exact[s.name] for s in dataflow.sources), Fraction(0)
        )
        if self._baseline_source_rate <= 0:
            raise ValueError("dataflow sources must declare a positive rate")

    # ------------------------------------------------------------------ rules
    def set_measured_capacities(self, measured: Mapping[str, float]) -> None:
        """Feed runtime-measured per-task service rates into sizing.

        Called by the control pipeline's sense stage when capacity feedback
        is enabled; unknown task names and non-positive rates are ignored (a
        task that has not processed anything yet keeps its declared value).
        """
        for task_name, rate in measured.items():
            if rate > 0 and task_name in self.dataflow:
                self.measured_capacities_ev_s[task_name] = rate

    def capacity_for(self, task: Task) -> float:
        """Per-instance service capacity (ev/s) used to size ``task``.

        Resolution order: an explicit ``task_capacities_ev_s`` entry, the
        runtime-measured rate (when capacity feedback filled it in), the
        task's own ``capacity_ev_s`` declaration, then the planner's global
        default (the paper's Table-1 value of 8 ev/s).
        """
        explicit = self.task_capacities_ev_s.get(task.name)
        if explicit is not None:
            return explicit
        measured = self.measured_capacities_ev_s.get(task.name)
        if measured is not None:
            return measured
        if task.capacity_ev_s is not None:
            return task.capacity_ev_s
        return self.instance_capacity_ev_s

    def required_instances_by_task(self, observed_rate_ev_s: float) -> Dict[str, int]:
        """Per-task instance demand at the observed rate (1-per-capacity rule).

        Every user task's steady-state input rate is scaled by
        ``observed / baseline`` source rate; each task needs
        ``ceil(rate / capacity)`` instances (exact rational ceiling), at
        least one.
        """
        scale = Fraction(max(0.0, observed_rate_ev_s)) / self._baseline_source_rate
        required: Dict[str, int] = {}
        for task in self.dataflow.user_tasks:
            task_rate = self._baseline_rates_exact[task.name] * scale
            required[task.name] = max(1, exact_instance_ceiling(task_rate, self.capacity_for(task)))
        return required

    def required_instances(self, observed_rate_ev_s: float) -> int:
        """Total instances the 1-per-capacity rule demands at the observed rate."""
        return sum(self.required_instances_by_task(observed_rate_ev_s).values())

    def rescale_plan(self, observed_rate_ev_s: float) -> Optional[RescalePlan]:
        """Parallelism changes needed to serve the observed rate, if any.

        Returns ``None`` when every task's deployed instance count already
        matches the demand.
        """
        return self._rescale_from(self.required_instances_by_task(observed_rate_ev_s))

    def _rescale_from(self, required_by_task: Dict[str, int]) -> Optional[RescalePlan]:
        targets = {
            name: count
            for name, count in required_by_task.items()
            if self.dataflow.task(name).parallelism != count
        }
        if not targets:
            return None
        return RescalePlan(targets=targets)

    def plan(self, observed_rate_ev_s: float, current_tier: Optional[str] = None) -> TargetAllocation:
        """Pick the allocation tier and VM packing for an observed rate.

        With ``elastic_parallelism`` enabled the allocation also carries the
        :class:`RescalePlan` matching the demand whenever the pressure is
        out of band -- including when the tier *label* does not change (a
        second surge on an already-expanded deployment still adds capacity)
        -- VM counts are sized for the *post-rescale* slot demand, and an
        in-band pressure keeps ``current_tier`` (the deployed parallelism
        already fits; there is nothing to enact).  Without it the behaviour
        is exactly the paper's placement-only scaling.
        """
        required_by_task = self.required_instances_by_task(observed_rate_ev_s)
        required = sum(required_by_task.values())
        hosted = self.dataflow.total_instances()
        pressure = required / hosted if hosted else 0.0
        out_of_band = pressure >= self.expand_pressure or pressure <= self.consolidate_pressure
        if pressure >= self.expand_pressure:
            tier = "expanded"
        elif pressure <= self.consolidate_pressure:
            tier = "consolidated"
        elif self.elastic_parallelism and current_tier in TIER_ORDER:
            # Parallelism tracks demand, so an in-band pressure means the
            # current deployment is correctly sized -- stay put rather than
            # bouncing back to the "baseline" label after every rescale.
            tier = current_tier
        else:
            tier = "baseline"
        rescale: Optional[RescalePlan] = None
        hosted_target = hosted
        if self.elastic_parallelism and (tier != current_tier or out_of_band):
            rescale = self._rescale_from(required_by_task)
            hosted_target = required
        vm_type = self.TIER_VM_TYPES[tier]
        vm_counts = {vm_type.name: int(math.ceil(hosted_target / vm_type.slots))}
        return TargetAllocation(
            tier=tier,
            required_instances=required,
            hosted_slots=hosted_target,
            pressure=pressure,
            vm_counts=vm_counts,
            rescale=rescale,
        )


def plan_user_tasks_on(runtime: TopologyRuntime, target_vm_ids: Sequence[str]) -> PlacementPlan:
    """Placement with user tasks on the target VMs only, via the runtime's scheduler.

    Sources and sinks keep their existing slots (they are pinned to the
    dedicated util VM and never migrate).
    """
    if runtime.placement is None:
        raise ValueError("runtime must be deployed before planning a migration")
    target_set: Set[str] = set(target_vm_ids)
    exclude: List[str] = [vm.vm_id for vm in runtime.cluster.vms if vm.vm_id not in target_set]
    user_ids = [e.executor_id for e in runtime.user_executors]
    plan = runtime.scheduler.schedule(user_ids, runtime.cluster, pinned={}, exclude_vms=exclude)
    for executor in list(runtime.source_executors) + list(runtime.sink_executors):
        slot_id = runtime.placement.assignments[executor.executor_id]
        plan.assign(executor.executor_id, slot_id, runtime.placement.slot_to_vm[slot_id])
    return plan
