"""The autoscaling controller: a thin driver over the control-plane pipeline.

Every check interval the controller runs the staged decision pipeline
(:class:`~repro.elastic.policy.ControlPipeline`: ``sense -> forecast ->
plan``), and -- after the configured hysteresis has confirmed the signal and
any cooldown has expired -- enacts the change through the pipeline's *place*
stage:

1. **provision** the VMs the place stage requests through the
   :class:`CloudProvider` (billing starts immediately; the migration waits
   for the modelled provisioning latency, as the paper's experiments
   provision target VMs before issuing the migration request).  The default
   :class:`~repro.elastic.policy.FullReplacePlacement` provisions the whole
   target fleet; :class:`~repro.elastic.policy.IncrementalPlacement` keeps
   the current fleet on a grow and provisions only the delta;
2. **plan** the new placement via the place stage (sources/sinks stay
   pinned);
3. **migrate** with the configured, pluggable
   :class:`~repro.core.strategy.MigrationStrategy` (DSM, DCR or CCR) --
   issuing a *combined rescale + migrate* decision when the planner runs
   with ``elastic_parallelism`` (the strategy changes task instance counts
   mid-protocol and the placement is planned against the new executor set);
4. **deprovision** the vacated worker VMs once the protocol completes, so
   scale-in actually reduces the bill.

Hysteresis (``confirm_samples`` consecutive agreeing samples) filters
short-lived spikes such as :class:`~repro.workloads.profiles.BurstProfile`
bursts; the cooldown keeps back-to-back migrations apart.  Samples taken
while the sources are paused (mid-protocol) are ignored.

Two signals make the loop **drain-aware**:

* decisions track the monitor's ``offered_rate`` (events *generated* per
  second) rather than the raw emission rate, so a post-migration backlog
  drain -- whose burst looks exactly like a fresh surge on the wire -- does
  not trigger a spurious scale-out;
* a scale-in is held while the observed backlog (executor queues plus source
  backlogs) exceeds ``drain_guard_backlog_s`` seconds of offered load:
  consolidating a dataflow that is still absorbing a surge would strand the
  very backlog it is draining on a smaller allocation.

Beyond the reactive threshold rule, the pipeline makes the loop
**predictive and SLO-aware**: a forecast policy (EWMA / Holt-Winters /
profile lookahead) sizes capacity for the demand a provisioning horizon
ahead, and a sustained sink-latency SLO breach escalates to a scale-out even
when the input rate alone is in band.  With the defaults (reactive forecast,
no SLO, full-replace placement) the behaviour is bit-identical to the
pre-pipeline controller.

Subclasses can reroute capacity through an external authority (the
multi-tenant :class:`~repro.multi.tenant.TenantController` asks a
:class:`~repro.multi.arbiter.ScaleArbiter` before provisioning) by
overriding :meth:`ElasticityController._acquire_capacity` and
:meth:`ElasticityController._release_capacity`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type

from repro.cluster.cloud import ON_DEMAND, CloudProvider
from repro.cluster.placement import PlacementPlan, incremental_plan
from repro.cluster.vm import VM_TYPES, VirtualMachine, VMType
from repro.core.strategy import MigrationReport, MigrationStrategy
from repro.elastic.forecast import ForecastPolicy
from repro.elastic.monitor import ElasticityMonitor, MonitorSample
from repro.elastic.planner import (
    TIER_ORDER,
    AllocationPlanner,
    TargetAllocation,
    cost_optimal_fleet,
)
from repro.elastic.policy import ControlPipeline, PlacementPolicy, PlanDecision
from repro.engine.runtime import TopologyRuntime


@dataclass
class ControllerConfig:
    """Tuning knobs of the elastic control loop."""

    #: Interval between control ticks (each tick takes one monitor sample).
    check_interval_s: float = 15.0
    #: Consecutive samples that must agree on a different tier before acting.
    confirm_samples: int = 2
    #: Quiet period after a completed migration before the next one may start.
    cooldown_s: float = 60.0
    #: Whether to wait the provider's provisioning latency between provisioning
    #: the target VMs and issuing the migration (the paper plans ahead, so the
    #: VMs are ready when the migration request is issued).
    wait_for_provisioning: bool = True
    #: Drain-aware scale-in guard: a consolidation is deferred while the total
    #: backlog exceeds this many seconds of offered load (``None`` or 0
    #: disables the guard).  Scale-outs are never held -- extra capacity only
    #: helps a drain.
    drain_guard_backlog_s: Optional[float] = 5.0
    #: Forecast stage: named demand forecaster (see
    #: :data:`~repro.elastic.forecast.FORECAST_POLICIES`).  ``reactive`` is
    #: the identity forecast -- the original controller behaviour.
    forecast_policy: str = "reactive"
    #: How far ahead the forecaster predicts (seconds).  ``None`` derives the
    #: horizon from the provisioning latency plus the hysteresis window --
    #: the earliest a decision taken now can become ready capacity.
    forecast_horizon_s: Optional[float] = None
    #: Forecasts within this fraction of the observed rate snap to the
    #: observed rate (smoothing noise must not read as pressure; see
    #: :meth:`~repro.elastic.policy.ForecastStage.forecast`).
    forecast_deadband: float = 0.05
    #: Sink-latency SLO (seconds of mean end-to-end latency); ``None``
    #: disables SLO tracking and the overload override.
    slo_latency_s: Optional[float] = None
    #: Consecutive SLO-breaching samples before the overload override may
    #: escalate an in-band plan.
    slo_confirm_samples: int = 2
    #: Demand multiplier the SLO override plans with (capacity headroom to
    #: actually drain the backlog the breach built).
    slo_headroom: float = 1.5
    #: Whether measured per-task service rates are fed back into the planner
    #: (closing the heterogeneous-latency loop).  Off by default: the paper's
    #: 1-per-8-ev/s sizing rule stays authoritative unless asked otherwise.
    capacity_feedback: bool = False
    #: Place stage: ``incremental`` (keep unchanged instances in their slots,
    #: place and migrate only the delta — the default) or ``full-replace``
    #: (the paper's re-fleet: provision a whole new fleet and move everything).
    placement: str = "incremental"
    #: Billing horizon an eviction-notice evacuation assumes when shopping
    #: the market for replacement capacity (spot vs on-demand, see
    #: :meth:`ElasticityController.handle_eviction_notice`).
    evacuation_horizon_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.check_interval_s <= 0:
            raise ValueError("check_interval_s must be positive")
        if self.confirm_samples < 1:
            raise ValueError("confirm_samples must be at least 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        if self.drain_guard_backlog_s is not None and self.drain_guard_backlog_s < 0:
            raise ValueError("drain_guard_backlog_s must be non-negative (or None)")
        if self.forecast_horizon_s is not None and self.forecast_horizon_s < 0:
            raise ValueError("forecast_horizon_s must be non-negative (or None)")
        if self.forecast_deadband < 0:
            raise ValueError("forecast_deadband must be non-negative")
        if self.slo_latency_s is not None and self.slo_latency_s <= 0:
            raise ValueError("slo_latency_s must be positive (or None)")
        if self.slo_confirm_samples < 1:
            raise ValueError("slo_confirm_samples must be at least 1")
        if self.slo_headroom <= 1.0:
            raise ValueError("slo_headroom must be above 1")
        if self.evacuation_horizon_s <= 0:
            raise ValueError("evacuation_horizon_s must be positive")


@dataclass
class ScalingAction:
    """Bookkeeping for one enacted scaling decision."""

    #: ``out`` (toward more capacity / smaller VMs) or ``in`` (toward less
    #: capacity / bigger VMs).
    direction: str
    #: The tier the controller moved from / to.
    from_tier: str
    to_tier: str
    #: Simulated time of the decision (after hysteresis confirmed it).
    decided_at: float
    #: Offered input rate (generated ev/s) that triggered the decision.
    observed_rate: float
    #: The planner's allocation behind the decision.
    target: TargetAllocation
    #: Forecast demand (ev/s) the plan was sized for (equals
    #: ``observed_rate`` under the reactive policy).
    forecast_rate: Optional[float] = None
    #: Whether the latency-SLO override escalated this decision (the input
    #: rate alone would not have triggered it).
    slo_escalated: bool = False
    #: VM flavour -> count the place stage asked to provision fresh (equals
    #: ``target.vm_counts`` under full-replace placement).
    provision_counts: Dict[str, int] = field(default_factory=dict)
    #: Existing worker VMs the place stage retained (incremental placement).
    kept_vm_ids: List[str] = field(default_factory=list)
    provisioned_vm_ids: List[str] = field(default_factory=list)
    deprovisioned_vm_ids: List[str] = field(default_factory=list)
    #: When the migration request was issued (after provisioning).
    enacted_at: Optional[float] = None
    completed_at: Optional[float] = None
    #: The strategy's migration report, filled in as the protocol runs.
    report: Optional[MigrationReport] = None
    #: Whether the action was abandoned before enactment (every target VM
    #: died during provisioning — see ``handle_vm_failure``).
    aborted: bool = False

    @property
    def is_complete(self) -> bool:
        """Whether the migration protocol for this action has finished."""
        return self.completed_at is not None

    @property
    def provision_slots(self) -> int:
        """New VM slots this action will provision -- what an arbiter budgets.

        Equals the full target fleet under full-replace placement and only
        the delta under incremental placement (retained VMs are already in
        the fleet's physical accounting); a consolidation that re-uses free
        shared slots provisions zero.
        """
        return sum(VM_TYPES[name].slots * count for name, count in self.provision_counts.items())


@dataclass
class RecoveryRecord:
    """Bookkeeping for one unplanned VM loss and its recovery."""

    vm_id: str
    #: Fault kind the cloud reported (``"kill"`` or an overdue ``"evict"``).
    kind: str
    failed_at: float
    #: Executors that died with the VM.
    lost_executors: List[str]
    #: Data events dropped with them (queued + in-memory).
    events_lost: int = 0
    #: Tuple trees failed fast through the acker (acking runs only).
    trees_failed: int = 0
    #: Replacement VMs provisioned (on-demand — unplanned recovery has no
    #: notice window in which to shop the market).
    replacement_vm_ids: List[str] = field(default_factory=list)
    #: Failed provisioning attempts paid for while bringing replacements up.
    provisioning_failures: int = 0
    pending_replacements: int = 0
    #: When the recovery rebalance re-placed the victims.
    rebalanced_at: Optional[float] = None
    #: When the targeted INIT wave finished restoring their state.
    restored_at: Optional[float] = None

    @property
    def recovery_latency_s(self) -> Optional[float]:
        """Failure to fully-restored, seconds (``None`` while in progress)."""
        if self.restored_at is None:
            return None
        return self.restored_at - self.failed_at


@dataclass
class EvacuationRecord:
    """Bookkeeping for one eviction notice and the drain it triggered."""

    vm_id: str
    notice_at: float
    #: When the cloud will reclaim the VM if it is still around.
    deadline: float
    #: When the evacuation actually started (a migration already in flight
    #: delays it).
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    #: Whether the VM was drained and released before the deadline (the
    #: eviction never happened; billing stopped early).
    evaded: bool = False
    #: Whether the deadline arrived before the drain finished (the kill then
    #: takes the unplanned-recovery path).
    overrun: bool = False
    #: Whether the evacuation migration was actually issued.
    migration_issued: bool = False
    replacement_vm_ids: List[str] = field(default_factory=list)
    #: Market the replacement capacity was bought on (the notice window buys
    #: time to choose; ``None`` when no capacity was needed).
    replacement_market: Optional[str] = None
    pending_replacements: int = 0
    report: Optional[MigrationReport] = None

    @property
    def evacuation_latency_s(self) -> Optional[float]:
        """Drain start to drain complete, seconds (``None`` while in progress)."""
        if self.started_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.started_at


class ElasticityController:
    """Watches the monitor and migrates the dataflow between VM allocations."""

    def __init__(
        self,
        runtime: TopologyRuntime,
        provider: CloudProvider,
        monitor: ElasticityMonitor,
        planner: AllocationPlanner,
        strategy_cls: Type[MigrationStrategy],
        config: Optional[ControllerConfig] = None,
        initial_tier: str = "baseline",
        pipeline: Optional[ControlPipeline] = None,
        forecast_policy: Optional[ForecastPolicy] = None,
        placement: Optional[PlacementPolicy] = None,
    ) -> None:
        if initial_tier not in TIER_ORDER:
            raise ValueError(f"unknown tier {initial_tier!r}; choose from {sorted(TIER_ORDER)}")
        self.runtime = runtime
        self.provider = provider
        self.monitor = monitor
        self.planner = planner
        self.strategy_cls = strategy_cls
        self.config = config if config is not None else ControllerConfig()
        #: The staged decision path.  A fully assembled pipeline may be
        #: injected; otherwise one is built from the config, with optional
        #: ``forecast_policy`` / ``placement`` instances overriding the
        #: config's named choices (a lookahead policy carries the workload's
        #: profile; a shared-fleet placer carries the manager's exclusions).
        if pipeline is None:
            pipeline = ControlPipeline.from_config(
                monitor,
                planner,
                self.config,
                provisioning_latency_s=provider.provisioning_latency_s,
                forecast_policy=forecast_policy,
                placement=placement,
            )
        self.pipeline = pipeline
        self.tier = initial_tier
        self.actions: List[ScalingAction] = []
        self.recoveries: List[RecoveryRecord] = []
        self.evacuations: List[EvacuationRecord] = []
        self._timer = None
        self._pending_tier: Optional[str] = None
        self._pending_count = 0
        self._migration_in_flight = False
        self._cooldown_until = float("-inf")
        # Open tick span handed from _tick to _enact (telemetry on only), so
        # the place/act stage spans parent under the tick that caused them.
        self._tick_span = None

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the periodic control loop."""
        if self._timer is None:
            self._timer = self.runtime.sim.every(self.config.check_interval_s, self._tick)

    def stop(self) -> None:
        """Stop the control loop (a migration already in flight still completes)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def migration_in_flight(self) -> bool:
        """Whether a scaling migration is currently being enacted."""
        return self._migration_in_flight

    @property
    def last_action(self) -> Optional[ScalingAction]:
        """The most recent scaling action, if any."""
        return self.actions[-1] if self.actions else None

    # ------------------------------------------------------------ control loop
    def _tick(self) -> None:
        telemetry = self.runtime.telemetry
        tracer = telemetry.tracer if telemetry is not None else None
        now = self.runtime.sim.now
        tick_span = None
        if tracer is not None:
            tick_span = tracer.begin("controller.tick", "control", now, tier=self.tier)
            self._tick_span = tick_span
            telemetry.sample_queues(self.runtime)
        try:
            # Stage 1: sense.  The forecast policy observes *every* reading --
            # including ticks skipped below -- so its series has no gaps.
            reading = self.pipeline.sense()
            self.pipeline.observe(reading)
            sample = reading.sample
            if tracer is not None:
                tracer.emit(
                    "sense", "control.stage", now, now, parent=tick_span,
                    input_rate_ev_s=sample.input_rate,
                    offered_rate_ev_s=sample.offered_rate,
                    output_rate_ev_s=sample.output_rate,
                    avg_latency_s=sample.avg_latency_s,
                    queue_backlog=sample.queue_backlog,
                    source_backlog=sample.source_backlog,
                    sources_paused=sample.sources_paused,
                    slo_breached=reading.slo_breached,
                )
            if self._migration_in_flight or sample.sources_paused:
                if tracer is not None:
                    reason = (
                        "migration-in-flight" if self._migration_in_flight else "sources-paused"
                    )
                    for stage in ("forecast", "plan", "place", "act"):
                        tracer.emit(
                            stage, "control.stage", now, now,
                            parent=tick_span, skipped=reason,
                        )
                    tracer.end(tick_span, now, outcome="skipped", reason=reason)
                return

            # Stages 2+3: forecast the demand and size the target allocation.
            decision = self.pipeline.decide(reading, current_tier=self.tier)
            target = decision.target
            # A change is pending when the tier moves *or* the demand calls
            # for a parallelism change within the same tier (e.g. a second
            # surge on an already-expanded deployment still has to add
            # instances).
            outcome: Optional[str] = None
            if target.tier == self.tier and target.rescale is None:
                self._pending_tier = None
                self._pending_count = 0
                outcome = "in-band"
            else:
                if target.tier != self._pending_tier:
                    self._pending_tier = target.tier
                    self._pending_count = 1
                else:
                    self._pending_count += 1
                if self._pending_count < self.config.confirm_samples:
                    outcome = "hysteresis"
                elif self.runtime.sim.now < self._cooldown_until:
                    outcome = "cooldown"
                elif self._direction_of(target) == "in" and self._drain_guard_holds(sample):
                    outcome = "drain-guard"
            if tracer is not None:
                forecast = decision.forecast
                tracer.emit(
                    "forecast", "control.stage", now, now, parent=tick_span,
                    observed_rate_ev_s=forecast.observed_rate_ev_s,
                    forecast_rate_ev_s=forecast.rate_ev_s,
                    horizon_s=forecast.horizon_s,
                )
                tracer.emit(
                    "plan", "control.stage", now, now, parent=tick_span,
                    current_tier=self.tier,
                    target_tier=target.tier,
                    rescale=(
                        dict(sorted(target.rescale.targets.items()))
                        if target.rescale is not None
                        else None
                    ),
                    slo_escalated=decision.slo_escalated,
                    pending_count=self._pending_count,
                    outcome=outcome if outcome is not None else "enact",
                )
            if outcome is not None:
                if tracer is not None:
                    for stage in ("place", "act"):
                        tracer.emit(
                            stage, "control.stage", now, now,
                            parent=tick_span, skipped=outcome,
                        )
                    tracer.end(tick_span, now, outcome=outcome)
                return
            self._enact(decision, sample)
            if tracer is not None:
                tracer.end(
                    tick_span, now,
                    outcome="enacted" if self._migration_in_flight else "deferred",
                )
        finally:
            self._tick_span = None

    def _direction_of(self, target: TargetAllocation) -> str:
        """``out`` (adding capacity) or ``in`` (consolidating) for a target."""
        if target.tier != self.tier:
            return "out" if TIER_ORDER[target.tier] > TIER_ORDER[self.tier] else "in"
        # Same-tier rescale: the direction is given by the slot delta.  The
        # delta cannot be zero here -- the planner only attaches a same-tier
        # rescale when the pressure is out of band, which means the required
        # slot count strictly differs from the deployed one.
        return "out" if target.hosted_slots > self.runtime.dataflow.total_instances() else "in"

    def _drain_guard_holds(self, sample: MonitorSample) -> bool:
        """Whether the drain-aware guard vetoes a scale-in right now.

        The confirmation state is deliberately left intact: the moment the
        backlog is absorbed, the already-confirmed consolidation proceeds.
        """
        guard_s = self.config.drain_guard_backlog_s
        if not guard_s:
            return False
        backlog = sample.queue_backlog + sample.source_backlog
        return backlog > guard_s * max(sample.offered_rate, 1.0)

    # -------------------------------------------------------------- enactment
    def _enact(self, decision: PlanDecision, sample: MonitorSample) -> None:
        telemetry = self.runtime.telemetry
        tracer = telemetry.tracer if telemetry is not None else None
        now = self.runtime.sim.now
        target = decision.target
        direction = self._direction_of(target)
        # Stage 4: place.  The place stage decides what to provision fresh
        # and which of the current worker VMs keep serving.
        request = self.pipeline.place.provisioning(self.runtime, target, direction)
        if tracer is not None:
            tracer.emit(
                "place", "control.stage", now, now, parent=self._tick_span,
                direction=direction,
                provision_counts=dict(sorted(request.vm_counts.items())),
                kept_vm_ids=sorted(request.keep_vm_ids),
            )
        action = ScalingAction(
            direction=direction,
            from_tier=self.tier,
            to_tier=target.tier,
            decided_at=self.runtime.sim.now,
            observed_rate=sample.offered_rate,
            target=target,
            forecast_rate=decision.forecast.rate_ev_s,
            slo_escalated=decision.slo_escalated,
            provision_counts=dict(request.vm_counts),
            kept_vm_ids=list(request.keep_vm_ids),
        )
        if not self._acquire_capacity(action):
            # Capacity withheld (an arbiter deferred us): keep the confirmed
            # pending state so the next tick proposes again.
            if tracer is not None:
                tracer.emit(
                    "act", "control.stage", now, now,
                    parent=self._tick_span, outcome="deferred",
                )
            return
        if tracer is not None:
            tracer.emit(
                "act", "control.stage", now, now, parent=self._tick_span,
                outcome="provisioned",
                direction=direction,
                from_tier=action.from_tier,
                to_tier=action.to_tier,
                provisioned_vm_ids=sorted(action.provisioned_vm_ids),
            )
        self.actions.append(action)
        self._migration_in_flight = True
        self._pending_tier = None
        self._pending_count = 0
        delay = self.provider.provisioning_latency_s if self.config.wait_for_provisioning else 0.0
        self.runtime.sim.schedule(delay, self._start_migration, action)

    def _acquire_capacity(self, action: ScalingAction) -> bool:
        """Provision the requested fleet for an action; ``False`` defers it.

        Billing for the new fleet starts now; the migration request waits for
        the VMs to come up.  Subclasses may consult an external authority and
        return ``False`` to leave the decision pending.
        """
        for type_name, count in sorted(action.provision_counts.items()):
            vm_type = VM_TYPES[type_name]
            for vm in self.provider.provision(vm_type, count, name_prefix=type_name.lower()):
                self.runtime.cluster.add_vm(vm)
                action.provisioned_vm_ids.append(vm.vm_id)
        return True

    def _start_migration(self, action: ScalingAction) -> None:
        if action.aborted:
            return
        # Worker VMs in use before the migration; vacated ones are released
        # once the protocol completes.  VMs the place stage retained and the
        # util VM never migrate.  Sorted: ``vms_used`` is a set, and
        # release/record order must not depend on PYTHONHASHSEED
        # (cross-process reproducibility).
        retained = set(action.provisioned_vm_ids) | set(action.kept_vm_ids)
        old_vm_ids = [
            vm_id
            for vm_id in sorted(self.runtime.placement.vms_used)
            if vm_id != self.runtime.util_vm_id and vm_id not in retained
        ]
        target_vm_ids = list(action.kept_vm_ids) + list(action.provisioned_vm_ids)
        place = self.pipeline.place
        strategy = self.strategy_cls(self.runtime)
        action.enacted_at = self.runtime.sim.now
        self._migration_starting(action, old_vm_ids)
        if action.target.rescale is not None:
            # Combined rescale + migrate: the placement must be planned after
            # the strategy has applied the parallelism change (the executor
            # set it places does not exist yet), so pass a plan factory.
            action.report = strategy.migrate(
                lambda runtime: place.placement_plan(runtime, target_vm_ids),
                on_complete=lambda report: self._migration_complete(action, old_vm_ids, report),
                rescale=action.target.rescale,
            )
        else:
            new_plan = place.placement_plan(self.runtime, target_vm_ids)
            action.report = strategy.migrate(
                new_plan,
                on_complete=lambda report: self._migration_complete(action, old_vm_ids, report),
            )

    def _migration_starting(self, action: ScalingAction, old_vm_ids: List[str]) -> None:
        """Hook fired when the migration request is issued (post-provisioning).

        ``old_vm_ids`` are the worker VMs the migration will vacate; the
        multi-tenant controller registers them as *retiring* so no other
        tenant rebalances onto a VM that is about to disappear.
        """

    def _migration_complete(
        self, action: ScalingAction, old_vm_ids: List[str], report: MigrationReport
    ) -> None:
        action.report = report
        action.completed_at = self.runtime.sim.now
        self._release_capacity(action, old_vm_ids)
        self.tier = action.to_tier
        self._migration_in_flight = False
        self._cooldown_until = self.runtime.sim.now + self.config.cooldown_s

    def _release_capacity(self, action: ScalingAction, old_vm_ids: List[str]) -> None:
        """Deprovision the VMs the migration vacated.

        VMs that still host executors (on a shared fleet, another tenant's)
        are skipped: they keep accruing cost until genuinely empty.
        """
        for vm_id in old_vm_ids:
            if vm_id not in self.runtime.cluster:
                continue
            vm = self.runtime.cluster.vm(vm_id)
            if vm.occupied_slots:
                continue  # something still lives there, keep paying
            self.provider.release_from(self.runtime.cluster, vm_id)
            action.deprovisioned_vm_ids.append(vm_id)

    # ------------------------------------------------------ unplanned failures
    def handle_vm_failure(self, vm_id: str, kind: str = "kill") -> Optional[RecoveryRecord]:
        """Recover from a VM the cloud reclaimed with zero effective notice.

        Tears the VM down through :meth:`TopologyRuntime.fail_vm` (killing its
        executors, failing their tuple trees fast, releasing the slots),
        finalizes its billing, and — when executors were lost — provisions
        on-demand replacement capacity if the surviving fleet cannot host
        them, re-places the victims with an incremental rebalance (survivors
        keep their slots), and restores their keyed state from the last
        stored checkpoint via a targeted INIT wave.

        If the VM was mid-*evacuation* (its eviction deadline arrived before
        the drain finished), the in-flight evacuation migration already
        re-places everything; no second recovery is started.  A pending
        scaling action loses the dead VM from its fleet lists; a delta VM
        that dies before its migration is enacted is replaced like-for-like
        (or the action is aborted when no target VMs remain).

        Returns the recovery record, or ``None`` if the VM is unknown.
        """
        runtime = self.runtime
        if vm_id not in runtime.cluster:
            return None
        vm = runtime.cluster.vm(vm_id)
        vm_type = vm.vm_type
        failure = runtime.fail_vm(vm_id)
        if vm.deprovisioned_at is None:
            self.provider.mark_failed(vm)
        record = RecoveryRecord(
            vm_id=vm_id,
            kind=kind,
            failed_at=failure.failed_at,
            lost_executors=list(failure.lost),
            events_lost=failure.events_lost,
            trees_failed=failure.trees_failed,
        )
        self.recoveries.append(record)
        self._prune_dead_vm(vm_id, vm_type)
        evacuation = self._active_evacuation(vm_id)
        if evacuation is not None:
            evacuation.overrun = True
            if not evacuation.migration_issued:
                # The drain never got going (still waiting on capacity or on
                # another migration): unplanned recovery owns the mess now.
                evacuation.completed_at = runtime.sim.now
                self._migration_in_flight = False
                evacuation = None
        if not failure.lost:
            record.restored_at = runtime.sim.now
        elif evacuation is None:
            self._plan_recovery(record, vm_type)
        # else: the in-flight evacuation migration re-places and re-inits the
        # victims through its own rebalance + INIT wave.
        return record

    def handle_eviction_notice(self, vm_id: str, deadline: float) -> Optional[EvacuationRecord]:
        """React to a spot eviction notice: drain the doomed VM in the window.

        Provisions replacement capacity if needed — the notice window buys
        time to shop the market, so replacements go to whichever of spot /
        on-demand is cheaper over ``evacuation_horizon_s`` — then migrates
        every executor off the doomed VM with the configured strategy and
        releases it, stopping its bill *before* the deadline.  If a scaling
        migration is in flight the drain retries until the window closes; a
        deadline overrun degrades to the unplanned :meth:`handle_vm_failure`
        path when the injector fires the kill.

        Returns the evacuation record, or ``None`` if the VM is unknown.
        """
        runtime = self.runtime
        if vm_id not in runtime.cluster:
            return None
        record = EvacuationRecord(vm_id=vm_id, notice_at=runtime.sim.now, deadline=deadline)
        self.evacuations.append(record)
        self._try_evacuate(record)
        return record

    # --------------------------------------------------------- recovery internals
    def _active_evacuation(self, vm_id: str) -> Optional[EvacuationRecord]:
        for record in reversed(self.evacuations):
            if record.vm_id == vm_id and record.started_at is not None and record.completed_at is None:
                return record
        return None

    def _prune_dead_vm(self, vm_id: str, vm_type: VMType) -> None:
        """Drop a vanished VM from the pending action's fleet lists."""
        action = self.last_action
        if action is None or action.is_complete or action.aborted:
            return
        if vm_id in action.kept_vm_ids:
            action.kept_vm_ids.remove(vm_id)
        if vm_id in action.provisioned_vm_ids:
            action.provisioned_vm_ids.remove(vm_id)
            if action.enacted_at is None:
                self._replace_dead_delta(action, vm_type)

    def _replace_dead_delta(self, action: ScalingAction, vm_type: VMType) -> None:
        """A delta VM died before its migration was enacted.

        Provision a like-for-like replacement so the staged migration still
        has its target fleet — unless *no* target VMs remain at all, in which
        case the action is aborted (and the ``_action_aborted`` hook lets the
        multi-tenant controller return its reservation to the arbiter).
        """
        if not action.provisioned_vm_ids and not action.kept_vm_ids:
            self._abort_action(action)
            return
        vms = self.provider.provision(vm_type, 1, name_prefix=vm_type.name.lower())
        for vm in vms:
            self.runtime.cluster.add_vm(vm)
            action.provisioned_vm_ids.append(vm.vm_id)
        self._delta_replaced(action, vms)

    def _delta_replaced(self, action: ScalingAction, vms: List[VirtualMachine]) -> None:
        """Hook: replacement VMs provisioned for a pending action's dead delta."""

    def _abort_action(self, action: ScalingAction) -> None:
        action.aborted = True
        action.completed_at = self.runtime.sim.now
        self._migration_in_flight = False
        self._action_aborted(action)

    def _action_aborted(self, action: ScalingAction) -> None:
        """Hook: a pending action was abandoned (all its target VMs died)."""

    def _vm_eligible(self, vm: VirtualMachine) -> bool:
        """Whether recovery/evacuation may place onto this VM (tenant filter hook)."""
        return True

    def _free_worker_slots(self, exclude_vm_ids: Sequence[str] = ()) -> int:
        runtime = self.runtime
        excluded = set(exclude_vm_ids)
        return sum(
            sum(1 for slot in vm.slots if not slot.occupied)
            for vm in runtime.cluster.vms
            if vm.vm_id != runtime.util_vm_id
            and vm.vm_id not in excluded
            and self._vm_eligible(vm)
        )

    def _rebuild_plan(self, exclude_vm_ids: Sequence[str] = ()) -> PlacementPlan:
        """Incremental repair placement: survivors keep their slots.

        Targets every eligible worker VM except the excluded (doomed) ones;
        only executors stranded without a live slot move.  Sources and sinks
        stay pinned where they are.
        """
        runtime = self.runtime
        excluded = set(exclude_vm_ids)
        targets = [
            vm.vm_id
            for vm in runtime.cluster.vms
            if vm.vm_id != runtime.util_vm_id
            and vm.vm_id not in excluded
            and self._vm_eligible(vm)
        ]
        preplaced = PlacementPlan()
        for executor in list(runtime.source_executors) + list(runtime.sink_executors):
            slot_id = runtime.placement.assignments[executor.executor_id]
            preplaced.assign(executor.executor_id, slot_id, runtime.placement.slot_to_vm[slot_id])
        user_ids = [e.executor_id for e in runtime.user_executors]
        return incremental_plan(user_ids, runtime.cluster, runtime.placement, targets, preplaced=preplaced)

    def _plan_recovery(self, record: RecoveryRecord, vm_type: VMType) -> None:
        deficit = len(record.lost_executors) - self._free_worker_slots()
        if deficit <= 0:
            self._enact_recovery(record)
            return
        # No notice window to shop the market in: unplanned recovery pays
        # on-demand for reliability.  Provisioning draws straggler/failure
        # tails; recovery waits for the last replacement.
        count = math.ceil(deficit / vm_type.slots)
        tickets = self.provider.provision_with_latency(
            vm_type, count, name_prefix="rescue", market=ON_DEMAND
        )
        record.pending_replacements = len(tickets)
        for ticket in tickets:
            record.provisioning_failures += ticket.failures
            self.runtime.sim.schedule(ticket.delay_s, self._replacement_ready, record, ticket.vm)

    def _replacement_ready(self, record: RecoveryRecord, vm: VirtualMachine) -> None:
        self.runtime.cluster.add_vm(vm)
        record.replacement_vm_ids.append(vm.vm_id)
        self._replacement_provisioned(record, vm)
        record.pending_replacements -= 1
        if record.pending_replacements == 0:
            self._enact_recovery(record)

    def _replacement_provisioned(self, record: RecoveryRecord, vm: VirtualMachine) -> None:
        """Hook: a replacement VM joined the cluster (tenant tags + arbiter sync)."""

    def _enact_recovery(self, record: RecoveryRecord) -> None:
        runtime = self.runtime
        lost = [eid for eid in record.lost_executors if eid in runtime.executors]
        if not lost:
            record.restored_at = runtime.sim.now
            return
        plan = self._rebuild_plan()
        record.rebalanced_at = runtime.sim.now
        runtime.rebalance(plan, on_command_complete=lambda _rec: self._restore_lost(record))

    def _restore_lost(self, record: RecoveryRecord) -> None:
        runtime = self.runtime
        lost = [eid for eid in record.lost_executors if eid in runtime.executors]
        runtime.restore_executors(lost, on_complete=lambda: self._recovery_complete(record))

    def _recovery_complete(self, record: RecoveryRecord) -> None:
        record.restored_at = self.runtime.sim.now

    # ------------------------------------------------------- evacuation internals
    def _try_evacuate(self, record: EvacuationRecord) -> None:
        runtime = self.runtime
        now = runtime.sim.now
        if record.vm_id not in runtime.cluster or record.completed_at is not None:
            return
        if now >= record.deadline:
            return  # too late: the kill will take the unplanned path
        if self._migration_in_flight:
            retry = min(5.0, max(0.5, record.deadline - now))
            runtime.sim.schedule(retry, self._try_evacuate, record)
            return
        vm = runtime.cluster.vm(record.vm_id)
        hosted = [
            slot.executor_id for slot in vm.occupied_slots if slot.executor_id in runtime.executors
        ]
        if not hosted:
            # Nothing of ours on the doomed VM: release it now, stop the bill.
            record.started_at = now
            record.completed_at = now
            if not vm.occupied_slots:
                self.provider.release_from(runtime.cluster, record.vm_id)
            record.evaded = record.vm_id not in runtime.cluster
            return
        record.started_at = now
        self._migration_in_flight = True
        deficit = len(hosted) - self._free_worker_slots(exclude_vm_ids=(record.vm_id,))
        if deficit > 0:
            self._provision_evacuation_capacity(record, vm.vm_type, deficit)
        else:
            self._start_evacuation(record)

    def _provision_evacuation_capacity(
        self, record: EvacuationRecord, vm_type: VMType, deficit_slots: int
    ) -> None:
        market = ON_DEMAND
        if self.provider.spot_market is not None:
            plan = cost_optimal_fleet(
                deficit_slots,
                horizon_s=self.config.evacuation_horizon_s,
                billing_granularity_s=self.provider.billing_granularity_s,
                spot=self.provider.spot_market,
                flavours=(vm_type,),
            )
            market = plan.choices[0].market
        record.replacement_market = market
        count = math.ceil(deficit_slots / vm_type.slots)
        tickets = self.provider.provision_with_latency(
            vm_type, count, name_prefix="evac", market=market
        )
        record.pending_replacements = len(tickets)
        for ticket in tickets:
            self.runtime.sim.schedule(ticket.delay_s, self._evacuation_vm_ready, record, ticket.vm)

    def _evacuation_vm_ready(self, record: EvacuationRecord, vm: VirtualMachine) -> None:
        self.runtime.cluster.add_vm(vm)
        record.replacement_vm_ids.append(vm.vm_id)
        self._evacuation_capacity_ready(record, vm)
        record.pending_replacements -= 1
        if record.pending_replacements > 0:
            return
        if record.completed_at is not None or record.vm_id not in self.runtime.cluster:
            return  # deadline overran the provisioning; recovery owns the fleet
        self._start_evacuation(record)

    def _evacuation_capacity_ready(self, record: EvacuationRecord, vm: VirtualMachine) -> None:
        """Hook: an evacuation replacement VM joined the cluster."""

    def _start_evacuation(self, record: EvacuationRecord) -> None:
        runtime = self.runtime
        record.migration_issued = True
        plan = self._rebuild_plan(exclude_vm_ids=(record.vm_id,))
        strategy = self.strategy_cls(runtime)
        self._evacuation_starting(record)
        record.report = strategy.migrate(
            plan, on_complete=lambda report: self._evacuation_complete(record, report)
        )

    def _evacuation_starting(self, record: EvacuationRecord) -> None:
        """Hook: evacuation migration issued (tenant registers the doomed VM as retiring)."""

    def _evacuation_complete(self, record: EvacuationRecord, report: MigrationReport) -> None:
        runtime = self.runtime
        record.report = report
        record.completed_at = runtime.sim.now
        self._migration_in_flight = False
        vm_id = record.vm_id
        if vm_id in runtime.cluster and not runtime.cluster.vm(vm_id).occupied_slots:
            # Drained before the deadline: billing stops here and the
            # eviction finds nothing to reclaim.
            self.provider.release_from(runtime.cluster, vm_id)
        # An overrun VM vanished because the cloud killed it, not because we
        # got out in time.
        record.evaded = not record.overrun and vm_id not in runtime.cluster
        self._evacuation_finished(record)

    def _evacuation_finished(self, record: EvacuationRecord) -> None:
        """Hook: evacuation protocol done (tenant clears its retiring registration)."""
