"""The autoscaling controller: a thin driver over the control-plane pipeline.

Every check interval the controller runs the staged decision pipeline
(:class:`~repro.elastic.policy.ControlPipeline`: ``sense -> forecast ->
plan``), and -- after the configured hysteresis has confirmed the signal and
any cooldown has expired -- enacts the change through the pipeline's *place*
stage:

1. **provision** the VMs the place stage requests through the
   :class:`CloudProvider` (billing starts immediately; the migration waits
   for the modelled provisioning latency, as the paper's experiments
   provision target VMs before issuing the migration request).  The default
   :class:`~repro.elastic.policy.FullReplacePlacement` provisions the whole
   target fleet; :class:`~repro.elastic.policy.IncrementalPlacement` keeps
   the current fleet on a grow and provisions only the delta;
2. **plan** the new placement via the place stage (sources/sinks stay
   pinned);
3. **migrate** with the configured, pluggable
   :class:`~repro.core.strategy.MigrationStrategy` (DSM, DCR or CCR) --
   issuing a *combined rescale + migrate* decision when the planner runs
   with ``elastic_parallelism`` (the strategy changes task instance counts
   mid-protocol and the placement is planned against the new executor set);
4. **deprovision** the vacated worker VMs once the protocol completes, so
   scale-in actually reduces the bill.

Hysteresis (``confirm_samples`` consecutive agreeing samples) filters
short-lived spikes such as :class:`~repro.workloads.profiles.BurstProfile`
bursts; the cooldown keeps back-to-back migrations apart.  Samples taken
while the sources are paused (mid-protocol) are ignored.

Two signals make the loop **drain-aware**:

* decisions track the monitor's ``offered_rate`` (events *generated* per
  second) rather than the raw emission rate, so a post-migration backlog
  drain -- whose burst looks exactly like a fresh surge on the wire -- does
  not trigger a spurious scale-out;
* a scale-in is held while the observed backlog (executor queues plus source
  backlogs) exceeds ``drain_guard_backlog_s`` seconds of offered load:
  consolidating a dataflow that is still absorbing a surge would strand the
  very backlog it is draining on a smaller allocation.

Beyond the reactive threshold rule, the pipeline makes the loop
**predictive and SLO-aware**: a forecast policy (EWMA / Holt-Winters /
profile lookahead) sizes capacity for the demand a provisioning horizon
ahead, and a sustained sink-latency SLO breach escalates to a scale-out even
when the input rate alone is in band.  With the defaults (reactive forecast,
no SLO, full-replace placement) the behaviour is bit-identical to the
pre-pipeline controller.

Subclasses can reroute capacity through an external authority (the
multi-tenant :class:`~repro.multi.tenant.TenantController` asks a
:class:`~repro.multi.arbiter.ScaleArbiter` before provisioning) by
overriding :meth:`ElasticityController._acquire_capacity` and
:meth:`ElasticityController._release_capacity`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

from repro.cluster.cloud import CloudProvider
from repro.cluster.vm import VM_TYPES
from repro.core.strategy import MigrationReport, MigrationStrategy
from repro.elastic.forecast import ForecastPolicy
from repro.elastic.monitor import ElasticityMonitor, MonitorSample
from repro.elastic.planner import (
    TIER_ORDER,
    AllocationPlanner,
    TargetAllocation,
)
from repro.elastic.policy import ControlPipeline, PlacementPolicy, PlanDecision
from repro.engine.runtime import TopologyRuntime


@dataclass
class ControllerConfig:
    """Tuning knobs of the elastic control loop."""

    #: Interval between control ticks (each tick takes one monitor sample).
    check_interval_s: float = 15.0
    #: Consecutive samples that must agree on a different tier before acting.
    confirm_samples: int = 2
    #: Quiet period after a completed migration before the next one may start.
    cooldown_s: float = 60.0
    #: Whether to wait the provider's provisioning latency between provisioning
    #: the target VMs and issuing the migration (the paper plans ahead, so the
    #: VMs are ready when the migration request is issued).
    wait_for_provisioning: bool = True
    #: Drain-aware scale-in guard: a consolidation is deferred while the total
    #: backlog exceeds this many seconds of offered load (``None`` or 0
    #: disables the guard).  Scale-outs are never held -- extra capacity only
    #: helps a drain.
    drain_guard_backlog_s: Optional[float] = 5.0
    #: Forecast stage: named demand forecaster (see
    #: :data:`~repro.elastic.forecast.FORECAST_POLICIES`).  ``reactive`` is
    #: the identity forecast -- the original controller behaviour.
    forecast_policy: str = "reactive"
    #: How far ahead the forecaster predicts (seconds).  ``None`` derives the
    #: horizon from the provisioning latency plus the hysteresis window --
    #: the earliest a decision taken now can become ready capacity.
    forecast_horizon_s: Optional[float] = None
    #: Forecasts within this fraction of the observed rate snap to the
    #: observed rate (smoothing noise must not read as pressure; see
    #: :meth:`~repro.elastic.policy.ForecastStage.forecast`).
    forecast_deadband: float = 0.05
    #: Sink-latency SLO (seconds of mean end-to-end latency); ``None``
    #: disables SLO tracking and the overload override.
    slo_latency_s: Optional[float] = None
    #: Consecutive SLO-breaching samples before the overload override may
    #: escalate an in-band plan.
    slo_confirm_samples: int = 2
    #: Demand multiplier the SLO override plans with (capacity headroom to
    #: actually drain the backlog the breach built).
    slo_headroom: float = 1.5
    #: Whether measured per-task service rates are fed back into the planner
    #: (closing the heterogeneous-latency loop).  Off by default: the paper's
    #: 1-per-8-ev/s sizing rule stays authoritative unless asked otherwise.
    capacity_feedback: bool = False
    #: Place stage: ``incremental`` (keep unchanged instances in their slots,
    #: place and migrate only the delta — the default) or ``full-replace``
    #: (the paper's re-fleet: provision a whole new fleet and move everything).
    placement: str = "incremental"

    def __post_init__(self) -> None:
        if self.check_interval_s <= 0:
            raise ValueError("check_interval_s must be positive")
        if self.confirm_samples < 1:
            raise ValueError("confirm_samples must be at least 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        if self.drain_guard_backlog_s is not None and self.drain_guard_backlog_s < 0:
            raise ValueError("drain_guard_backlog_s must be non-negative (or None)")
        if self.forecast_horizon_s is not None and self.forecast_horizon_s < 0:
            raise ValueError("forecast_horizon_s must be non-negative (or None)")
        if self.forecast_deadband < 0:
            raise ValueError("forecast_deadband must be non-negative")
        if self.slo_latency_s is not None and self.slo_latency_s <= 0:
            raise ValueError("slo_latency_s must be positive (or None)")
        if self.slo_confirm_samples < 1:
            raise ValueError("slo_confirm_samples must be at least 1")
        if self.slo_headroom <= 1.0:
            raise ValueError("slo_headroom must be above 1")


@dataclass
class ScalingAction:
    """Bookkeeping for one enacted scaling decision."""

    #: ``out`` (toward more capacity / smaller VMs) or ``in`` (toward less
    #: capacity / bigger VMs).
    direction: str
    #: The tier the controller moved from / to.
    from_tier: str
    to_tier: str
    #: Simulated time of the decision (after hysteresis confirmed it).
    decided_at: float
    #: Offered input rate (generated ev/s) that triggered the decision.
    observed_rate: float
    #: The planner's allocation behind the decision.
    target: TargetAllocation
    #: Forecast demand (ev/s) the plan was sized for (equals
    #: ``observed_rate`` under the reactive policy).
    forecast_rate: Optional[float] = None
    #: Whether the latency-SLO override escalated this decision (the input
    #: rate alone would not have triggered it).
    slo_escalated: bool = False
    #: VM flavour -> count the place stage asked to provision fresh (equals
    #: ``target.vm_counts`` under full-replace placement).
    provision_counts: Dict[str, int] = field(default_factory=dict)
    #: Existing worker VMs the place stage retained (incremental placement).
    kept_vm_ids: List[str] = field(default_factory=list)
    provisioned_vm_ids: List[str] = field(default_factory=list)
    deprovisioned_vm_ids: List[str] = field(default_factory=list)
    #: When the migration request was issued (after provisioning).
    enacted_at: Optional[float] = None
    completed_at: Optional[float] = None
    #: The strategy's migration report, filled in as the protocol runs.
    report: Optional[MigrationReport] = None

    @property
    def is_complete(self) -> bool:
        """Whether the migration protocol for this action has finished."""
        return self.completed_at is not None

    @property
    def provision_slots(self) -> int:
        """New VM slots this action will provision -- what an arbiter budgets.

        Equals the full target fleet under full-replace placement and only
        the delta under incremental placement (retained VMs are already in
        the fleet's physical accounting); a consolidation that re-uses free
        shared slots provisions zero.
        """
        return sum(VM_TYPES[name].slots * count for name, count in self.provision_counts.items())


class ElasticityController:
    """Watches the monitor and migrates the dataflow between VM allocations."""

    def __init__(
        self,
        runtime: TopologyRuntime,
        provider: CloudProvider,
        monitor: ElasticityMonitor,
        planner: AllocationPlanner,
        strategy_cls: Type[MigrationStrategy],
        config: Optional[ControllerConfig] = None,
        initial_tier: str = "baseline",
        pipeline: Optional[ControlPipeline] = None,
        forecast_policy: Optional[ForecastPolicy] = None,
        placement: Optional[PlacementPolicy] = None,
    ) -> None:
        if initial_tier not in TIER_ORDER:
            raise ValueError(f"unknown tier {initial_tier!r}; choose from {sorted(TIER_ORDER)}")
        self.runtime = runtime
        self.provider = provider
        self.monitor = monitor
        self.planner = planner
        self.strategy_cls = strategy_cls
        self.config = config if config is not None else ControllerConfig()
        #: The staged decision path.  A fully assembled pipeline may be
        #: injected; otherwise one is built from the config, with optional
        #: ``forecast_policy`` / ``placement`` instances overriding the
        #: config's named choices (a lookahead policy carries the workload's
        #: profile; a shared-fleet placer carries the manager's exclusions).
        if pipeline is None:
            pipeline = ControlPipeline.from_config(
                monitor,
                planner,
                self.config,
                provisioning_latency_s=provider.provisioning_latency_s,
                forecast_policy=forecast_policy,
                placement=placement,
            )
        self.pipeline = pipeline
        self.tier = initial_tier
        self.actions: List[ScalingAction] = []
        self._timer = None
        self._pending_tier: Optional[str] = None
        self._pending_count = 0
        self._migration_in_flight = False
        self._cooldown_until = float("-inf")

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the periodic control loop."""
        if self._timer is None:
            self._timer = self.runtime.sim.every(self.config.check_interval_s, self._tick)

    def stop(self) -> None:
        """Stop the control loop (a migration already in flight still completes)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def migration_in_flight(self) -> bool:
        """Whether a scaling migration is currently being enacted."""
        return self._migration_in_flight

    @property
    def last_action(self) -> Optional[ScalingAction]:
        """The most recent scaling action, if any."""
        return self.actions[-1] if self.actions else None

    # ------------------------------------------------------------ control loop
    def _tick(self) -> None:
        # Stage 1: sense.  The forecast policy observes *every* reading --
        # including ticks skipped below -- so its series has no gaps.
        reading = self.pipeline.sense()
        self.pipeline.observe(reading)
        sample = reading.sample
        if self._migration_in_flight or sample.sources_paused:
            return

        # Stages 2+3: forecast the demand and size the target allocation.
        decision = self.pipeline.decide(reading, current_tier=self.tier)
        target = decision.target
        # A change is pending when the tier moves *or* the demand calls for a
        # parallelism change within the same tier (e.g. a second surge on an
        # already-expanded deployment still has to add instances).
        if target.tier == self.tier and target.rescale is None:
            self._pending_tier = None
            self._pending_count = 0
            return

        if target.tier != self._pending_tier:
            self._pending_tier = target.tier
            self._pending_count = 1
        else:
            self._pending_count += 1
        if self._pending_count < self.config.confirm_samples:
            return
        if self.runtime.sim.now < self._cooldown_until:
            return
        if self._direction_of(target) == "in" and self._drain_guard_holds(sample):
            return
        self._enact(decision, sample)

    def _direction_of(self, target: TargetAllocation) -> str:
        """``out`` (adding capacity) or ``in`` (consolidating) for a target."""
        if target.tier != self.tier:
            return "out" if TIER_ORDER[target.tier] > TIER_ORDER[self.tier] else "in"
        # Same-tier rescale: the direction is given by the slot delta.  The
        # delta cannot be zero here -- the planner only attaches a same-tier
        # rescale when the pressure is out of band, which means the required
        # slot count strictly differs from the deployed one.
        return "out" if target.hosted_slots > self.runtime.dataflow.total_instances() else "in"

    def _drain_guard_holds(self, sample: MonitorSample) -> bool:
        """Whether the drain-aware guard vetoes a scale-in right now.

        The confirmation state is deliberately left intact: the moment the
        backlog is absorbed, the already-confirmed consolidation proceeds.
        """
        guard_s = self.config.drain_guard_backlog_s
        if not guard_s:
            return False
        backlog = sample.queue_backlog + sample.source_backlog
        return backlog > guard_s * max(sample.offered_rate, 1.0)

    # -------------------------------------------------------------- enactment
    def _enact(self, decision: PlanDecision, sample: MonitorSample) -> None:
        target = decision.target
        direction = self._direction_of(target)
        # Stage 4: place.  The place stage decides what to provision fresh
        # and which of the current worker VMs keep serving.
        request = self.pipeline.place.provisioning(self.runtime, target, direction)
        action = ScalingAction(
            direction=direction,
            from_tier=self.tier,
            to_tier=target.tier,
            decided_at=self.runtime.sim.now,
            observed_rate=sample.offered_rate,
            target=target,
            forecast_rate=decision.forecast.rate_ev_s,
            slo_escalated=decision.slo_escalated,
            provision_counts=dict(request.vm_counts),
            kept_vm_ids=list(request.keep_vm_ids),
        )
        if not self._acquire_capacity(action):
            # Capacity withheld (an arbiter deferred us): keep the confirmed
            # pending state so the next tick proposes again.
            return
        self.actions.append(action)
        self._migration_in_flight = True
        self._pending_tier = None
        self._pending_count = 0
        delay = self.provider.provisioning_latency_s if self.config.wait_for_provisioning else 0.0
        self.runtime.sim.schedule(delay, self._start_migration, action)

    def _acquire_capacity(self, action: ScalingAction) -> bool:
        """Provision the requested fleet for an action; ``False`` defers it.

        Billing for the new fleet starts now; the migration request waits for
        the VMs to come up.  Subclasses may consult an external authority and
        return ``False`` to leave the decision pending.
        """
        for type_name, count in sorted(action.provision_counts.items()):
            vm_type = VM_TYPES[type_name]
            for vm in self.provider.provision(vm_type, count, name_prefix=type_name.lower()):
                self.runtime.cluster.add_vm(vm)
                action.provisioned_vm_ids.append(vm.vm_id)
        return True

    def _start_migration(self, action: ScalingAction) -> None:
        # Worker VMs in use before the migration; vacated ones are released
        # once the protocol completes.  VMs the place stage retained and the
        # util VM never migrate.  Sorted: ``vms_used`` is a set, and
        # release/record order must not depend on PYTHONHASHSEED
        # (cross-process reproducibility).
        retained = set(action.provisioned_vm_ids) | set(action.kept_vm_ids)
        old_vm_ids = [
            vm_id
            for vm_id in sorted(self.runtime.placement.vms_used)
            if vm_id != self.runtime.util_vm_id and vm_id not in retained
        ]
        target_vm_ids = list(action.kept_vm_ids) + list(action.provisioned_vm_ids)
        place = self.pipeline.place
        strategy = self.strategy_cls(self.runtime)
        action.enacted_at = self.runtime.sim.now
        self._migration_starting(action, old_vm_ids)
        if action.target.rescale is not None:
            # Combined rescale + migrate: the placement must be planned after
            # the strategy has applied the parallelism change (the executor
            # set it places does not exist yet), so pass a plan factory.
            action.report = strategy.migrate(
                lambda runtime: place.placement_plan(runtime, target_vm_ids),
                on_complete=lambda report: self._migration_complete(action, old_vm_ids, report),
                rescale=action.target.rescale,
            )
        else:
            new_plan = place.placement_plan(self.runtime, target_vm_ids)
            action.report = strategy.migrate(
                new_plan,
                on_complete=lambda report: self._migration_complete(action, old_vm_ids, report),
            )

    def _migration_starting(self, action: ScalingAction, old_vm_ids: List[str]) -> None:
        """Hook fired when the migration request is issued (post-provisioning).

        ``old_vm_ids`` are the worker VMs the migration will vacate; the
        multi-tenant controller registers them as *retiring* so no other
        tenant rebalances onto a VM that is about to disappear.
        """

    def _migration_complete(
        self, action: ScalingAction, old_vm_ids: List[str], report: MigrationReport
    ) -> None:
        action.report = report
        action.completed_at = self.runtime.sim.now
        self._release_capacity(action, old_vm_ids)
        self.tier = action.to_tier
        self._migration_in_flight = False
        self._cooldown_until = self.runtime.sim.now + self.config.cooldown_s

    def _release_capacity(self, action: ScalingAction, old_vm_ids: List[str]) -> None:
        """Deprovision the VMs the migration vacated.

        VMs that still host executors (on a shared fleet, another tenant's)
        are skipped: they keep accruing cost until genuinely empty.
        """
        for vm_id in old_vm_ids:
            if vm_id not in self.runtime.cluster:
                continue
            vm = self.runtime.cluster.vm(vm_id)
            if vm.occupied_slots:
                continue  # something still lives there, keep paying
            self.provider.release_from(self.runtime.cluster, vm_id)
            action.deprovisioned_vm_ids.append(vm_id)
