"""Grouped-state re-partitioning: FIELDS re-keying invariants and round-trips.

Satellite coverage for the rescale tentpole: the stable key -> instance
mapping is preserved across no-op rescales, every key is owned by exactly one
instance after growing or shrinking a grouped task, and re-partitioned state
round-trips through the state store without losing or duplicating anything.
"""

from __future__ import annotations

import zlib

import pytest

from repro.dataflow.grouping import field_key_of, stable_field_index
from repro.dataflow.task import Task
from repro.reliability.repartition import (
    PARTITIONED_STATE_KEY,
    checkpoint_key,
    merge_states,
    repartition_task_state,
    split_pending_events,
    split_state,
)
from repro.reliability.statestore import StateStore
from repro.sim import Simulator

KEYS = [f"vehicle-{i}" for i in range(40)]


def keyed_states(num_instances: int, weight: int = 1):
    """Per-instance states as the old partitioning would have produced them."""
    states = [
        {PARTITIONED_STATE_KEY: {}, "processed": 0} for _ in range(num_instances)
    ]
    for key in KEYS:
        index = stable_field_index(key, num_instances)
        states[index][PARTITIONED_STATE_KEY][key] = weight
        states[index]["processed"] += weight
    return states


class TestStableFieldIndex:
    def test_matches_crc32(self):
        assert stable_field_index("vehicle-17", 3) == zlib.crc32(b"vehicle-17") % 3

    def test_same_key_same_instance_across_calls(self):
        for key in KEYS:
            assert stable_field_index(key, 5) == stable_field_index(key, 5)

    def test_noop_rescale_preserves_affinity(self):
        """Same instance count -> identical key mapping (no-op rescale invariant)."""
        before = {key: stable_field_index(key, 4) for key in KEYS}
        after = {key: stable_field_index(key, 4) for key in KEYS}
        assert before == after

    def test_field_key_extraction_prefers_named_keys(self):
        assert field_key_of({"key": "a", "seq": 1}) == "a"
        assert field_key_of({"id": 7}) == "7"
        assert field_key_of({"seq": 3}) == "3"
        assert field_key_of("plain") == "plain"


class TestMergeSplit:
    @pytest.mark.parametrize("old_n,new_n", [(3, 5), (5, 2), (4, 4), (1, 6), (6, 1)])
    def test_full_coverage_no_duplication(self, old_n, new_n):
        by_key, aggregates = merge_states(keyed_states(old_n))
        parts = split_state(by_key, aggregates, new_n)
        seen = {}
        for index, part in enumerate(parts):
            for key in part.get(PARTITIONED_STATE_KEY, {}):
                assert key not in seen, f"key {key} duplicated on {seen[key]} and {index}"
                seen[key] = index
                # Affinity: the state entry lives where the router sends the key.
                assert index == stable_field_index(key, new_n)
        assert set(seen) == set(KEYS)

    def test_aggregates_summed_once(self):
        by_key, aggregates = merge_states(keyed_states(3, weight=2))
        assert aggregates["processed"] == 2 * len(KEYS)
        parts = split_state(by_key, aggregates, 5)
        totals = [part.get("processed", 0) for part in parts]
        assert sum(totals) == 2 * len(KEYS)
        # Exactly one owner for the task-level aggregate.
        assert sum(1 for t in totals if t) == 1

    def test_round_trip_grow_then_shrink(self):
        original_by_key, original_aggs = merge_states(keyed_states(3))
        grown = split_state(original_by_key, original_aggs, 7)
        back_by_key, back_aggs = merge_states(grown)
        assert back_by_key == original_by_key
        assert back_aggs == original_aggs
        shrunk = split_state(back_by_key, back_aggs, 2)
        final_by_key, final_aggs = merge_states(shrunk)
        assert final_by_key == original_by_key
        assert final_aggs == original_aggs

    def test_bool_flags_not_summed(self):
        _, aggregates = merge_states([{"ready": True}, {"ready": True}])
        assert aggregates["ready"] is True


class TestPendingEvents:
    class _FakeEvent:
        def __init__(self, key):
            self.payload = {"key": key}

    def test_keyed_pending_follows_field_key(self):
        events = [self._FakeEvent(key) for key in KEYS]
        buckets = split_pending_events(events, 4, keyed=True)
        for index, bucket in enumerate(buckets):
            for event in bucket:
                assert stable_field_index(event.payload["key"], 4) == index
        assert sum(len(b) for b in buckets) == len(events)

    def test_unkeyed_pending_round_robins(self):
        events = [self._FakeEvent(f"k{i}") for i in range(10)]
        buckets = split_pending_events(events, 3, keyed=False)
        assert [len(b) for b in buckets] == [4, 3, 3]


class TestStatestoreRoundTrip:
    def _store_with_task(self, old_n, stateful_pending=0):
        sim = Simulator()
        store = StateStore(sim)
        task = Task(name="keyed", stateful=True)
        for index, state in enumerate(keyed_states(old_n)):
            pending = [self._event(f"p{index}-{i}") for i in range(stateful_pending)]
            store.put(
                checkpoint_key("flow", f"keyed#{index}"),
                {"state": state, "pending": pending, "checkpoint_id": 9},
                size_bytes=task.state_size_bytes,
            )
        return sim, store, task

    class _event:
        def __init__(self, key):
            self.payload = {"key": key}

    @pytest.mark.parametrize("old_n,new_n", [(3, 5), (3, 1)])
    def test_repartition_round_trips_through_store(self, old_n, new_n):
        sim, store, task = self._store_with_task(old_n)
        stats = repartition_task_state(store, "flow", task, old_n, new_n, keyed=True)
        assert stats.keyed_entries == len(KEYS)
        assert stats.writes == new_n

        merged = {}
        total_processed = 0
        for index in range(new_n):
            value = store.peek(checkpoint_key("flow", f"keyed#{index}"))
            assert value is not None and value["checkpoint_id"] == 9
            part = value["state"].get(PARTITIONED_STATE_KEY, {})
            for key in part:
                assert key not in merged
                assert stable_field_index(key, new_n) == index
            merged.update(part)
            total_processed += value["state"].get("processed", 0)
        assert set(merged) == set(KEYS)
        assert total_processed == len(KEYS)
        # Stale keys beyond the new count are gone.
        for index in range(new_n, old_n):
            assert not store.contains(checkpoint_key("flow", f"keyed#{index}"))

    def test_repartition_moves_pending_events_to_key_owners(self):
        sim, store, task = self._store_with_task(2, stateful_pending=3)
        repartition_task_state(store, "flow", task, 2, 3, keyed=True)
        recovered = 0
        for index in range(3):
            value = store.peek(checkpoint_key("flow", f"keyed#{index}"))
            for event in value["pending"]:
                assert stable_field_index(event.payload["key"], 3) == index
                recovered += 1
        assert recovered == 6

    def test_repartition_without_checkpoints_is_a_noop(self):
        sim = Simulator()
        store = StateStore(sim)
        task = Task(name="keyed", stateful=True)
        stats = repartition_task_state(store, "flow", task, 2, 4, keyed=True)
        assert stats.writes == 0 and len(store) == 0
