"""Tests for runtime configuration objects and strategy configuration factories."""

from __future__ import annotations

import pytest

from repro.engine.config import ReliabilityConfig, RuntimeConfig, TimingConfig


class TestReliabilityConfig:
    def test_defaults_match_storm(self):
        config = ReliabilityConfig()
        assert config.ack_timeout_s == 30.0
        assert not config.ack_all_events
        assert config.periodic_checkpoint_interval_s is None
        assert not config.capture_on_prepare
        assert config.max_spout_pending is not None
        assert config.throttled_ticks_generate_backlog

    def test_dsm_factory_enables_acking_and_periodic_checkpoints(self):
        config = RuntimeConfig.for_dsm()
        assert config.reliability.ack_all_events
        assert config.reliability.periodic_checkpoint_interval_s == 30.0
        assert not config.reliability.capture_on_prepare

    def test_dcr_factory_disables_acking_and_capture(self):
        config = RuntimeConfig.for_dcr()
        assert not config.reliability.ack_all_events
        assert config.reliability.periodic_checkpoint_interval_s is None
        assert not config.reliability.capture_on_prepare

    def test_ccr_factory_enables_capture(self):
        config = RuntimeConfig.for_ccr()
        assert config.reliability.capture_on_prepare
        assert not config.reliability.ack_all_events

    def test_factories_propagate_seed(self):
        assert RuntimeConfig.for_dsm(seed=5).seed == 5
        assert RuntimeConfig.for_dcr(seed=6).seed == 6
        assert RuntimeConfig.for_ccr(seed=7).seed == 7


class TestTimingConfig:
    def test_defaults_are_calibrated_to_the_paper(self):
        timing = TimingConfig()
        assert timing.rebalance_command_mean_s == pytest.approx(7.26)
        assert timing.statestore_per_byte_latency_s == pytest.approx(5.0e-7)
        assert timing.quiesce_delay_s > 0
        assert timing.worker_start_base_s > 0

    def test_statestore_calibration_matches_2000_events_in_100ms(self):
        timing = TimingConfig()
        size_bytes = 2000 * 100
        latency_ms = (timing.statestore_base_latency_s + size_bytes * timing.statestore_per_byte_latency_s) * 1000
        assert latency_ms == pytest.approx(100.0, rel=0.05)


class TestRuntimeConfigCopy:
    def test_copy_is_deep_for_nested_configs(self):
        original = RuntimeConfig.for_dsm(seed=3)
        clone = original.copy()
        clone.reliability.ack_all_events = False
        clone.timing.rebalance_command_mean_s = 1.0
        clone.seed = 99
        assert original.reliability.ack_all_events
        assert original.timing.rebalance_command_mean_s == pytest.approx(7.26)
        assert original.seed == 3

    def test_copy_preserves_values(self):
        original = RuntimeConfig.for_ccr(seed=11)
        clone = original.copy()
        assert clone.seed == 11
        assert clone.reliability.capture_on_prepare
        assert clone.util_vm_role == original.util_vm_role
