"""Equivalence tests for the bisect-indexed EventLog and single-pass timelines.

The fast-path overhaul replaced the EventLog's linear scans with binary
searches over parallel monotone time arrays, and gave the timelines a
single-pass binning path.  These tests pin the new implementations to naive
reference implementations (the seed's original list comprehensions) on

* a recorded Grid steady-state run,
* a recorded closed-loop elastic run (migrations, replays, kills), and
* synthetic logs exercising empty windows, exact-boundary windows and
  equal-time ties,

asserting byte-identical results everywhere.
"""

from __future__ import annotations

import math

import pytest

from repro.dataflow import topologies
from repro.engine.runtime import TopologyRuntime
from repro.experiments.elastic import run_elastic_experiment
from repro.metrics.log import EventLog
from repro.metrics.timeline import RatePoint, latency_timeline, rate_timeline
from repro.sim import Simulator

from tests.conftest import build_cluster, fast_config


# ----------------------------------------------------------- naive references
def naive_receipts_after(log, time):
    return [r for r in log.sink_receipts if r.time >= time]


def naive_receipts_between(log, start, end):
    return [r for r in log.sink_receipts if start <= r.time < end]


def naive_emits_between(log, start, end):
    return [e for e in log.source_emits if start <= e.time < end]


def naive_first_receipt_after(log, time):
    candidates = naive_receipts_after(log, time)
    return min(candidates, key=lambda r: r.time) if candidates else None


def naive_last_old_receipt(log, migration_time):
    old = [
        r
        for r in log.sink_receipts
        if r.time >= migration_time and log.is_old_root(r.root_id, migration_time)
    ]
    return max(old, key=lambda r: r.time) if old else None


def naive_last_replay_receipt(log, migration_time):
    replays = [r for r in log.sink_receipts if r.time >= migration_time and r.replay_count > 0]
    return max(replays, key=lambda r: r.time) if replays else None


def naive_distinct_roots_received(log):
    return len({r.root_id for r in log.sink_receipts})


def naive_bin_rates(times, start, end, bin_s):
    if end <= start or bin_s <= 0:
        return []
    num_bins = int(math.ceil((end - start) / bin_s))
    counts = [0] * num_bins
    for t in times:
        if start <= t < end:
            counts[int((t - start) / bin_s)] += 1
    return [
        RatePoint(time=start + (i + 0.5) * bin_s, rate=count / bin_s)
        for i, count in enumerate(counts)
    ]


def naive_rate_timeline(log, kind, start, end, bin_s):
    times = [e.time for e in log.source_emits] if kind == "input" else [r.time for r in log.sink_receipts]
    return naive_bin_rates(times, start, end if end is not None else log.sim.now, bin_s)


def naive_latency_timeline(log, start, end, window_s):
    if end is None:
        end = log.sim.now
    if end <= start or window_s <= 0:
        return []
    num_windows = int(math.ceil((end - start) / window_s))
    sums = [0.0] * num_windows
    counts = [0] * num_windows
    for receipt in log.sink_receipts:
        if start <= receipt.time < end:
            index = int((receipt.time - start) / window_s)
            sums[index] += receipt.latency_s
            counts[index] += 1
    return [
        (start + (i + 0.5) * window_s, sums[i] / counts[i], counts[i])
        for i in range(num_windows)
        if counts[i]
    ]


# ------------------------------------------------------------------ fixtures
@pytest.fixture(scope="module")
def grid_log():
    """Event log of a 60 s Grid steady-state run (no migrations)."""
    sim = Simulator()
    cluster = build_cluster(sim, worker_vms=11)
    runtime = TopologyRuntime(topologies.grid(), cluster, sim=sim, config=fast_config("dcr"))
    runtime.deploy()
    runtime.start()
    sim.run(until=60.0)
    return runtime.log


@pytest.fixture(scope="module")
def elastic_log():
    """Event log of a closed-loop elastic run (migration, kills, replays)."""
    result = run_elastic_experiment(
        dag="traffic", strategy="dsm", profile="surge", duration_s=300.0, seed=11
    )
    return result.log


def interesting_times(log):
    """Query times covering empty, boundary and mid-run windows."""
    end = log.sim.now
    times = [0.0, -5.0, end, end + 10.0, end / 2, end / 3]
    if log.receipt_times:
        first = log.receipt_times[0]
        last = log.receipt_times[-1]
        # Exact record times probe the inclusive/exclusive boundaries.
        times += [first, last, (first + last) / 2.0]
    return times


LOG_FIXTURES = ["grid_log", "elastic_log"]


# ---------------------------------------------------------------- log queries
@pytest.mark.parametrize("log_fixture", LOG_FIXTURES)
class TestIndexedQueriesMatchNaive:
    def test_receipts_after(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        for t in interesting_times(log):
            assert log.receipts_after(t) == naive_receipts_after(log, t)

    def test_receipts_between(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        times = interesting_times(log)
        for start in times:
            for width in (0.0, 0.5, 10.0, 1e9):
                assert log.receipts_between(start, start + width) == naive_receipts_between(
                    log, start, start + width
                )
        # Inverted window: empty either way.
        assert log.receipts_between(50.0, 10.0) == naive_receipts_between(log, 50.0, 10.0) == []

    def test_emits_between(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        for start in interesting_times(log):
            assert log.emits_between(start, start + 10.0) == naive_emits_between(log, start, start + 10.0)

    def test_first_receipt_after(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        for t in interesting_times(log):
            assert log.first_receipt_after(t) == naive_first_receipt_after(log, t)

    def test_last_old_receipt(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        for t in interesting_times(log):
            assert log.last_old_receipt(t) == naive_last_old_receipt(log, t)

    def test_last_replay_receipt(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        for t in interesting_times(log):
            assert log.last_replay_receipt(t) == naive_last_replay_receipt(log, t)

    def test_distinct_roots_received(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        assert log.distinct_roots_received() == naive_distinct_roots_received(log)

    def test_time_arrays_parallel_to_records(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        assert log.receipt_times == [r.time for r in log.sink_receipts]
        assert log.emit_times == [e.time for e in log.source_emits]
        assert log.receipt_times == sorted(log.receipt_times)
        assert log.emit_times == sorted(log.emit_times)


# ------------------------------------------------------------------ timelines
@pytest.mark.parametrize("log_fixture", LOG_FIXTURES)
class TestTimelinesMatchNaive:
    def test_rate_timeline(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        for kind in ("input", "output"):
            for start, end, bin_s in [
                (0.0, None, 1.0),
                (0.0, None, 5.0),
                (30.0, 60.0, 2.5),
                (59.9, 60.0, 0.05),
                (0.0, 0.0, 1.0),   # empty window
                (80.0, 20.0, 1.0),  # inverted window
            ]:
                assert rate_timeline(log, kind=kind, start=start, end=end, bin_s=bin_s) == \
                    naive_rate_timeline(log, kind, start, end, bin_s)

    def test_latency_timeline(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        for start, end, window_s in [(0.0, None, 10.0), (25.0, 55.0, 5.0), (0.0, 0.0, 10.0)]:
            points = latency_timeline(log, start=start, end=end, window_s=window_s)
            assert [(p.time, p.latency_s, p.samples) for p in points] == \
                naive_latency_timeline(log, start, end, window_s)


# ----------------------------------------------------------- synthetic ties
class _Clock:
    def __init__(self) -> None:
        self.now = 0.0


def test_tie_times_and_boundaries_synthetic():
    """Equal-time records and exact-boundary queries match the naive scans."""
    clock = _Clock()
    log = EventLog(clock)  # type: ignore[arg-type]
    # Three roots emitted before t=10, received in tied clusters after it.
    for root in (1, 2, 3):
        clock.now = float(root)
        log.record_source_emit(root_id=root, source="source")
    for now, root, replay in [(10.0, 1, 0), (10.0, 2, 1), (10.0, 3, 1), (12.0, 9, 0), (12.0, 2, 1)]:
        clock.now = now
        log.record_sink_receipt(root_id=root, event_id=root * 100 + int(now), sink="sink",
                                root_emitted_at=float(root), replay_count=replay)
    clock.now = 15.0
    for t in (0.0, 1.0, 9.999, 10.0, 10.0000001, 12.0, 15.0, 20.0):
        assert log.receipts_after(t) == naive_receipts_after(log, t)
        assert log.first_receipt_after(t) == naive_first_receipt_after(log, t)
        assert log.last_old_receipt(t) == naive_last_old_receipt(log, t)
        assert log.last_replay_receipt(t) == naive_last_replay_receipt(log, t)
        assert log.receipts_between(t, 12.0) == naive_receipts_between(log, t, 12.0)
    assert log.distinct_roots_received() == naive_distinct_roots_received(log)


def test_empty_log_queries():
    """All queries behave on a freshly created, empty log."""
    log = EventLog(_Clock())  # type: ignore[arg-type]
    assert log.receipts_after(0.0) == []
    assert log.receipts_between(0.0, 100.0) == []
    assert log.emits_between(0.0, 100.0) == []
    assert log.first_receipt_after(0.0) is None
    assert log.last_old_receipt(0.0) is None
    assert log.last_replay_receipt(0.0) is None
    assert log.distinct_roots_received() == 0
    assert rate_timeline(log, kind="output", end=10.0) == naive_rate_timeline(log, "output", 0.0, 10.0, 1.0)
    assert latency_timeline(log, end=10.0) == []
