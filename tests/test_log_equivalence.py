"""Equivalence tests for the EventLog backends and single-pass timelines.

The fast-path overhaul replaced the EventLog's linear scans with binary
searches over parallel monotone time arrays, and gave the timelines a
single-pass binning path; the columnar overhaul then moved the whole record
store into numpy arrays behind the same query API.  These tests pin both
backends to naive reference implementations (the seed's original list
comprehensions) and to each other on

* a recorded Grid steady-state run,
* a recorded closed-loop elastic run (migrations, replays, kills),
* a sharded-run merge (both the heapq fallback and the lexsort array path),
  and
* synthetic logs exercising empty windows, exact-boundary windows and
  equal-time ties,

asserting byte-identical results everywhere — including
:func:`~repro.sim.shard.log_digest` equality between the classic and
columnar backends for every recorded scenario.
"""

from __future__ import annotations

import math

import pytest

from repro.dataflow import topologies
from repro.dataflow.event import reset_event_ids
from repro.core.strategy import strategy_by_name
from repro.engine.runtime import TopologyRuntime
from repro.experiments.elastic import run_elastic_experiment
from repro.experiments.sharded import run_sharded_experiment
from repro.metrics.log import HAVE_COLUMNAR, ColumnarEventLog, EventLog
from repro.metrics.timeline import RatePoint, latency_timeline, rate_timeline
from repro.sim import Simulator
from repro.sim.shard import (
    _merge_shard_results_columnar,
    _merge_shard_results_python,
    log_digest,
)

from tests.conftest import build_cluster, fast_config

#: Log backends under test; the columnar one needs numpy.
BACKENDS = ["classic"] + (["columnar"] if HAVE_COLUMNAR else [])

needs_columnar = pytest.mark.skipif(not HAVE_COLUMNAR, reason="numpy unavailable")


# ----------------------------------------------------------- naive references
def naive_receipts_after(log, time):
    return [r for r in log.sink_receipts if r.time >= time]


def naive_receipts_between(log, start, end):
    return [r for r in log.sink_receipts if start <= r.time < end]


def naive_emits_between(log, start, end):
    return [e for e in log.source_emits if start <= e.time < end]


def naive_first_receipt_after(log, time):
    candidates = naive_receipts_after(log, time)
    return min(candidates, key=lambda r: r.time) if candidates else None


def naive_last_old_receipt(log, migration_time):
    old = [
        r
        for r in log.sink_receipts
        if r.time >= migration_time and log.is_old_root(r.root_id, migration_time)
    ]
    return max(old, key=lambda r: r.time) if old else None


def naive_last_replay_receipt(log, migration_time):
    replays = [r for r in log.sink_receipts if r.time >= migration_time and r.replay_count > 0]
    return max(replays, key=lambda r: r.time) if replays else None


def naive_distinct_roots_received(log):
    return len({r.root_id for r in log.sink_receipts})


def naive_bin_rates(times, start, end, bin_s):
    if end <= start or bin_s <= 0:
        return []
    num_bins = int(math.ceil((end - start) / bin_s))
    counts = [0] * num_bins
    for t in times:
        if start <= t < end:
            counts[int((t - start) / bin_s)] += 1
    return [
        RatePoint(time=start + (i + 0.5) * bin_s, rate=count / bin_s)
        for i, count in enumerate(counts)
    ]


def naive_rate_timeline(log, kind, start, end, bin_s):
    times = [e.time for e in log.source_emits] if kind == "input" else [r.time for r in log.sink_receipts]
    return naive_bin_rates(times, start, end if end is not None else log.sim.now, bin_s)


def naive_latency_timeline(log, start, end, window_s):
    if end is None:
        end = log.sim.now
    if end <= start or window_s <= 0:
        return []
    num_windows = int(math.ceil((end - start) / window_s))
    sums = [0.0] * num_windows
    counts = [0] * num_windows
    for receipt in log.sink_receipts:
        if start <= receipt.time < end:
            index = int((receipt.time - start) / window_s)
            sums[index] += receipt.latency_s
            counts[index] += 1
    return [
        (start + (i + 0.5) * window_s, sums[i] / counts[i], counts[i])
        for i in range(num_windows)
        if counts[i]
    ]


# ------------------------------------------------------------------ fixtures
def _grid_log(columnar: bool):
    """Event log of a 60 s Grid steady-state run (no migrations)."""
    # Root/event ids are process-global; restart them so the classic and
    # columnar runs see identical id streams (digests hash the ids).
    reset_event_ids()
    sim = Simulator()
    cluster = build_cluster(sim, worker_vms=11)
    config = fast_config("dcr")
    config.columnar_log = columnar
    runtime = TopologyRuntime(topologies.grid(), cluster, sim=sim, config=config)
    runtime.deploy()
    runtime.start()
    sim.run(until=60.0)
    return runtime.log


def _elastic_log(columnar: bool):
    """Event log of a closed-loop elastic run (migration, kills, replays).

    The config is passed explicitly so the classic and columnar runs differ
    in nothing but the log backend.
    """
    config = strategy_by_name("dsm").runtime_config(seed=11)
    config.columnar_log = columnar
    result = run_elastic_experiment(
        dag="traffic", strategy="dsm", profile="surge", duration_s=300.0,
        seed=11, config=config,
    )
    return result.log


@pytest.fixture(scope="module")
def shard_results():
    """Per-shard results of one sharded Grid run, merged by both paths below."""
    return run_sharded_experiment(dag="grid", shards=3, duration_s=10.0,
                                  seed=2018, workers=1).results


@pytest.fixture(scope="module")
def grid_log():
    return _grid_log(columnar=False)


@pytest.fixture(scope="module")
def grid_log_columnar():
    if not HAVE_COLUMNAR:
        pytest.skip("numpy unavailable")
    return _grid_log(columnar=True)


@pytest.fixture(scope="module")
def elastic_log():
    return _elastic_log(columnar=False)


@pytest.fixture(scope="module")
def elastic_log_columnar():
    if not HAVE_COLUMNAR:
        pytest.skip("numpy unavailable")
    return _elastic_log(columnar=True)


@pytest.fixture(scope="module")
def merged_log(shard_results):
    """Sharded-run merge through the per-record heapq fallback."""
    return _merge_shard_results_python(shard_results)


@pytest.fixture(scope="module")
def merged_log_columnar(shard_results):
    """The same merge through the lexsort array path."""
    if not HAVE_COLUMNAR:
        pytest.skip("numpy unavailable")
    return _merge_shard_results_columnar(shard_results)


def interesting_times(log):
    """Query times covering empty, boundary and mid-run windows."""
    end = log.sim.now
    times = [0.0, -5.0, end, end + 10.0, end / 2, end / 3]
    if log.receipt_times:
        first = log.receipt_times[0]
        last = log.receipt_times[-1]
        # Exact record times probe the inclusive/exclusive boundaries.
        times += [first, last, (first + last) / 2.0]
    return times


LOG_FIXTURES = [
    "grid_log", "grid_log_columnar",
    "elastic_log", "elastic_log_columnar",
    "merged_log", "merged_log_columnar",
]


# ---------------------------------------------------------------- log queries
@pytest.mark.parametrize("log_fixture", LOG_FIXTURES)
class TestIndexedQueriesMatchNaive:
    def test_receipts_after(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        for t in interesting_times(log):
            assert log.receipts_after(t) == naive_receipts_after(log, t)

    def test_receipts_between(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        times = interesting_times(log)
        for start in times:
            for width in (0.0, 0.5, 10.0, 1e9):
                assert log.receipts_between(start, start + width) == naive_receipts_between(
                    log, start, start + width
                )
        # Inverted window: empty either way.
        assert log.receipts_between(50.0, 10.0) == naive_receipts_between(log, 50.0, 10.0) == []

    def test_emits_between(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        for start in interesting_times(log):
            assert log.emits_between(start, start + 10.0) == naive_emits_between(log, start, start + 10.0)

    def test_first_receipt_after(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        for t in interesting_times(log):
            assert log.first_receipt_after(t) == naive_first_receipt_after(log, t)

    def test_last_old_receipt(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        for t in interesting_times(log):
            assert log.last_old_receipt(t) == naive_last_old_receipt(log, t)

    def test_last_replay_receipt(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        for t in interesting_times(log):
            assert log.last_replay_receipt(t) == naive_last_replay_receipt(log, t)

    def test_distinct_roots_received(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        assert log.distinct_roots_received() == naive_distinct_roots_received(log)

    def test_time_arrays_parallel_to_records(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        assert log.receipt_times == [r.time for r in log.sink_receipts]
        assert log.emit_times == [e.time for e in log.source_emits]
        assert list(log.receipt_times) == sorted(log.receipt_times)
        assert list(log.emit_times) == sorted(log.emit_times)


# ------------------------------------------------------------------ timelines
@pytest.mark.parametrize("log_fixture", LOG_FIXTURES)
class TestTimelinesMatchNaive:
    def test_rate_timeline(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        for kind in ("input", "output"):
            for start, end, bin_s in [
                (0.0, None, 1.0),
                (0.0, None, 5.0),
                (30.0, 60.0, 2.5),
                (59.9, 60.0, 0.05),
                (0.0, 0.0, 1.0),   # empty window
                (80.0, 20.0, 1.0),  # inverted window
            ]:
                assert rate_timeline(log, kind=kind, start=start, end=end, bin_s=bin_s) == \
                    naive_rate_timeline(log, kind, start, end, bin_s)

    def test_latency_timeline(self, log_fixture, request):
        log = request.getfixturevalue(log_fixture)
        for start, end, window_s in [(0.0, None, 10.0), (25.0, 55.0, 5.0), (0.0, 0.0, 10.0)]:
            points = latency_timeline(log, start=start, end=end, window_s=window_s)
            assert [(p.time, p.latency_s, p.samples) for p in points] == \
                naive_latency_timeline(log, start, end, window_s)


# ------------------------------------------- classic vs columnar byte identity
@needs_columnar
class TestBackendByteIdentity:
    """The columnar backend must be indistinguishable from the classic one.

    ``log_digest`` hashes every record field with ``repr`` semantics, so
    digest equality is byte-level equivalence of the full record streams.
    """

    def test_grid_digest(self, grid_log, grid_log_columnar):
        assert log_digest(grid_log_columnar) == log_digest(grid_log)

    def test_elastic_digest(self, elastic_log, elastic_log_columnar):
        assert log_digest(elastic_log_columnar) == log_digest(elastic_log)

    def test_sharded_merge_digest(self, merged_log, merged_log_columnar):
        assert log_digest(merged_log_columnar) == log_digest(merged_log)

    def test_grid_records_compare_equal(self, grid_log, grid_log_columnar):
        assert list(grid_log_columnar.source_emits) == list(grid_log.source_emits)
        assert list(grid_log_columnar.sink_receipts) == list(grid_log.sink_receipts)
        assert grid_log_columnar.emit_times == grid_log.emit_times
        assert grid_log_columnar.receipt_times == grid_log.receipt_times

    def test_elastic_counters_match(self, elastic_log, elastic_log_columnar):
        assert elastic_log_columnar.replay_emits == elastic_log.replay_emits
        assert elastic_log_columnar.distinct_roots_received() == \
            elastic_log.distinct_roots_received()


# ----------------------------------------------------------- synthetic ties
class _Clock:
    def __init__(self) -> None:
        self.now = 0.0


def _make_log(backend: str, clock) -> EventLog:
    if backend == "columnar":
        return ColumnarEventLog(clock)  # type: ignore[arg-type]
    return EventLog(clock)  # type: ignore[arg-type]


def _tie_log(backend: str):
    """Three roots emitted before t=10, received in tied clusters after it."""
    clock = _Clock()
    log = _make_log(backend, clock)
    for root in (1, 2, 3):
        clock.now = float(root)
        log.record_source_emit(root_id=root, source="source")
    for now, root, replay in [(10.0, 1, 0), (10.0, 2, 1), (10.0, 3, 1), (12.0, 9, 0), (12.0, 2, 1)]:
        clock.now = now
        log.record_sink_receipt(root_id=root, event_id=root * 100 + int(now), sink="sink",
                                root_emitted_at=float(root), replay_count=replay)
    clock.now = 15.0
    return log


@pytest.mark.parametrize("backend", BACKENDS)
def test_tie_times_and_boundaries_synthetic(backend):
    """Equal-time records and exact-boundary queries match the naive scans."""
    log = _tie_log(backend)
    for t in (0.0, 1.0, 9.999, 10.0, 10.0000001, 12.0, 15.0, 20.0):
        assert log.receipts_after(t) == naive_receipts_after(log, t)
        assert log.first_receipt_after(t) == naive_first_receipt_after(log, t)
        assert log.last_old_receipt(t) == naive_last_old_receipt(log, t)
        assert log.last_replay_receipt(t) == naive_last_replay_receipt(log, t)
        assert log.receipts_between(t, 12.0) == naive_receipts_between(log, t, 12.0)
    assert log.distinct_roots_received() == naive_distinct_roots_received(log)


@needs_columnar
def test_tie_log_digests_identical():
    """Tied/boundary timestamps hash identically across backends."""
    assert log_digest(_tie_log("columnar")) == log_digest(_tie_log("classic"))


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_log_queries(backend):
    """All queries behave on a freshly created, empty log."""
    log = _make_log(backend, _Clock())
    assert log.receipts_after(0.0) == []
    assert log.receipts_between(0.0, 100.0) == []
    assert log.emits_between(0.0, 100.0) == []
    assert log.first_receipt_after(0.0) is None
    assert log.last_old_receipt(0.0) is None
    assert log.last_replay_receipt(0.0) is None
    assert log.distinct_roots_received() == 0
    assert rate_timeline(log, kind="output", end=10.0) == naive_rate_timeline(log, "output", 0.0, 10.0, 1.0)
    assert latency_timeline(log, end=10.0) == []
